"""Virtual next-hop (VNH) and virtual MAC (VMAC) allocation.

Each forwarding equivalence class receives one VNH IP address from a
reserved pool and one VMAC (Section 4.2). The allocator:

* hands the VNH to the route server's next-hop rewriter, so participants'
  border routers learn it as the BGP next hop;
* binds VNH → VMAC in the SDX ARP responder, so those routers tag packets
  with the FEC's VMAC;
* resolves prefix → group / VMAC for the policy compiler.

The incremental fast path (Section 4.3.2) allocates *ephemeral* singleton
assignments for prefixes whose best route just changed; the background
re-optimisation releases them when the full FEC computation catches up.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.fec import PrefixGroup
from repro.dataplane.arp import ArpResponder
from repro.exceptions import CompilationError
from repro.net.addresses import IPv4Address, IPv4Prefix
from repro.net.mac import MacAddress, vmac_for_fec
from repro.telemetry import Telemetry

#: Default pool the VNH addresses are drawn from.
DEFAULT_VNH_POOL = IPv4Prefix("172.16.0.0/16")


class VnhAllocator:
    """Allocates (VNH, VMAC) pairs and keeps the ARP responder in sync."""

    def __init__(self, pool: IPv4Prefix = DEFAULT_VNH_POOL,
                 responder: Optional[ArpResponder] = None,
                 telemetry: Optional[Telemetry] = None):
        self.pool = pool
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        self.responder = responder if responder is not None else ArpResponder(pool)
        self.responder.bind_telemetry(self.telemetry)
        registry = self.telemetry.registry
        self._allocated_counter = registry.counter(
            "sdx_vnh_allocated_total", "Fresh (VNH, VMAC) pairs drawn from the pool")
        self._ephemeral_counter = registry.counter(
            "sdx_vnh_ephemeral_total", "Fast-path singleton assignments made")
        self._recycled_counter = registry.counter(
            "sdx_vnh_recycled_total", "Quarantined pairs released for reuse")
        self._live_gauge = registry.gauge(
            "sdx_vnh_live", "Live (VNH, VMAC) pairs, groups plus ephemerals")
        #: Monotone counter bumped by every assignment mutation (group
        #: reassignment, ephemeral grant/drop) — anything that can
        #: change ``vmac_for_prefix`` / ``vmac_index`` answers. Cache
        #: key for derived views of allocator state.
        self.generation = 0
        self._next_offset = 1  # skip the network address
        self._next_tag = 1
        self._vnh_by_group: Dict[int, IPv4Address] = {}
        self._vmac_by_group: Dict[int, MacAddress] = {}
        self._group_of_prefix: Dict[IPv4Prefix, int] = {}
        self._groups: Dict[int, PrefixGroup] = {}
        self._ephemeral: Dict[IPv4Prefix, Tuple[IPv4Address, MacAddress]] = {}
        # Pairs whose rules may still be installed until the in-flight
        # table swap deletes them (reusable after finish_swap), and pairs
        # confirmed rule-free (the recycling free list).
        self._pending_retire: List[Tuple[IPv4Address, MacAddress]] = []
        self._free: List[Tuple[IPv4Address, MacAddress]] = []

    # ------------------------------------------------------------------
    # Steady-state assignment
    # ------------------------------------------------------------------

    def assign_groups(self, groups: Iterable[PrefixGroup]) -> None:
        """Replace the current assignment with one per given group.

        Assignment is *stable*: a group whose prefix set is unchanged —
        or shrank, remaining a subset of one old group — keeps that
        group's (VNH, VMAC) pair, so unchanged groups diff to zero
        FlowMods and border-router tags stay valid. Any other group gets
        a pair that was **not** live in the previous generation — the
        table swap is phased (install, re-advertise, delete), so reusing
        a tag for a *larger or different* packet population while the
        old rules are still installed could hand a packet a stale
        stranger's forwarding; a subset population can only ever hit its
        own old rules. One carve-out: a group containing a prefix that
        currently holds a fast-path (ephemeral) override never reuses —
        that prefix's old main-table rules predate the update its shadow
        rules patched, so handing it its old tag mid-swap would expose
        pre-update forwarding that is neither its before nor its after
        state. Pairs retired here (including every ephemeral) become
        reusable only once :meth:`finish_swap` confirms the swap deleted
        their rules; until then they sit in a quarantine list. The pool
        therefore never leaks across recompilations, though it must hold
        roughly the live groups plus one generation of churn.
        """
        with self.telemetry.span("vnh.assign_groups"):
            self._assign_groups(groups)
        self._live_gauge.set(self.assignments)

    def _assign_groups(self, groups: Iterable[PrefixGroup]) -> None:
        self.generation += 1
        previous: Dict[frozenset, Tuple[IPv4Address, MacAddress]] = {
            group.prefixes: (self._vnh_by_group[gid], self._vmac_by_group[gid])
            for gid, group in self._groups.items()
        }
        overridden = frozenset(self._ephemeral)
        self._pending_retire.extend(self._ephemeral.values())
        for vnh in list(self.responder.bindings()):
            self.responder.unbind(vnh)
        self._vnh_by_group.clear()
        self._vmac_by_group.clear()
        self._group_of_prefix.clear()
        self._groups.clear()
        self._ephemeral.clear()
        incoming = list(groups)
        chosen: Dict[int, Tuple[IPv4Address, MacAddress]] = {}
        unmatched: List[PrefixGroup] = []
        for group in incoming:
            pair = (previous.pop(group.prefixes, None)
                    if group.prefixes.isdisjoint(overridden) else None)
            if pair is not None:
                chosen[group.group_id] = pair
            else:
                unmatched.append(group)
        # A shrunken group may also keep its pair: its new population is a
        # subset of the packets the old tag carried, so old rules can only
        # give those packets their old forwarding, never a stale stranger's.
        # Largest groups claim a donor first — they carry the most rules.
        for group in sorted(unmatched, key=lambda g: -len(g.prefixes)):
            donor = (next((old_prefixes for old_prefixes in previous
                           if group.prefixes <= old_prefixes), None)
                     if group.prefixes.isdisjoint(overridden) else None)
            chosen[group.group_id] = (
                previous.pop(donor) if donor is not None else self._allocate())
        for group in incoming:
            vnh, vmac = chosen[group.group_id]
            self._vnh_by_group[group.group_id] = vnh
            self._vmac_by_group[group.group_id] = vmac
            self._groups[group.group_id] = group
            for prefix in group.prefixes:
                self._group_of_prefix[prefix] = group.group_id
            self.responder.bind(vnh, vmac)
        self._pending_retire.extend(previous.values())

    def finish_swap(self) -> int:
        """Release quarantined pairs: the phased table swap completed.

        Called by the incremental engine once a full installation's
        deletes have been flushed — every rule matching a retired VMAC is
        now gone, so those pairs can be recycled by future allocations.
        Returns how many pairs were released.
        """
        released = len(self._pending_retire)
        self._free.extend(self._pending_retire)
        self._pending_retire.clear()
        self._recycled_counter.inc(released)
        return released

    def _allocate(self) -> Tuple[IPv4Address, MacAddress]:
        self._allocated_counter.inc()
        if self._free:
            return self._free.pop(0)
        if self._next_offset >= self.pool.num_addresses - 1:
            raise CompilationError(
                f"VNH pool {self.pool} exhausted after "
                f"{self._next_offset} allocations")
        vnh = self.pool.first_address + self._next_offset
        self._next_offset += 1
        vmac = vmac_for_fec(self._next_tag)
        self._next_tag += 1
        return vnh, vmac

    # ------------------------------------------------------------------
    # Fast-path (ephemeral) assignment
    # ------------------------------------------------------------------

    def assign_ephemeral(self, prefix: IPv4Prefix) -> Tuple[IPv4Address, MacAddress]:
        """A fresh singleton (VNH, VMAC) for one just-updated prefix.

        The paper's fast path "bypasses the actual computation of the VNH
        entirely by simply assuming a new VNH is needed". The prefix's old
        group binding stays valid for other prefixes in the group.
        """
        with self.telemetry.span("vnh.assign", prefix=str(prefix)):
            self.generation += 1
            vnh, vmac = self._allocate()
            self._ephemeral[prefix] = (vnh, vmac)
            self.responder.bind(vnh, vmac)
        self._ephemeral_counter.inc()
        self._live_gauge.set(self.assignments)
        return vnh, vmac

    def drop_ephemeral(self, prefix: IPv4Prefix) -> None:
        """Release the fast-path assignment for ``prefix`` (if any).

        The pair is quarantined, not freed: the shadow rules matching its
        VMAC stay installed until the next background re-optimisation
        deletes them, so the pair only recycles after that swap's
        :meth:`finish_swap`.
        """
        assigned = self._ephemeral.pop(prefix, None)
        if assigned is not None:
            self.generation += 1
            self.responder.unbind(assigned[0])
            self._pending_retire.append(assigned)
            self._live_gauge.set(self.assignments)

    def ephemeral_prefixes(self) -> Tuple[IPv4Prefix, ...]:
        """Prefixes currently carrying a fast-path assignment."""
        return tuple(sorted(self._ephemeral))

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------

    def group_of(self, prefix: IPv4Prefix) -> Optional[PrefixGroup]:
        """The group containing ``prefix``, if it is in any."""
        group_id = self._group_of_prefix.get(prefix)
        return None if group_id is None else self._groups[group_id]

    def vnh_for_group(self, group_id: int) -> IPv4Address:
        """The VNH of a group."""
        try:
            return self._vnh_by_group[group_id]
        except KeyError:
            raise CompilationError(f"no VNH assigned to group {group_id}") from None

    def vmac_for_group(self, group_id: int) -> MacAddress:
        """The VMAC of a group."""
        try:
            return self._vmac_by_group[group_id]
        except KeyError:
            raise CompilationError(f"no VMAC assigned to group {group_id}") from None

    def next_hop_for_prefix(self, prefix: IPv4Prefix) -> Optional[IPv4Address]:
        """The VNH to advertise for ``prefix``, if it is tagged.

        Ephemeral (fast-path) assignments override group assignments;
        untagged prefixes return ``None`` so the route server re-advertises
        the real next hop unchanged.
        """
        ephemeral = self._ephemeral.get(prefix)
        if ephemeral is not None:
            return ephemeral[0]
        group_id = self._group_of_prefix.get(prefix)
        if group_id is None:
            return None
        return self._vnh_by_group[group_id]

    def vmac_for_prefix(self, prefix: IPv4Prefix) -> Optional[MacAddress]:
        """The VMAC tag carried by packets destined into ``prefix``."""
        ephemeral = self._ephemeral.get(prefix)
        if ephemeral is not None:
            return ephemeral[1]
        group_id = self._group_of_prefix.get(prefix)
        if group_id is None:
            return None
        return self._vmac_by_group[group_id]

    def groups(self) -> Tuple[PrefixGroup, ...]:
        """Every assigned group, by id."""
        return tuple(self._groups[gid] for gid in sorted(self._groups))

    def vmac_index(self) -> Dict[MacAddress, str]:
        """VMAC → FEC label for every live assignment.

        The label is the group's representative prefix (its smallest
        member — stable across recomputation) or, for a fast-path
        singleton, the overridden prefix itself. The monitoring
        collector uses this to attribute dstmac-matching flow rules
        back to the FEC whose traffic they carry.
        """
        index: Dict[MacAddress, str] = {}
        for gid, group in self._groups.items():
            index[self._vmac_by_group[gid]] = str(group.representative)
        for prefix, (_vnh, vmac) in self._ephemeral.items():
            index[vmac] = str(prefix)
        return index

    @property
    def assignments(self) -> int:
        """Total live (VNH, VMAC) pairs, groups plus ephemerals."""
        return len(self._vnh_by_group) + len(self._ephemeral)

    def __repr__(self) -> str:
        return (f"VnhAllocator(pool={self.pool}, {len(self._vnh_by_group)} groups, "
                f"{len(self._ephemeral)} ephemeral)")
