# Convenience targets for the SDX reproduction.

PYTHON ?= python

.PHONY: install test bench bench-results examples docs clean

install:
	$(PYTHON) -m pip install -e . --no-build-isolation

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-results: bench
	@cat benchmarks/results/*.txt

examples:
	@for script in examples/*.py; do \
		echo "=== $$script ==="; \
		$(PYTHON) $$script; \
		echo; \
	done

docs:
	$(PYTHON) tools/gen_api_docs.py

clean:
	rm -rf benchmarks/results .pytest_cache .benchmarks
	find . -name __pycache__ -type d -exec rm -rf {} +
