"""The differential oracle: three lockstep executions per trace.

For one scenario, :class:`DifferentialOracle` drives three executions of
the same BGP update trace:

* **full** — an :class:`~repro.core.controller.SdxController` that runs
  a complete recompilation after every update (the slow, obviously
  correct path);
* **incremental** — an identical controller left on the two-stage fast
  path, with a consistency-preserving background re-optimisation every
  few steps and at the end;
* **reference** — the independent
  :class:`~repro.verification.reference.ReferenceInterpreter`.

All three consume value-identical :class:`~repro.bgp.messages.Update`
objects (same next hops, so BGP tie-breaking cannot diverge between
executions). After every step the oracle forwards the whole packet
corpus through each execution and compares (egress participant,
delivery port) per (sender, packet); the standing invariants of
:mod:`repro.verification.invariants` run on the incremental controller,
and every background swap is watched by a
:class:`~repro.verification.invariants.SwapMonitor`. The first
discrepancy is returned as an :class:`OracleFailure`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core.controller import SdxController
from repro.net.packet import Packet
from repro.verification.corpus import generate_corpus
from repro.verification.invariants import (
    SwapMonitor,
    Violation,
    check_all,
    outcome_of,
)
from repro.verification.reference import ReferenceInterpreter
from repro.verification.scenario import Scenario


@dataclass(frozen=True)
class OracleFailure:
    """The first divergence or invariant breach found in a run.

    ``step`` is the index of the trace step after which the failure was
    observed; ``-1`` means the scenario's initial state already fails.
    """

    kind: str
    step: int
    detail: str

    def __str__(self) -> str:
        return f"{self.kind} after step {self.step}: {self.detail}"


def forwarding_outcomes(controller: SdxController,
                        probes: Sequence[Packet],
                        senders: Optional[Sequence[str]] = None):
    """Outcome of every (sender, probe index) pair on one controller."""
    if senders is None:
        senders = [participant.name
                   for participant in controller.topology.participants()
                   if not participant.is_remote]
    return {
        (sender, index): outcome_of(controller, sender, probe)
        for sender in senders
        for index, probe in enumerate(probes)
    }


def compare_controllers(expected: SdxController, actual: SdxController,
                        probes: Sequence[Packet],
                        senders: Optional[Sequence[str]] = None
                        ) -> List[Violation]:
    """Forwarding differences between two controllers over ``probes``.

    The workhorse of the migrated equivalence tests: build the same
    exchange two ways (e.g. fast path vs fresh compilation) and assert
    this list is empty.
    """
    want = forwarding_outcomes(expected, probes, senders)
    got = forwarding_outcomes(actual, probes, senders)
    return [
        Violation(
            "forwarding-equivalence",
            f"{sender} probe#{index}: expected {want[(sender, index)]}, "
            f"got {got[(sender, index)]}")
        for (sender, index) in want
        if want[(sender, index)] != got[(sender, index)]
    ]


class DifferentialOracle:
    """Runs one scenario through the three executions and compares."""

    def __init__(self, scenario: Scenario,
                 corpus: Optional[Sequence[Packet]] = None, *,
                 recompile_every: int = 4,
                 check_invariants: bool = True,
                 check_swaps: bool = True):
        self.scenario = scenario
        self.corpus: Tuple[Packet, ...] = tuple(
            corpus if corpus is not None else generate_corpus(scenario))
        self.recompile_every = recompile_every
        self.check_invariants = check_invariants
        self.check_swaps = check_swaps
        #: Forwarding comparisons performed (for fuzz accounting).
        self.comparisons = 0
        #: Trace steps actually executed before returning.
        self.steps_executed = 0

    # ------------------------------------------------------------------
    # Comparison helpers
    # ------------------------------------------------------------------

    def _compare(self, step: int, reference: ReferenceInterpreter,
                 full: SdxController,
                 incremental: SdxController) -> Optional[OracleFailure]:
        expected = reference.outcomes(self.corpus)
        for (sender, index), want in expected.items():
            probe = self.corpus[index]
            got_full = outcome_of(full, sender, probe)
            got_incremental = outcome_of(incremental, sender, probe)
            self.comparisons += 1
            if got_full != want:
                return OracleFailure(
                    "full-vs-reference", step,
                    f"{sender} probe#{index} ({probe!r}): reference says "
                    f"{want}, full recompilation says {got_full}")
            if got_incremental != want:
                return OracleFailure(
                    "incremental-vs-reference", step,
                    f"{sender} probe#{index} ({probe!r}): reference says "
                    f"{want}, incremental engine says {got_incremental}")
        return None

    def _check_invariants(self, step: int,
                          incremental: SdxController
                          ) -> Optional[OracleFailure]:
        if not self.check_invariants:
            return None
        violations = check_all(incremental, self.corpus)
        if violations:
            first = violations[0]
            return OracleFailure(
                f"invariant:{first.invariant}", step, first.detail)
        return None

    def _background_swap(self, step: int,
                         incremental: SdxController
                         ) -> Optional[OracleFailure]:
        if not self.check_swaps:
            incremental.run_background_recompilation()
            return None
        probes = self.corpus[:8]
        with SwapMonitor(incremental, probes) as monitor:
            incremental.run_background_recompilation()
        violations = monitor.violations()
        if violations:
            return OracleFailure("invariant:two-phase-swap", step,
                                 violations[0].detail)
        return None

    # ------------------------------------------------------------------
    # The run
    # ------------------------------------------------------------------

    def run(self) -> Optional[OracleFailure]:
        """Execute the trace in lockstep; returns the first failure."""
        incremental = self.scenario.build_controller()
        full = self.scenario.build_controller()
        reference = ReferenceInterpreter(self.scenario)

        mismatch = reference.verify_alignment(incremental)
        if mismatch is not None:
            return OracleFailure("harness-misalignment", -1, mismatch)

        failure = (self._compare(-1, reference, full, incremental)
                   or self._check_invariants(-1, incremental))
        if failure is not None:
            return failure

        for index, step in enumerate(self.scenario.trace):
            update = self.scenario.step_update(step)
            incremental.submit_update(update)
            full.submit_update(update)
            full.recompile()
            reference.apply(update)
            self.steps_executed += 1

            failure = (self._compare(index, reference, full, incremental)
                       or self._check_invariants(index, incremental))
            if failure is not None:
                return failure

            if (index + 1) % self.recompile_every == 0:
                failure = (self._background_swap(index, incremental)
                           or self._compare(index, reference, full,
                                            incremental))
                if failure is not None:
                    return failure

        last = len(self.scenario.trace) - 1
        return (self._background_swap(last, incremental)
                or self._compare(last, reference, full, incremental)
                or self._check_invariants(last, incremental))
