"""The event-driven control-plane runtime (Section 5 scalability story).

The paper's burst-absorption argument assumes a layer the reproduction
long drove by hand: something that queues BGP churn, collapses redundant
updates, schedules the background re-optimisation between bursts, and
sheds or degrades under overload instead of falling over. This package
is that layer. It sits *between* event sources (BGP sessions, policy
API calls, workload drivers) and the existing
:class:`~repro.core.controller.SdxController`, which stays synchronous
and single-threaded underneath:

- :mod:`repro.runtime.events` — typed control-plane events with a
  priority class (policy changes > withdrawals > announcements) and a
  per-(participant, prefix) coalescing key;
- :mod:`repro.runtime.queue` — the bounded, prioritized, coalescing
  event queue with explicit overload accounting;
- :mod:`repro.runtime.scheduler` — adaptive background-recompilation
  triggers (fast-path-rule and ephemeral-VNH watermarks, idle gaps)
  replacing manual :meth:`~repro.core.controller.SdxController
  .run_background_recompilation` calls;
- :mod:`repro.runtime.clock` — the logical clock abstraction that makes
  the idle trigger deterministic under test;
- :mod:`repro.runtime.loop` — :class:`ControlPlaneRuntime`, the event
  loop itself, in a deterministic step-driven mode (what the
  verification oracle replays) and a threaded mode (what the soak
  driver runs).

Everything the runtime does is recorded under ``sdx_runtime_*`` in the
controller's telemetry registry, including ``_dropped_total`` loss
counters for shed events (see :mod:`repro.telemetry.registry`).
"""

from repro.runtime.clock import Clock, ManualClock, MonotonicClock
from repro.runtime.events import (
    EventClass,
    OverloadPolicy,
    RuntimeEvent,
    classify_update,
    coalescing_key,
)
from repro.runtime.loop import ControlPlaneRuntime, RuntimeConfig
from repro.runtime.queue import OfferOutcome, RuntimeQueue
from repro.runtime.scheduler import RecompilationScheduler, SchedulerConfig

__all__ = [
    "Clock",
    "ControlPlaneRuntime",
    "EventClass",
    "ManualClock",
    "MonotonicClock",
    "OfferOutcome",
    "OverloadPolicy",
    "RecompilationScheduler",
    "RuntimeConfig",
    "RuntimeEvent",
    "RuntimeQueue",
    "SchedulerConfig",
    "classify_update",
    "coalescing_key",
]
