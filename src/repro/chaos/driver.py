"""The chaos driver: replay a fault schedule against two lockstep arms.

One :class:`ChaosRunner` executes a PR-3 :class:`~repro.verification
.scenario.Scenario` trace twice — inline (direct ``submit_update`` per
event, the oracle's incremental arm) and through a deterministic
:class:`~repro.runtime.loop.ControlPlaneRuntime` — while injecting the
faults of a :class:`~repro.workloads.churn.ChaosSchedule` into *both*
arms at the same trace positions. Because every fault is applied
symmetrically, the runtime-vs-inline equivalence contract of PR-4 must
keep holding at every quiesce point, fault or no fault.

Standing assertions, checked after each fault and at final settle:

* **equivalence** — :func:`~repro.verification.runtime.canonical_state`
  of the two arms matches (up to VNH renaming);
* **no FlowMod loss** — a :class:`~repro.verification.invariants
  .SwapMonitor` wraps every single-transition region (each individual
  peer failure and the final flush) and must observe only
  old-path-or-new-path outcomes;
* **no stuck route** — after the final flush, forwarding equivalence
  over the probe corpus plus every standing invariant
  (:func:`~repro.verification.invariants.check_all`, which contains the
  FIB-vs-route-server conformance check that catches a surviving wedge).

Peer state is modelled honestly: while a session is down the peer's
*intended* table keeps evolving with the trace (real routers do not
pause BGP because one exchange session died), trace steps from a down
peer are skipped at the exchange, and recovery re-announces the intended
table as a storm through the runtime's ingest queue. All activity is
recorded as ``sdx_chaos_*`` metrics.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.bgp.asn import AsPath
from repro.bgp.attributes import RouteAttributes
from repro.bgp.messages import Update
from repro.net.addresses import IPv4Prefix
from repro.net.packet import Packet
from repro.runtime.clock import ManualClock
from repro.runtime.loop import ControlPlaneRuntime, RuntimeConfig
from repro.telemetry import Telemetry, get_telemetry
from repro.verification.corpus import generate_corpus
from repro.verification.invariants import SwapMonitor, check_all
from repro.verification.oracle import OracleFailure, compare_controllers
from repro.verification.runtime import canonical_state
from repro.verification.scenario import Scenario
from repro.workloads.churn import ChaosFault, ChaosSchedule

#: An intended route at a peer: (as-path, MED) for one prefix.
IntendedRoute = Tuple[Tuple[int, ...], int]


@dataclass(frozen=True)
class ChaosConfig:
    """Tunables for one chaos run.

    ``drain_every`` is the background quiesce cadence between faults
    (matching the PR-3 oracle's ``recompile_every``); ``runtime_config``
    overrides the runtime arm's queueing configuration (coalescing,
    overload policy); ``check_swaps`` attaches :class:`SwapMonitor`
    around single-transition regions; ``recover_at_end`` brings every
    still-down peer back (with its re-announcement storm) before the
    final settle so the end state is fault-free; ``final_flush`` runs
    the explicit full recompilation that un-wedges stuck routes.
    """

    drain_every: int = 4
    corpus_size: int = 12
    runtime_config: Optional[RuntimeConfig] = None
    check_swaps: bool = True
    recover_at_end: bool = True
    final_flush: bool = True


@dataclass(frozen=True)
class FaultOutcome:
    """Convergence accounting for one injected fault.

    ``events`` and ``batches`` are the runtime-arm deltas (events
    processed / batches drained) spent converging after the fault —
    deterministic proxies for convergence work — and ``wall_seconds``
    the measured wall-clock time (noisy; benchmarks prefer the deltas).
    ``applied`` is False when a determinism guard skipped the fault
    (e.g. ``peer_down`` on an already-down peer).
    """

    kind: str
    step: int
    participants: Tuple[str, ...]
    applied: bool
    events: int
    batches: int
    storm_updates: int
    wall_seconds: float


@dataclass
class ChaosReport:
    """The outcome of one chaos run."""

    scenario: Scenario
    schedule: ChaosSchedule
    outcomes: List[FaultOutcome] = field(default_factory=list)
    failure: Optional[OracleFailure] = None
    steps_executed: int = 0
    steps_skipped: int = 0
    storm_updates: int = 0
    settle_checks: int = 0
    elapsed_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        """True when every assertion held."""
        return self.failure is None

    def convergence_by_kind(self) -> Dict[str, Dict[str, float]]:
        """Per-fault-kind convergence aggregates (for the bench family)."""
        grouped: Dict[str, List[FaultOutcome]] = {}
        for outcome in self.outcomes:
            if outcome.applied:
                grouped.setdefault(outcome.kind, []).append(outcome)
        out: Dict[str, Dict[str, float]] = {}
        for kind, outcomes in grouped.items():
            out[kind] = {
                "faults": float(len(outcomes)),
                "events": float(sum(o.events for o in outcomes)),
                "batches": float(sum(o.batches for o in outcomes)),
                "wall_seconds": sum(o.wall_seconds for o in outcomes),
            }
        return out

    def summary(self) -> str:
        """A deterministic multi-line summary (no wall-clock numbers)."""
        applied = [o for o in self.outcomes if o.applied]
        lines = [
            f"chaos seed={self.schedule.seed}: "
            f"{len(self.schedule.faults)} fault(s) scheduled, "
            f"{len(applied)} applied, {self.steps_executed} step(s), "
            f"{self.steps_skipped} skipped while down, "
            f"{self.storm_updates} storm update(s)",
        ]
        for outcome in applied:
            lines.append(
                f"  {outcome.kind}@{outcome.step}"
                f"({','.join(outcome.participants)}): "
                f"{outcome.events} event(s), {outcome.batches} batch(es)")
        if self.failure is None:
            lines.append("all settle assertions held")
        else:
            lines.append(f"FAIL {self.failure.kind} after step "
                         f"{self.failure.step}: {self.failure.detail}")
        return "\n".join(lines)


class ChaosRunner:
    """Execute one scenario + schedule; see the module docstring."""

    def __init__(self, scenario: Scenario, schedule: ChaosSchedule, *,
                 config: Optional[ChaosConfig] = None,
                 telemetry: Optional[Telemetry] = None):
        self.scenario = scenario
        self.schedule = schedule
        self.config = config if config is not None else ChaosConfig()
        self.telemetry = telemetry if telemetry is not None else get_telemetry()
        registry = self.telemetry.registry
        self._fault_counters = {
            kind: registry.counter(
                "sdx_chaos_faults_total", "Chaos faults injected", kind=kind)
            for kind in set(fault.kind for fault in schedule.faults)}
        self._convergence_counters = {
            kind: registry.counter(
                "sdx_chaos_convergence_events_total",
                "Runtime events processed converging after a fault",
                kind=kind)
            for kind in set(fault.kind for fault in schedule.faults)}
        self._skipped_faults_counter = registry.counter(
            "sdx_chaos_faults_skipped_total",
            "Faults skipped by a determinism guard")
        self._storm_counter = registry.counter(
            "sdx_chaos_storm_updates_total",
            "Re-announcement storm updates submitted after recoveries")
        self._steps_skipped_counter = registry.counter(
            "sdx_chaos_steps_skipped_total",
            "Trace steps dropped because the sender's session was down")
        self._settle_checks_counter = registry.counter(
            "sdx_chaos_settle_checks_total",
            "Equivalence/invariant assertion rounds evaluated")
        self._assertion_failures_counter = registry.counter(
            "sdx_chaos_assertion_failures_total",
            "Settle assertions that failed")
        self._report = ChaosReport(scenario=scenario, schedule=schedule)
        self._down: Set[str] = set()
        self._pending_recovery: Dict[int, List[str]] = {}
        self._needs_flush = False
        self._port_ips = scenario.port_ips()
        self._intended: Dict[str, Dict[str, IntendedRoute]] = {
            name: {} for name in scenario.participant_names()}
        for announcement in scenario.announcements:
            self._intended[announcement.participant][announcement.prefix] = (
                tuple(announcement.as_path), 0)

    # ------------------------------------------------------------------
    # Arm plumbing
    # ------------------------------------------------------------------

    def _build_arms(self) -> None:
        self.inline = self.scenario.build_controller()
        self.routed = self.scenario.build_controller()
        self.runtime = ControlPlaneRuntime(
            self.routed,
            config=(self.config.runtime_config
                    if self.config.runtime_config is not None
                    else RuntimeConfig()),
            clock=ManualClock())
        self.probes: Tuple[Packet, ...] = tuple(generate_corpus(
            self.scenario, size=self.config.corpus_size))

    def _quiesce(self) -> List[str]:
        """Drain both arms; returns swap violations seen on the routed arm."""
        violations = self._swap_guarded(self.runtime.settle)
        self.inline.run_background_recompilation()
        return violations

    def _swap_guarded(self, region: Callable[[], object]) -> List[str]:
        """Run ``region`` under a :class:`SwapMonitor` when enabled."""
        if not self.config.check_swaps:
            region()
            return []
        with SwapMonitor(self.routed, self.probes) as monitor:
            region()
        return [str(violation) for violation in monitor.violations()]

    def _submit_both(self, update: Update) -> None:
        self.inline.submit_update(update)
        self.runtime.submit_update(update)

    def _runtime_counts(self) -> Tuple[int, int]:
        stats = self.runtime.stats()
        return int(stats["processed"]), int(stats["batches"])

    # ------------------------------------------------------------------
    # Peer lifecycle helpers
    # ------------------------------------------------------------------

    def _storm_updates_for(self, peer: str) -> List[Update]:
        """The peer's intended table as a re-announcement storm."""
        out: List[Update] = []
        for prefix, (as_path, med) in sorted(self._intended[peer].items()):
            attributes = RouteAttributes(
                next_hop=self._port_ips[peer], as_path=AsPath(as_path),
                med=med)
            out.append(Update.announce(peer, IPv4Prefix(prefix), attributes))
        return out

    def _fail_one(self, peer: str) -> List[str]:
        """Fail ``peer`` on both arms; returns routed-arm swap violations.

        Both arms quiesce first so no event from the peer is still
        queued when its session dies — the lockstep model's analogue of
        TCP teardown flushing in-flight updates before the notification.
        """
        violations = self._quiesce()
        violations += self._swap_guarded(
            lambda: self.routed.route_server.fail_peer(peer))
        self.inline.route_server.fail_peer(peer)
        self._down.add(peer)
        return violations

    def _recover_one(self, peer: str) -> int:
        """Recover ``peer`` on both arms and submit its storm."""
        self.routed.route_server.recover_peer(peer)
        self.inline.route_server.recover_peer(peer)
        self._down.discard(peer)
        storm = self._storm_updates_for(peer)
        for update in storm:
            self._submit_both(update)
        self._storm_counter.inc(len(storm))
        self._report.storm_updates += len(storm)
        return len(storm)

    # ------------------------------------------------------------------
    # Fault application
    # ------------------------------------------------------------------

    def _apply_fault(self, fault: ChaosFault,
                     fired_at: int) -> Tuple[bool, int, List[str]]:
        """Inject one fault into both arms.

        Returns ``(applied, storm updates submitted, swap violations)``.
        Determinism guards make every fault meaningful regardless of the
        session states the schedule happens to meet: failing a dead peer
        is a no-op, flapping or mid-swap-resetting a dead peer recovers
        it first, injecting a stuck route needs a live session.
        """
        swap_violations: List[str] = []
        storms = 0
        if fault.kind == "peer_down":
            targets = [p for p in fault.participants if p not in self._down]
            if not targets:
                return False, 0, []
            for peer in targets:
                swap_violations += self._fail_one(peer)
        elif fault.kind == "correlated_failure":
            targets = [p for p in fault.participants if p not in self._down]
            if not targets:
                return False, 0, []
            for peer in targets:
                swap_violations += self._fail_one(peer)
        elif fault.kind == "peer_up":
            for peer in fault.participants:
                if peer in self._down:
                    storms += self._recover_one(peer)
                else:
                    # Already up: a pure (idempotent) announcement storm.
                    storm = self._storm_updates_for(peer)
                    for update in storm:
                        self._submit_both(update)
                    self._storm_counter.inc(len(storm))
                    self._report.storm_updates += len(storm)
                    storms += len(storm)
        elif fault.kind == "flap":
            peer = fault.participants[0]
            if peer in self._down:
                storms += self._recover_one(peer)
            for cycle in range(max(1, fault.flaps)):
                self._fail_one(peer)
                last = cycle == max(1, fault.flaps) - 1
                if last and fault.hold_steps > 0:
                    # Damping: the final recovery is held back.
                    self._pending_recovery.setdefault(
                        fired_at + fault.hold_steps, []).append(peer)
                else:
                    storms += self._recover_one(peer)
        elif fault.kind == "stuck_route":
            peer = fault.participants[0]
            if peer in self._down or fault.prefix is None:
                return False, 0, []
            # Drain first: a queued trace update for the same (peer,
            # prefix) must not reorder past the injection on one arm.
            swap_violations += self._quiesce()
            attributes = RouteAttributes(
                next_hop=self._port_ips[peer],
                as_path=AsPath(fault.as_path))
            update = Update.announce(
                peer, IPv4Prefix(fault.prefix), attributes)
            self.routed.route_server.inject_unnotified(update)
            self.inline.route_server.inject_unnotified(update)
            self._intended[peer][fault.prefix] = (fault.as_path, 0)
            self._needs_flush = True
        elif fault.kind == "midswap_reset":
            peer = fault.participants[0]
            if peer in self._down:
                storms += self._recover_one(peer)
                self._quiesce()
            storms += self._midswap_reset(peer)
        return True, storms, swap_violations

    def _midswap_reset(self, peer: str) -> int:
        """Reset ``peer`` from inside a southbound swap on both arms."""
        self._quiesce()

        def one_shot(controller) -> Callable[[object], None]:
            fired = [False]

            def on_batch(_batch: object) -> None:
                if fired[0]:
                    return
                fired[0] = True
                controller.route_server.reset_session(peer)
            return on_batch

        for controller in (self.inline, self.routed):
            observer = one_shot(controller)
            controller.southbound.add_observer(observer)
            try:
                controller.recompile()
            finally:
                controller.southbound.remove_observer(observer)
        # The reset flushed the peer's table; it re-announces as usual.
        storm = self._storm_updates_for(peer)
        for update in storm:
            self._submit_both(update)
        self._storm_counter.inc(len(storm))
        self._report.storm_updates += len(storm)
        return len(storm)

    # ------------------------------------------------------------------
    # Assertions
    # ------------------------------------------------------------------

    def _check_equivalence(self, step: int, label: str,
                           swap_violations: List[str]) -> Optional[OracleFailure]:
        """The per-fault settle assertion: swaps clean + states equal."""
        self._settle_checks_counter.inc()
        self._report.settle_checks += 1
        if swap_violations:
            return OracleFailure(f"chaos-swap:{label}", step,
                                 swap_violations[0])
        problems = canonical_state(self.inline).diff(
            canonical_state(self.routed))
        if problems:
            return OracleFailure(f"chaos-equivalence:{label}", step,
                                 problems[0])
        return None

    def _check_final(self, step: int) -> Optional[OracleFailure]:
        """The end-of-run assertions: forwarding + standing invariants."""
        failure = self._check_equivalence(step, "final", [])
        if failure is not None:
            return failure
        violations = compare_controllers(self.inline, self.routed,
                                         self.probes)
        if violations:
            return OracleFailure("chaos-forwarding", step,
                                 violations[0].detail)
        violations = check_all(self.routed, self.probes)
        if violations:
            first = violations[0]
            return OracleFailure(f"chaos-invariant:{first.invariant}", step,
                                 first.detail)
        return None

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------

    def _fire_faults(self, index: int,
                     faults: Tuple[ChaosFault, ...]) -> Optional[OracleFailure]:
        for fault in faults:
            started = time.monotonic()
            events_before, batches_before = self._runtime_counts()
            applied, storms, swap_violations = self._apply_fault(fault, index)
            if not applied:
                self._skipped_faults_counter.inc()
                self._report.outcomes.append(FaultOutcome(
                    kind=fault.kind, step=fault.step,
                    participants=fault.participants, applied=False,
                    events=0, batches=0, storm_updates=0, wall_seconds=0.0))
                continue
            swap_violations += self._quiesce()
            events_after, batches_after = self._runtime_counts()
            self._fault_counters[fault.kind].inc()
            self._convergence_counters[fault.kind].inc(
                events_after - events_before)
            self._report.outcomes.append(FaultOutcome(
                kind=fault.kind, step=fault.step,
                participants=fault.participants, applied=True,
                events=events_after - events_before,
                batches=batches_after - batches_before,
                storm_updates=storms,
                wall_seconds=time.monotonic() - started))
            # A wedge is *expected* to defeat equivalence-by-settle only
            # in the compiled state, which canonical_state excludes; the
            # stuck prefix appears in both arms' RIBs identically, so the
            # assertion still must hold here and the flush check comes
            # at the end.
            failure = self._check_equivalence(fault.step, fault.kind,
                                              swap_violations)
            if failure is not None:
                return failure
        return None

    def _fire_pending(self, index: int) -> None:
        for peer in self._pending_recovery.pop(index, []):
            if peer in self._down:
                self._recover_one(peer)

    def run(self) -> ChaosReport:
        """Execute the schedule; never raises on an assertion failure."""
        started = time.monotonic()
        self._build_arms()
        report = self._report
        trace = self.scenario.trace
        with self.telemetry.span("chaos.run", seed=self.schedule.seed,
                                 faults=len(self.schedule.faults)):
            for index, step in enumerate(trace):
                if step.participant in self._down:
                    self._steps_skipped_counter.inc()
                    report.steps_skipped += 1
                else:
                    self._submit_both(self.scenario.step_update(step))
                    report.steps_executed += 1
                self._note_intended(step)
                if (index + 1) % self.config.drain_every == 0:
                    self._quiesce()
                self._fire_pending(index)
                report.failure = self._fire_faults(
                    index, self.schedule.faults_at(index))
                if report.failure is not None:
                    break
            if report.failure is None:
                # Post-trace faults, oldest step first (schedule order).
                report.failure = self._fire_faults(
                    len(trace), self.schedule.faults_after(len(trace)))
            if report.failure is None:
                for pending in sorted(self._pending_recovery):
                    self._fire_pending(pending)
                if self.config.recover_at_end:
                    for peer in sorted(self._down):
                        self._recover_one(peer)
                self._quiesce()
                if self.config.final_flush:
                    swap_violations = self._swap_guarded(
                        self.routed.recompile)
                    self.inline.recompile()
                    self._needs_flush = False
                    if swap_violations:
                        report.failure = OracleFailure(
                            "chaos-swap:final-flush", len(trace),
                            swap_violations[0])
                if report.failure is None:
                    report.failure = self._check_final(len(trace))
            if report.failure is not None:
                self._assertion_failures_counter.inc()
        report.elapsed_seconds = time.monotonic() - started
        return report

    def _note_intended(self, step) -> None:
        """Advance the sender's intended table, down or not."""
        table = self._intended[step.participant]
        if step.kind == "withdraw":
            table.pop(step.prefix, None)
        else:
            table[step.prefix] = (tuple(step.as_path), step.med)


def run_chaos(scenario: Scenario, schedule: ChaosSchedule, *,
              config: Optional[ChaosConfig] = None,
              telemetry: Optional[Telemetry] = None) -> ChaosReport:
    """Run one chaos schedule against ``scenario``; see :class:`ChaosRunner`."""
    return ChaosRunner(scenario, schedule, config=config,
                       telemetry=telemetry).run()


def chaos_failure(scenario: Scenario, schedule: ChaosSchedule, *,
                  config: Optional[ChaosConfig] = None
                  ) -> Optional[OracleFailure]:
    """The first assertion failure of a chaos run, or ``None``.

    The shrinker's runner: a full :class:`ChaosReport` reduced to the
    pass/fail signal.
    """
    return run_chaos(scenario, schedule, config=config).failure
