"""Analyzer frontends: controller linting, config linting, strict mode."""

import pytest

from repro.bgp.asn import AsPath
from repro.config import export_config
from repro.core.controller import SdxController
from repro.exceptions import StaticPolicyError
from repro.net.addresses import IPv4Prefix
from repro.policy.policies import fwd, match
from repro.statics import DEFAULT_CHECKS, analyze_controller, lint_config

P1 = IPv4Prefix("20.0.0.0/8")
P2 = IPv4Prefix("30.0.0.0/8")

ALL_CHECK_IDS = ("SDX001", "SDX002", "SDX003", "SDX004", "SDX005",
                 "SDX006", "SDX007")


def exchange(**kwargs):
    sdx = SdxController(**kwargs)
    sdx.add_participant("A", 65001)
    sdx.add_participant("B", 65002)
    sdx.add_participant("C", 65003)
    sdx.announce_route("B", P1, AsPath([65002, 100]))
    sdx.announce_route("C", P2, AsPath([65003, 200]))
    return sdx


def add_dead_clause(sdx):
    a = sdx.participant("A")
    a.add_outbound(match(dstport=80) >> fwd("B"))
    a.add_outbound((match(dstport=80) & match(protocol=6)) >> fwd("B"))


class TestAnalyzeController:
    def test_catalogue_covers_all_seven_checks(self):
        assert tuple(sorted(c.check_id for c in DEFAULT_CHECKS)) == \
            ALL_CHECK_IDS

    def test_clean_exchange_has_no_findings(self):
        sdx = exchange()
        sdx.participant("A").add_outbound(match(dstport=80) >> fwd("B"))
        report = analyze_controller(sdx)
        assert report.diagnostics == []
        assert report.participants_analyzed == 3
        assert report.clauses_analyzed == 1
        assert report.checks_run == tuple(
            check.check_id for check in DEFAULT_CHECKS)

    def test_dead_clause_reported_as_error(self):
        sdx = exchange()
        add_dead_clause(sdx)
        report = analyze_controller(sdx)
        assert report.has_errors
        assert [d.check_id for d in report.errors] == ["SDX001"]

    def test_telemetry_counters_recorded(self):
        sdx = exchange()
        add_dead_clause(sdx)
        analyze_controller(sdx)
        snapshot = sdx.telemetry.registry.snapshot()
        assert snapshot["sdx_statics_runs_total"] == 1
        assert snapshot["sdx_statics_errors_total"] == 1


class TestControllerModes:
    def test_invalid_statics_mode_rejected(self):
        with pytest.raises(Exception) as excinfo:
            exchange(statics_mode="bogus")
        assert "statics_mode" in str(excinfo.value)

    def test_off_mode_never_lints(self):
        sdx = exchange(statics_mode="off")
        add_dead_clause(sdx)
        sdx.start()
        assert sdx.last_statics_report is None

    def test_warn_mode_records_but_starts(self):
        sdx = exchange(statics_mode="warn")
        add_dead_clause(sdx)
        sdx.start()
        assert sdx.started
        assert sdx.last_statics_report is not None
        assert sdx.last_statics_report.has_errors

    def test_strict_mode_rejects_the_offending_policy_change(self):
        sdx = exchange(statics_mode="strict")
        a = sdx.participant("A")
        a.add_outbound(match(dstport=80) >> fwd("B"))
        with pytest.raises(StaticPolicyError) as excinfo:
            a.add_outbound(
                (match(dstport=80) & match(protocol=6)) >> fwd("B"))
        assert not sdx.started
        assert excinfo.value.report is sdx.last_statics_report
        assert "SDX001" in str(excinfo.value)

    def test_strict_mode_refuses_to_start_with_standing_errors(self):
        sdx = exchange()
        add_dead_clause(sdx)
        sdx.statics_mode = "strict"
        with pytest.raises(StaticPolicyError):
            sdx.start()
        assert not sdx.started

    def test_strict_mode_starts_a_clean_exchange(self):
        sdx = exchange(statics_mode="strict")
        sdx.participant("A").add_outbound(match(dstport=80) >> fwd("B"))
        sdx.start()
        assert sdx.started
        assert not sdx.last_statics_report.has_errors


class TestLintConfig:
    def document(self):
        sdx = exchange()
        sdx.participant("A").add_outbound(match(dstport=80) >> fwd("B"))
        return export_config(sdx)

    def test_clean_config_round_trips(self):
        report = lint_config(self.document())
        assert not report.has_errors
        assert report.checks_run == tuple(
            check.check_id for check in DEFAULT_CHECKS)

    def test_flagged_document_is_skipped_not_fatal(self):
        document = self.document()
        document["policies"].append({
            "participant": "A", "direction": "out",
            "clause": {"match": {"kind": "match",
                                 "fields": {"dstmac": "a2:00:00:00:00:07"}},
                       "fwd": "B"}})
        report = lint_config(document)
        assert report.has_errors
        flagged = report.by_check("SDX004")
        assert flagged
        assert all(f.location.document_index == 1 for f in flagged)
        # The clean policy still got installed and analyzed.
        assert report.clauses_analyzed >= 3

    def test_install_rejection_becomes_a_diagnostic(self):
        document = self.document()
        document["policies"].append({
            "participant": "Nobody", "direction": "out",
            "clause": {"match": {"kind": "match",
                                 "fields": {"dstport": 80}},
                       "fwd": "B"}})
        report = lint_config(document)
        rejected = [f for f in report.by_check("SDX006")
                    if "rejected at installation" in f.message]
        assert len(rejected) == 1
        assert rejected[0].location.participant == "Nobody"

    def test_check_subset_is_respected(self):
        subset = tuple(
            check for check in DEFAULT_CHECKS
            if check.check_id in ("SDX004", "SDX006"))
        report = lint_config(self.document(), checks=subset)
        assert report.checks_run == ("SDX006", "SDX004")
