#!/usr/bin/env python3
"""Service chaining: steering traffic through a *sequence* of middleboxes.

The paper's Section 8 envisions policies that direct traffic "through
middleboxes (and other cloud-hosted services) along the path between
source and destination, thereby enabling service chaining". This example
chains a scrubber and a logger in front of a victim AS for suspected
attack traffic, with each middlebox transforming and re-injecting packets.

Run with::

    python examples/service_chaining.py
"""

from repro import SdxController, match
from repro.apps import ServiceChain, run_through_chain
from repro.bgp.asn import AsPath
from repro.net.addresses import IPv4Prefix
from repro.net.packet import Packet


def build() -> SdxController:
    """The example exchange with the two-middlebox chain installed."""
    controller, _chain = _build_with_chain()
    return controller


def _build_with_chain():
    sdx = SdxController()
    sdx.add_participant("ISP", 64500)
    sdx.add_participant("Victim", 64510)
    sdx.add_participant("Scrubber", 64520)
    sdx.add_participant("Logger", 64530)

    target = IPv4Prefix("80.0.0.0/8")
    sdx.announce_route("Victim", target, AsPath([64510]))
    sdx.start()

    chain = ServiceChain(sdx, owner="ISP", selector=match(protocol=17),
                         middleboxes=["Scrubber", "Logger"])
    chain.announce_coverage([target])   # prepended: eligible, never best
    chain.install()
    return sdx, chain


def main() -> None:
    sdx, chain = _build_with_chain()
    # The scrubber normalises the source port; the logger just observes.
    chain.set_function("Scrubber", lambda p: p.modify(srcport=0))

    suspect = Packet(dstip="80.0.0.1", dstport=53, srcip="6.6.6.6",
                     srcport=31337, protocol=17)
    clean = Packet(dstip="80.0.0.1", dstport=443, srcip="9.9.9.9",
                   protocol=6)

    journey = run_through_chain(chain, "ISP", suspect)
    print(f"suspect UDP packet path: ISP -> {' -> '.join(journey.hops)} "
          f"-> {journey.final_egress}")
    print(f"  source port after scrubbing: {journey.final_packet['srcport']}")

    direct = run_through_chain(chain, "ISP", clean)
    print(f"clean TCP packet path:   ISP -> {direct.final_egress} "
          f"(no middleboxes)")

    chain.uninstall()
    after = run_through_chain(chain, "ISP", suspect)
    print(f"after uninstall:         ISP -> {after.final_egress} "
          f"(chain removed)")


if __name__ == "__main__":
    main()
