"""Figure 8 — initial compilation time vs number of prefix groups.

Times the full pipeline (FEC computation, VNH assignment, policy
transformation, composition) over the same grid as Figure 7. Expected
shape: compilation time grows super-linearly with prefix groups and with
participant count. Our absolute times are far below the paper's minutes
— its substrate was the Pyretic interpreter; the *growth* is what must
match.
"""

from conftest import publish, publish_json, scaled

from repro.experiments.harness import run_compilation_sweep
from repro.experiments.metrics import render_table
from repro.telemetry.registry import Histogram

PARTICIPANTS = (100, 200, 300)
PREFIXES = tuple(scaled(v) for v in (2_000, 5_000, 10_000, 15_000))


def _run():
    return run_compilation_sweep(
        participant_counts=PARTICIPANTS, prefix_counts=PREFIXES)


def test_fig8_compile_time(benchmark):
    points = benchmark.pedantic(_run, rounds=1, iterations=1)
    publish("fig8_compile_time", render_table(
        ["participants", "prefixes", "prefix groups", "compile seconds"],
        [[p.participants, p.prefixes, p.prefix_groups, f"{p.seconds:.3f}"]
         for p in points]))
    publish_json("fig8_compile_time", [
        {
            "participants": p.participants,
            "prefixes": p.prefixes,
            "prefix_groups": p.prefix_groups,
            "flow_rules": p.flow_rules,
            "compile_seconds": p.seconds,
        }
        for p in points
    ])

    # Summary percentiles through the runtime telemetry histogram, so
    # the figure script and `repro stats` report from one implementation.
    seconds = [p.seconds for p in points]
    histogram = Histogram.from_samples("bench_fig8_compile_seconds", seconds)
    quantiles = histogram.percentiles()
    publish("fig8_compile_time_percentiles", render_table(
        ["quantile", "seconds"],
        [[name, f"{value:.3f}"] for name, value in quantiles.items()]))
    # The streaming histogram's endpoints are exact; its interior
    # quantiles sit within one log-bucket (~5% relative error).
    assert quantiles["max"] == max(seconds)
    assert histogram.quantile(0.0) == min(seconds)
    assert min(seconds) <= quantiles["p50"] <= max(seconds)

    by_count = {}
    for point in points:
        by_count.setdefault(point.participants, []).append(point)
    for count, column in by_count.items():
        column.sort(key=lambda p: p.prefix_groups)
        # Time grows with prefix groups (allowing timer noise at the
        # small end: compare the ends of the sweep).
        assert column[-1].seconds > column[0].seconds
    # Largest configuration is the slowest overall.
    slowest = max(points, key=lambda p: p.seconds)
    assert slowest.participants == max(PARTICIPANTS)
