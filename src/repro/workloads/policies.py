"""The Section 6.1 policy generator: eyeball / transit / content mixes.

From the paper: "the top 15% of eyeball ASes, the top 5% of transit
ASes, and a random set of 5% of content ASes install custom policies",
where

* **content providers** install outbound policies for three randomly
  chosen top eyeball networks, plus one inbound policy matching one
  header field;
* **eyeball networks** install inbound policies for half of the content
  providers, matching one randomly selected header field, and no
  outbound policies;
* **transit networks** install outbound policies for one prefix group
  for half of the top eyeball networks (destination prefix plus one
  header field) and inbound policies proportional to the number of top
  content providers.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.controller import SdxController
from repro.net.addresses import IPv4Prefix
from repro.policy.policies import Policy, drop, fwd, match
from repro.workloads.seeding import SeedLike, derive_seed, make_rng
from repro.workloads.topology import ParticipantSpec, SyntheticIxp

#: Single-field match options used by the generator (field, values).
_FIELD_CHOICES: Tuple[Tuple[str, Tuple[int, ...]], ...] = (
    ("dstport", (80, 443, 8080, 1935, 53)),
    ("srcport", (80, 443, 123, 53)),
    ("protocol", (6, 17)),
)

#: Fractions of each category that install custom policies (Section 6.1).
POLICY_FRACTIONS = {"eyeball": 0.15, "transit": 0.05, "content": 0.05}


@dataclass(frozen=True)
class PolicyAssignment:
    """One generated policy: who installs it, which direction, and why."""

    participant: str
    direction: str  # "in" or "out"
    policy: Policy
    description: str

    def install(self, controller: SdxController) -> None:
        """Install the policy on a controller hosting the participant."""
        install_assignments(controller, [self])


def _single_field_match(rng: random.Random):
    field, values = rng.choice(_FIELD_CHOICES)
    value = rng.choice(values)
    return match(**{field: value}), f"{field}={value}"


def _source_half_match(rng: random.Random):
    half = rng.choice(("0.0.0.0/1", "128.0.0.0/1"))
    return match(srcip=half), f"srcip={half}"


def _policy_installers(ixp: SyntheticIxp,
                       rng: random.Random) -> Tuple[List[ParticipantSpec], ...]:
    eyeballs = [p for p in ixp.participants if p.category == "eyeball"]
    transits = [p for p in ixp.participants if p.category == "transit"]
    contents = [p for p in ixp.participants if p.category == "content"]
    eyeballs.sort(key=lambda p: (-len(p.prefixes), p.name))
    transits.sort(key=lambda p: (-len(p.prefixes), p.name))
    top_eyeballs = eyeballs[:max(1, round(len(eyeballs) * POLICY_FRACTIONS["eyeball"]))]
    top_transits = transits[:max(1, round(len(transits) * POLICY_FRACTIONS["transit"]))]
    content_count = max(1, round(len(contents) * POLICY_FRACTIONS["content"]))
    chosen_content = rng.sample(contents, k=min(content_count, len(contents))) \
        if contents else []
    return top_eyeballs, top_transits, chosen_content


def generate_policies(ixp: SyntheticIxp, *, seed: SeedLike = 0,
                      prefix_sample: Optional[Sequence[IPv4Prefix]] = None
                      ) -> List[PolicyAssignment]:
    """The Section 6.1 policy mix for a synthetic IXP.

    ``prefix_sample``, when given, restricts transit destination-prefix
    policies to that set (the Figure 6 experiments sweep how many
    prefixes have policies applied). ``seed`` is an int or a
    :class:`random.Random`.
    """
    rng = make_rng(seed)
    top_eyeballs, top_transits, chosen_content = _policy_installers(ixp, rng)
    assignments: List[PolicyAssignment] = []

    # Content providers: 3 outbound toward top eyeballs + 1 inbound.
    for content in chosen_content:
        targets = rng.sample(top_eyeballs, k=min(3, len(top_eyeballs)))
        for target in targets:
            if target.name == content.name:
                continue
            predicate, label = _single_field_match(rng)
            assignments.append(PolicyAssignment(
                participant=content.name, direction="out",
                policy=predicate >> fwd(target.name),
                description=f"content {content.name}: {label} -> {target.name}"))
        predicate, label = _single_field_match(rng)
        assignments.append(PolicyAssignment(
            participant=content.name, direction="in",
            policy=predicate,
            description=f"content {content.name}: inbound {label}"))

    # Eyeballs: inbound policies for half of the content providers.
    for eyeball in top_eyeballs:
        count = max(1, len(chosen_content) // 2) if chosen_content else 1
        for _ in range(count):
            if rng.random() < 0.5:
                predicate, label = _source_half_match(rng)
            else:
                predicate, label = _single_field_match(rng)
            port_index = rng.randrange(eyeball.ports)
            assignments.append(PolicyAssignment(
                participant=eyeball.name, direction="in",
                policy=predicate >> _own_port_fwd(eyeball, port_index),
                description=f"eyeball {eyeball.name}: inbound {label} "
                            f"-> port {port_index}"))

    # Transit: outbound (prefix + field) for half the top eyeballs,
    # inbound proportional to content providers.
    eligible_prefixes = list(prefix_sample) if prefix_sample is not None else None
    for transit in top_transits:
        targets = top_eyeballs[:max(1, len(top_eyeballs) // 2)]
        for target in targets:
            if target.name == transit.name or not target.prefixes:
                continue
            pool = [p for p in target.prefixes
                    if eligible_prefixes is None or p in eligible_prefixes]
            if not pool:
                continue
            prefix = rng.choice(pool)
            predicate, label = _single_field_match(rng)
            assignments.append(PolicyAssignment(
                participant=transit.name, direction="out",
                policy=(match(dstip=prefix) & predicate) >> fwd(target.name),
                description=f"transit {transit.name}: {prefix} & {label} "
                            f"-> {target.name}"))
        for _ in range(max(1, len(chosen_content))):
            predicate, label = _single_field_match(rng)
            assignments.append(PolicyAssignment(
                participant=transit.name, direction="in",
                policy=predicate,
                description=f"transit {transit.name}: inbound {label}"))

    return assignments


#: Symbolic target prefix meaning "my own interface number N"; resolved
#: against real switch-port numbers when the policy is installed.
_SELF_PORT = "@self:"


def _own_port_fwd(spec: ParticipantSpec, port_index: int) -> Policy:
    """A forward to the installer's own interface ``port_index``.

    Emitted symbolically because concrete switch-port numbers exist only
    once the participant is attached to a controller.
    """
    return fwd(f"{_SELF_PORT}{port_index}")


def install_assignments(controller: SdxController,
                        assignments: Sequence[PolicyAssignment]) -> int:
    """Install generated assignments on a controller; returns the count.

    Symbolic own-port forwards are resolved against the controller's
    actual port numbering here.
    """
    installed = 0
    for assignment in assignments:
        handle = controller.participant(assignment.participant)
        policy = assignment.policy
        own_ports = handle.participant.switch_ports
        mapping = {
            f"{_SELF_PORT}{index}": handle.port(min(index, len(own_ports) - 1))
            for index in range(4)
        } if own_ports else {}
        policy = policy.substitute_ports(mapping)
        if assignment.direction == "out":
            handle.participant.add_outbound(policy)
        else:
            handle.participant.add_inbound(policy)
        installed += 1
    return installed


# ----------------------------------------------------------------------
# Seeded defect injection (static-analyzer recall testing)
# ----------------------------------------------------------------------

#: Destination ports the Section 6.1 generator never emits; injectors
#: draw from these so an injected clause cannot collide with workload
#: policies (which would change which clause a diagnostic lands on).
_DEFECT_PORTS: Tuple[int, ...] = (2049, 4443, 5432, 6379, 7077, 9090)

#: Documentation prefixes (RFC 5737) — never announced by any workload
#: generator, so a forward pinned to one is route-less by construction.
_UNROUTED_PREFIXES: Tuple[str, ...] = (
    "192.0.2.0/24", "198.51.100.0/24", "203.0.113.0/24")

#: The check ID each injector's defect must be reported under.
DEFECT_KINDS: Tuple[str, ...] = (
    "shadowed_clause", "routeless_forward", "isolation_violation",
    "blackhole", "field_sanity", "unreachable_default")


@dataclass(frozen=True)
class InjectedDefect:
    """One seeded defect and where the analyzer must report it."""

    kind: str
    check_id: str
    participant: str
    direction: str
    description: str
    clause_index: Optional[int] = None
    document: Optional[Dict[str, Any]] = None
    document_index: Optional[int] = None
    prefix: Optional[str] = None

    def matches(self, diagnostic) -> bool:
        """True if ``diagnostic`` reports exactly this defect."""
        if diagnostic.check_id != self.check_id:
            return False
        location = diagnostic.location
        if location.participant != self.participant:
            return False
        if (self.clause_index is not None
                and location.clause_index != self.clause_index):
            return False
        if (self.document_index is not None
                and location.document_index != self.document_index):
            return False
        if self.prefix is not None:
            data = dict(diagnostic.data)
            if self.prefix not in data.get("prefixes", ()):
                return False
        return True


def defect_detected(defect: InjectedDefect, report) -> bool:
    """True if ``report`` contains a diagnostic for ``defect``."""
    return any(defect.matches(diag) for diag in report.diagnostics)


def _physical_names(controller: SdxController) -> List[str]:
    return sorted(
        p.name for p in controller.topology.participants() if not p.is_remote)


def _reachable_pairs(controller: SdxController) -> List[Tuple[str, str]]:
    """(sender, target) pairs where the target eligibly exports >=1 prefix."""
    server = controller.route_server
    names = _physical_names(controller)
    peers = set(server.peers())
    pairs: List[Tuple[str, str]] = []
    for sender in names:
        for target in sorted(peers - {sender}):
            if server.reachable_prefixes(sender, via=target):
                pairs.append((sender, target))
    return pairs


def _fresh_port(controller: SdxController, rng: random.Random,
                *participants: str) -> int:
    """A defect port no existing clause of ``participants`` matches on."""
    used = set()
    for name in participants:
        p = controller.topology.participant(name)
        clauses = list(p.inbound_clauses())
        if not p.is_remote:
            clauses.extend(p.outbound_clauses())
        for clause in clauses:
            used.update(
                value for _f, value in _walk_dstports(clause.predicate))
    candidates = [port for port in _DEFECT_PORTS if port not in used]
    if not candidates:
        raise ValueError(
            f"no fresh defect port available for {participants!r}")
    return rng.choice(candidates)


def _walk_dstports(predicate) -> List[Tuple[str, int]]:
    from repro.policy.policies import Match

    found: List[Tuple[str, int]] = []
    stack = [predicate]
    while stack:
        node = stack.pop()
        if isinstance(node, Match) and "dstport" in node.space:
            found.append(("dstport", node.space["dstport"]))
        stack.extend(node.children())
    return found


def inject_shadowed_clause(controller: SdxController, *,
                           seed: SeedLike = 0) -> InjectedDefect:
    """Install a clause fully shadowed by the one before it (SDX001)."""
    rng = make_rng(seed)
    pairs = _reachable_pairs(controller)
    if not pairs:
        raise ValueError("no (sender, target) pair with eligible prefixes")
    sender, target = rng.choice(pairs)
    port = _fresh_port(controller, rng, sender)
    participant = controller.topology.participant(sender)
    participant.add_outbound(match(dstport=port) >> fwd(target))
    participant.add_outbound(
        (match(dstport=port) & match(protocol=6)) >> fwd(target))
    index = len(participant.outbound_clauses()) - 1
    return InjectedDefect(
        kind="shadowed_clause", check_id="SDX001",
        participant=sender, direction="out", clause_index=index,
        description=f"{sender}: clause #{index} (dstport={port} & protocol=6 "
                    f"-> {target}) shadowed by #{index - 1}")


def inject_routeless_forward(controller: SdxController, *,
                             seed: SeedLike = 0) -> InjectedDefect:
    """Install a fwd() whose match region the BGP join erases (SDX003)."""
    rng = make_rng(seed)
    server = controller.route_server
    announced = server.all_prefixes()
    candidates = [
        IPv4Prefix(text) for text in _UNROUTED_PREFIXES
        if all(IPv4Prefix(text).intersection(p) is None for p in announced)
    ]
    if not candidates:
        raise ValueError("no unannounced documentation prefix available")
    unrouted = rng.choice(candidates)
    names = _physical_names(controller)
    peers = set(server.peers())
    options = [
        (sender, target)
        for sender in names for target in sorted(peers - {sender})
    ]
    if not options:
        raise ValueError("need at least two peers to inject a forward")
    sender, target = rng.choice(options)
    participant = controller.topology.participant(sender)
    participant.add_outbound(match(dstip=unrouted) >> fwd(target))
    index = len(participant.outbound_clauses()) - 1
    return InjectedDefect(
        kind="routeless_forward", check_id="SDX003",
        participant=sender, direction="out", clause_index=index,
        description=f"{sender}: clause #{index} forwards {unrouted} to "
                    f"{target}, which exports no covering route")


def inject_blackhole(controller: SdxController, *,
                     seed: SeedLike = 0) -> InjectedDefect:
    """Steer one sender's traffic into a peer whose inbound drops it
    (SDX005)."""
    rng = make_rng(seed)
    pairs = _reachable_pairs(controller)
    if not pairs:
        raise ValueError("no (sender, target) pair with eligible prefixes")
    sender, target = rng.choice(pairs)
    port = _fresh_port(controller, rng, sender, target)
    egress = controller.topology.participant(target)
    egress.add_inbound(match(dstport=port) >> drop)
    participant = controller.topology.participant(sender)
    participant.add_outbound(match(dstport=port) >> fwd(target))
    index = len(participant.outbound_clauses()) - 1
    return InjectedDefect(
        kind="blackhole", check_id="SDX005",
        participant=sender, direction="out", clause_index=index,
        description=f"{sender}: clause #{index} steers dstport={port} into "
                    f"{target}, whose inbound drops it")


def inject_unreachable_default(controller: SdxController, *,
                               seed: SeedLike = 0) -> InjectedDefect:
    """Deny one participant the only route toward a prefix (SDX007)."""
    rng = make_rng(seed)
    server = controller.route_server
    names = _physical_names(controller)
    options: List[Tuple[str, str, IPv4Prefix]] = []
    for prefix in server.all_prefixes():
        routes = server.all_routes_for(prefix)
        announcers = {entry.learned_from for entry in routes}
        if len(announcers) != 1:
            continue
        announcer = next(iter(announcers))
        for victim in names:
            if victim == announcer:
                continue
            if prefix in server.announced_by(victim):
                continue
            if server.best_route_for(victim, prefix) is None:
                continue  # already unreachable; nothing to inject
            options.append((victim, announcer, prefix))
    if not options:
        raise ValueError("no single-announcer prefix to cut off")
    victim, announcer, prefix = rng.choice(options)
    deny, allow = server.export_policy(announcer)
    server.set_export_policy(
        announcer, deny=set(deny) | {victim}, allow=allow)
    return InjectedDefect(
        kind="unreachable_default", check_id="SDX007",
        participant=victim, direction="out", prefix=str(prefix),
        description=f"{victim}: lost its only route toward {prefix} "
                    f"(export denied by {announcer})")


def inject_isolation_violation(controller: SdxController, *,
                               seed: SeedLike = 0) -> InjectedDefect:
    """A raw policy document matching the SDX virtual-MAC space (SDX004)."""
    rng = make_rng(seed)
    names = _physical_names(controller)
    if not names:
        raise ValueError("no physical participant to attribute the policy to")
    sender = rng.choice(names)
    others = [n for n in names if n != sender] or [sender]
    target = rng.choice(others)
    vmac = f"a2:00:00:00:00:{rng.randrange(256):02x}"
    document = {
        "match": {"kind": "match", "fields": {"dstmac": vmac}},
        "fwd": target,
    }
    return InjectedDefect(
        kind="isolation_violation", check_id="SDX004",
        participant=sender, direction="out", document=document,
        description=f"{sender}: raw policy matches reserved field dstmac "
                    f"({vmac}, inside the VMAC range)")


def inject_field_sanity_defect(controller: SdxController, *,
                               seed: SeedLike = 0) -> InjectedDefect:
    """A raw policy document that fails field/type validation (SDX006)."""
    rng = make_rng(seed)
    names = _physical_names(controller)
    if not names:
        raise ValueError("no physical participant to attribute the policy to")
    sender = rng.choice(names)
    others = [n for n in names if n != sender] or [sender]
    target = rng.choice(others)
    variants: Tuple[Dict[str, Any], ...] = (
        {"match": {"kind": "match", "fields": {"dstprot": "6"}},
         "fwd": target},
        {"match": {"kind": "match", "fields": {"dstport": "-80"}},
         "fwd": target},
        {"match": {"kind": "match", "fields": {"dstip": "10.0.0.0/40"}},
         "fwd": target},
        {"match": {"kind": "match", "fields": {"dstport": "80"}},
         "fwd": target, "drop": True},
    )
    document = rng.choice(variants)
    return InjectedDefect(
        kind="field_sanity", check_id="SDX006",
        participant=sender, direction="out", document=document,
        description=f"{sender}: raw policy fails field/type sanity "
                    f"({document['match']['fields']})")


_INJECTORS = {
    "shadowed_clause": inject_shadowed_clause,
    "routeless_forward": inject_routeless_forward,
    "isolation_violation": inject_isolation_violation,
    "blackhole": inject_blackhole,
    "field_sanity": inject_field_sanity_defect,
    "unreachable_default": inject_unreachable_default,
}


def inject_defects(controller: SdxController, *, seed: SeedLike = 0,
                   kinds: Sequence[str] = DEFECT_KINDS
                   ) -> List[InjectedDefect]:
    """Inject one seeded defect per kind; returns them in ``kinds`` order.

    Raw-document defects get consecutive ``document_index`` values in
    injection order — pass the documents to the analyzer in that same
    order (see :func:`defect_documents`).
    """
    defects: List[InjectedDefect] = []
    document_index = 0
    for kind in kinds:
        try:
            injector = _INJECTORS[kind]
        except KeyError:
            raise ValueError(
                f"unknown defect kind {kind!r}; known: "
                f"{sorted(_INJECTORS)}") from None
        defect = injector(controller, seed=derive_seed(seed, f"defect-{kind}"))
        if defect.document is not None:
            defect = InjectedDefect(
                **{**defect.__dict__, "document_index": document_index})
            document_index += 1
        defects.append(defect)
    return defects


def defect_documents(defects: Sequence[InjectedDefect]):
    """The raw policy documents of ``defects`` as analyzer inputs."""
    from repro.statics.diagnostics import RawPolicyDocument

    documents = []
    for defect in defects:
        if defect.document is None:
            continue
        documents.append(RawPolicyDocument(
            participant=defect.participant, direction=defect.direction,
            clause=defect.document, index=defect.document_index or 0))
    return documents


# ----------------------------------------------------------------------
# Dataplane defect injection (SDX010/SDX012 recall testing)
# ----------------------------------------------------------------------

#: The dataplane-level defect kinds and their check IDs. Unlike the
#: policy-level kinds these corrupt the *installed flow table* (through
#: the southbound engine), so only `repro.statics.dataplane` can see
#: them — the policy analyzer's view is clean by construction.
DATAPLANE_DEFECT_KINDS: Tuple[str, ...] = (
    "compiled_blackhole", "shadowed_install")


def _fresh_table_dstport(controller: SdxController,
                         rng: random.Random) -> int:
    """A defect port no installed rule matches on."""
    used = {rule.match.get("dstport") for rule in controller.table.rules}
    candidates = [port for port in _DEFECT_PORTS if port not in used]
    if not candidates:
        raise ValueError("no fresh defect dstport available in the table")
    return rng.choice(candidates)


def _free_priority(controller: SdxController, priority: int, match) -> int:
    """The highest priority <= ``priority`` whose key is uninstalled."""
    while controller.table.rule_for_key(priority, match) is not None:
        priority -= 1
        if priority <= 0:
            raise ValueError("no free priority below the requested one")
    return priority


def inject_compiled_blackhole(controller: SdxController, *,
                              seed: SeedLike = 0) -> InjectedDefect:
    """Install a rule rewriting traffic to a dead VMAC (SDX012).

    The rule matches an announced prefix plus a fresh destination port at
    a priority just under the fast-path band, and its rewrite targets a
    virtual MAC the allocator never assigned — the compiled-artifact
    analogue of a blackhole: the fabric tags the traffic for a next hop
    that does not exist.
    """
    from repro.core.incremental import FAST_PATH_BASE
    from repro.net.mac import vmac_for_fec
    from repro.policy.classifier import Action
    from repro.policy.flowrules import FlowRule
    from repro.policy.headerspace import HeaderSpace

    rng = make_rng(seed)
    prefixes = sorted(controller.route_server.all_prefixes())
    if not prefixes:
        raise ValueError("no announced prefix to blackhole")
    prefix = rng.choice(prefixes)
    port = _fresh_table_dstport(controller, rng)
    live = set(controller.allocator.vmac_index())
    dead = vmac_for_fec(rng.randrange(500_000, 900_000))
    while dead in live:  # pragma: no cover - astronomically unlikely
        dead = vmac_for_fec(rng.randrange(500_000, 900_000))
    egress_ports = [
        p for participant in controller.topology.participants()
        for p in participant.switch_ports]
    if not egress_ports:
        raise ValueError("no physical participant port for the rewrite")
    space = HeaderSpace(dstip=prefix, dstport=port)
    priority = _free_priority(controller, FAST_PATH_BASE - 1, space)
    rule = FlowRule(priority=priority, match=space,
                    actions=(Action(dstmac=dead, port=rng.choice(egress_ports)),))
    controller.southbound.push_rules([rule])
    return InjectedDefect(
        kind="compiled_blackhole", check_id="SDX012",
        participant="table", direction="rule", clause_index=priority,
        description=f"table: rule #{priority} rewrites {prefix} "
                    f"dstport={port} to dead VMAC {dead}")


def inject_shadowed_install(controller: SdxController, *,
                            seed: SeedLike = 0) -> InjectedDefect:
    """Install a rule fully shadowed by an already-installed one (SDX010).

    Duplicates an installed rule's match at a just-lower priority with
    drop actions: the higher twin wins every packet, so the new rule is
    dead weight — the installed-table analogue of a shadowed clause.
    """
    from repro.policy.flowrules import FlowRule

    rng = make_rng(seed)
    candidates = [rule for rule in controller.table.rules
                  if rule.priority > 1 and len(rule.match)]
    if not candidates:
        raise ValueError("no installed rule to shadow")
    victim = rng.choice(candidates)
    priority = _free_priority(controller, victim.priority - 1, victim.match)
    rule = FlowRule(priority=priority, match=victim.match, actions=())
    controller.southbound.push_rules([rule])
    return InjectedDefect(
        kind="shadowed_install", check_id="SDX010",
        participant="table", direction="rule", clause_index=priority,
        description=f"table: rule #{priority} duplicates the match of "
                    f"rule #{victim.priority} at lower priority")


_DATAPLANE_INJECTORS = {
    "compiled_blackhole": inject_compiled_blackhole,
    "shadowed_install": inject_shadowed_install,
}


def inject_dataplane_defects(controller: SdxController, *,
                             seed: SeedLike = 0,
                             kinds: Sequence[str] = DATAPLANE_DEFECT_KINDS
                             ) -> List[InjectedDefect]:
    """Inject one seeded dataplane defect per kind, in ``kinds`` order.

    The controller must be started (the injectors corrupt the installed
    table). Detection is checked against
    :func:`repro.statics.dataplane.analyze_flowtable` output — or the
    live verifier's incremental report, which must agree byte for byte.
    """
    defects: List[InjectedDefect] = []
    for kind in kinds:
        try:
            injector = _DATAPLANE_INJECTORS[kind]
        except KeyError:
            raise ValueError(
                f"unknown dataplane defect kind {kind!r}; known: "
                f"{sorted(_DATAPLANE_INJECTORS)}") from None
        defects.append(injector(
            controller, seed=derive_seed(seed, f"defect-{kind}")))
    return defects


# ----------------------------------------------------------------------
# Federation defect injection (SDX008/SDX009 recall testing)
# ----------------------------------------------------------------------

#: The federation-level defect kinds and their check IDs.
FEDERATION_DEFECT_KINDS: Tuple[str, ...] = (
    "federation_loop", "stitched_blackhole")


def _federation_fresh_port(federation, rng: random.Random) -> int:
    """A defect port no clause anywhere in the federation matches on."""
    used = set()
    for exchange in federation.exchanges():
        controller = federation.exchange(exchange)
        for participant in controller.topology.participants():
            clauses = list(participant.inbound_clauses())
            if not participant.is_remote:
                clauses.extend(participant.outbound_clauses())
            for clause in clauses:
                used.update(
                    value for _f, value in _walk_dstports(clause.predicate))
    candidates = [port for port in _DEFECT_PORTS if port not in used]
    if not candidates:
        raise ValueError("no fresh defect port available in the federation")
    return rng.choice(candidates)


def _federation_unrouted_prefix(federation, rng: random.Random) -> IPv4Prefix:
    """A documentation prefix no exchange in the federation announces."""
    announced: List[IPv4Prefix] = []
    for exchange in federation.exchanges():
        announced.extend(federation.exchange(exchange)
                         .route_server.all_prefixes())
    candidates = [
        IPv4Prefix(text) for text in _UNROUTED_PREFIXES
        if all(IPv4Prefix(text).intersection(p) is None for p in announced)
    ]
    if not candidates:
        raise ValueError("no unannounced documentation prefix available")
    return rng.choice(candidates)


def _shared_pairs(federation) -> List[Tuple[str, str, str, str]]:
    """(X, Y, A, B) choices: shared X and Y both present at A and B."""
    shared = federation.shared_participants()
    pairs: List[Tuple[str, str, str, str]] = []
    for left in shared:
        for right in shared:
            if right == left:
                continue
            common = [exchange for exchange in federation.presence(left)
                      if exchange in federation.presence(right)]
            if len(common) >= 2:
                pairs.append((left, right, common[0], common[1]))
    return pairs


def inject_federation_loop(federation, *,
                           seed: SeedLike = 0) -> InjectedDefect:
    """Seed the canonical Prelude loop across two exchanges (SDX008).

    Shared participants X and Y each claim transit for a fresh prefix at
    a different exchange; X's outbound at B steers matching traffic into
    Y, Y's outbound at A steers it back into X. Each clause is locally
    valid, and the composed path cycles ``(B,X) -> (A,Y) -> (B,X)``.
    """
    from repro.bgp.asn import AsPath

    rng = make_rng(seed)
    pairs = _shared_pairs(federation)
    if not pairs:
        raise ValueError(
            "need two shared participants with two common exchanges")
    left, right, first, second = rng.choice(pairs)
    prefix = _federation_unrouted_prefix(federation, rng)
    port = _federation_fresh_port(federation, rng)
    left_asn = federation.topology.participant(left).asn
    right_asn = federation.topology.participant(right).asn
    origin_asn = rng.randrange(1_000, 60_000)
    federation.announce_route(
        first, left, prefix, AsPath([left_asn, origin_asn]))
    federation.announce_route(
        second, right, prefix, AsPath([right_asn, origin_asn]))
    clause = match(dstport=port)
    federation.exchange(second).topology.participant(left).add_outbound(
        clause >> fwd(right))
    federation.exchange(first).topology.participant(right).add_outbound(
        clause >> fwd(left))
    anchor = federation.exchange(second).topology.participant(left)
    index = len(anchor.outbound_clauses()) - 1
    return InjectedDefect(
        kind="federation_loop", check_id="SDX008",
        participant=left, direction="out", clause_index=index,
        description=f"{left}: clause #{index} at {second} "
                    f"(dstport={port} -> {right}) composes with "
                    f"{right}'s clause at {first} into the cycle "
                    f"{second}:{left} -> {first}:{right}")


def inject_stitched_blackhole(federation, *,
                              seed: SeedLike = 0) -> InjectedDefect:
    """Seed a cross-exchange blackhole (SDX009).

    A sender at exchange A steers matching traffic into a shared
    participant T whose route re-enters exchange B — where T's own
    outbound policy drops it. Exchange A accepted traffic the stitched
    path can never deliver.
    """
    from repro.bgp.asn import AsPath

    rng = make_rng(seed)
    options: List[Tuple[str, str, str, str, str]] = []
    for transit in federation.shared_participants():
        presence = federation.presence(transit)
        for entry in presence:
            for other in presence:
                if other == entry:
                    continue
                senders = [name for name in federation.topology.names()
                           if name != transit
                           and entry in federation.presence(name)]
                relays = [name for name in federation.topology.names()
                          if name != transit
                          and other in federation.presence(name)]
                for sender in senders:
                    for relay in relays:
                        options.append(
                            (sender, transit, relay, entry, other))
    if not options:
        raise ValueError(
            "need a shared participant with peers at two exchanges")
    sender, transit, relay, first, second = rng.choice(options)
    prefix = _federation_unrouted_prefix(federation, rng)
    port = _federation_fresh_port(federation, rng)
    transit_asn = federation.topology.participant(transit).asn
    relay_asn = federation.topology.participant(relay).asn
    origin_asn = rng.randrange(1_000, 60_000)
    federation.announce_route(
        first, transit, prefix, AsPath([transit_asn, origin_asn]))
    federation.announce_route(
        second, relay, prefix, AsPath([relay_asn, origin_asn]))
    federation.exchange(first).topology.participant(sender).add_outbound(
        match(dstport=port) >> fwd(transit))
    federation.exchange(second).topology.participant(transit).add_outbound(
        match(dstport=port) >> drop)
    anchor = federation.exchange(first).topology.participant(sender)
    index = len(anchor.outbound_clauses()) - 1
    return InjectedDefect(
        kind="stitched_blackhole", check_id="SDX009",
        participant=sender, direction="out", clause_index=index,
        description=f"{sender}: clause #{index} at {first} steers "
                    f"dstport={port} into {transit}, whose outbound at "
                    f"{second} drops it after re-entry")


_FEDERATION_INJECTORS = {
    "federation_loop": inject_federation_loop,
    "stitched_blackhole": inject_stitched_blackhole,
}


def inject_federation_defects(federation, *, seed: SeedLike = 0,
                              kinds: Sequence[str] = FEDERATION_DEFECT_KINDS
                              ) -> List[InjectedDefect]:
    """Inject one seeded federation defect per kind, in ``kinds`` order."""
    defects: List[InjectedDefect] = []
    for kind in kinds:
        try:
            injector = _FEDERATION_INJECTORS[kind]
        except KeyError:
            raise ValueError(
                f"unknown federation defect kind {kind!r}; known: "
                f"{sorted(_FEDERATION_INJECTORS)}") from None
        defects.append(injector(
            federation, seed=derive_seed(seed, f"defect-{kind}")))
    return defects
