"""Cross-validation of analyzer verdicts against the reference interpreter."""

import pytest

from repro.net.packet import Packet
from repro.verification.corpus import generate_corpus
from repro.verification.reference import ReferenceInterpreter
from repro.verification.scenario import (
    Scenario,
    ScenarioAnnouncement,
    ScenarioParticipant,
    ScenarioPolicy,
    generate_scenario,
)
from repro.verification.statics import statics_crosscheck


def hand_scenario():
    """Two members; A forwards web traffic to B, who announces 20/8."""
    return Scenario(
        seed=0,
        participants=(
            ScenarioParticipant("A", 65001, 1),
            ScenarioParticipant("B", 65002, 1),
        ),
        prefixes=("20.0.0.0/8",),
        announcements=(
            ScenarioAnnouncement("B", "20.0.0.0/8", (65002, 100)),
        ),
        policies=(
            ScenarioPolicy(participant="A", direction="out",
                           field="dstport", value=80, target="B"),
        ),
        trace=())


class TestWinningOutboundClause:
    def reference(self):
        return ReferenceInterpreter(hand_scenario())

    def test_policy_clause_wins_matching_traffic(self):
        packet = Packet(dstip="20.1.2.3", dstport=80, protocol=6)
        assert self.reference().winning_outbound_clause("A", packet) == 0

    def test_default_route_traffic_maps_to_none(self):
        packet = Packet(dstip="20.1.2.3", dstport=443, protocol=6)
        assert self.reference().winning_outbound_clause("A", packet) is None

    def test_uncovered_destination_maps_to_none(self):
        packet = Packet(dstip="99.1.2.3", dstport=80, protocol=6)
        assert self.reference().winning_outbound_clause("A", packet) is None

    def test_missing_dstip_maps_to_none(self):
        packet = Packet(dstport=80, protocol=6)
        assert self.reference().winning_outbound_clause("A", packet) is None


class TestStaticsCrosscheck:
    def test_hand_scenario_holds(self):
        assert statics_crosscheck(hand_scenario()) is None

    @pytest.mark.parametrize("seed", (1, 2, 3))
    def test_generated_scenarios_hold(self, seed):
        scenario = generate_scenario(
            seed, participants=4, prefixes=4, policies=5, steps=6)
        corpus = generate_corpus(scenario, size=8)
        assert statics_crosscheck(scenario, corpus=corpus) is None
