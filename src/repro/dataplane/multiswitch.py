"""Multi-switch SDX fabrics (Section 4.1's topology abstraction).

"More generally, the SDX may consist of multiple physical switches, each
connected to a subset of the participants. Fortunately, we can rely on
Pyretic's existing support for topology abstraction to combine a policy
written for a single SDX switch with another policy for routing across
multiple physical switches."

This module implements that combination directly: the SDX compiler keeps
emitting one *big-switch* classifier over global port numbers, and
:func:`partition_classifier` derives each physical switch's table from
it —

* rules whose ingress port lives on the switch are installed there;
* actions delivering to a port on another switch are rewritten to the
  trunk port of the next hop along the (precomputed shortest) path,
  with the frame's final destination preserved by the destination MAC
  the big-switch rule already stamped;
* every switch gets transit rules forwarding by destination MAC for
  frames arriving on trunk ports.

This works because the SDX's big-switch output always carries a unique
per-egress destination MAC (the receiving router port's address) — the
same invariant the single-switch data plane relies on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.exceptions import FabricError
from repro.net.mac import MacAddress
from repro.policy.classifier import Action, Classifier, Rule
from repro.policy.headerspace import WILDCARD, HeaderSpace


@dataclass(frozen=True)
class TrunkLink:
    """A bidirectional inter-switch link: (switch, port) <-> (switch, port)."""

    left_switch: str
    left_port: int
    right_switch: str
    right_port: int

    def endpoint(self, switch: str) -> Optional[int]:
        """The trunk port on ``switch``, if this link touches it."""
        if switch == self.left_switch:
            return self.left_port
        if switch == self.right_switch:
            return self.right_port
        return None

    def other_end(self, switch: str) -> Tuple[str, int]:
        """The (switch, port) across the link from ``switch``."""
        if switch == self.left_switch:
            return self.right_switch, self.right_port
        if switch == self.right_switch:
            return self.left_switch, self.left_port
        raise FabricError(f"link {self} does not touch switch {switch!r}")


class SdxTopology:
    """Which switch owns which (globally numbered) edge port, plus trunks."""

    def __init__(self) -> None:
        self._switch_of_port: Dict[int, str] = {}
        self._switches: Set[str] = set()
        self._links: List[TrunkLink] = []

    def add_switch(self, name: str) -> None:
        """Declare a physical switch."""
        if name in self._switches:
            raise FabricError(f"switch {name!r} already declared")
        self._switches.add(name)

    def assign_port(self, port: int, switch: str) -> None:
        """Place global edge port ``port`` on ``switch``."""
        if switch not in self._switches:
            raise FabricError(f"unknown switch {switch!r}")
        if port in self._switch_of_port:
            raise FabricError(f"port {port} already assigned")
        self._switch_of_port[port] = switch

    def add_link(self, left_switch: str, left_port: int,
                 right_switch: str, right_port: int) -> None:
        """Connect two switches with a trunk link."""
        for name in (left_switch, right_switch):
            if name not in self._switches:
                raise FabricError(f"unknown switch {name!r}")
        if left_switch == right_switch:
            raise FabricError("a trunk link must join two distinct switches")
        for endpoint, switch in ((left_port, left_switch), (right_port, right_switch)):
            if endpoint in self._switch_of_port:
                raise FabricError(
                    f"trunk port {endpoint} collides with an edge port")
        self._links.append(TrunkLink(left_switch, left_port,
                                     right_switch, right_port))

    @property
    def switches(self) -> Tuple[str, ...]:
        """All declared switches, sorted."""
        return tuple(sorted(self._switches))

    @property
    def links(self) -> Tuple[TrunkLink, ...]:
        """All trunk links."""
        return tuple(self._links)

    def switch_of(self, port: int) -> str:
        """The switch owning edge port ``port``."""
        try:
            return self._switch_of_port[port]
        except KeyError:
            raise FabricError(f"edge port {port} not assigned to a switch") from None

    def edge_ports(self, switch: str) -> Tuple[int, ...]:
        """Edge ports on ``switch``, sorted."""
        return tuple(sorted(
            port for port, owner in self._switch_of_port.items()
            if owner == switch))

    def trunk_ports(self, switch: str) -> Tuple[int, ...]:
        """Trunk ports on ``switch``, sorted."""
        ports = []
        for link in self._links:
            endpoint = link.endpoint(switch)
            if endpoint is not None:
                ports.append(endpoint)
        return tuple(sorted(ports))

    def next_hops(self) -> Dict[Tuple[str, str], Tuple[str, int]]:
        """Shortest-path routing table between switches.

        Maps (from switch, to switch) to (neighbour switch, trunk port to
        use on the *from* switch). Computed by BFS; raises if the trunk
        graph is disconnected.
        """
        neighbours: Dict[str, List[Tuple[str, int]]] = {
            name: [] for name in self._switches}
        for link in self._links:
            neighbours[link.left_switch].append(
                (link.right_switch, link.left_port))
            neighbours[link.right_switch].append(
                (link.left_switch, link.right_port))
        table: Dict[Tuple[str, str], Tuple[str, int]] = {}
        for source in self._switches:
            # BFS from source.
            parent: Dict[str, Tuple[str, int]] = {}
            frontier = [source]
            seen = {source}
            while frontier:
                current = frontier.pop(0)
                for neighbour, via_port in neighbours[current]:
                    if neighbour in seen:
                        continue
                    seen.add(neighbour)
                    parent[neighbour] = (current, via_port)
                    frontier.append(neighbour)
            for target in self._switches:
                if target == source:
                    continue
                if target not in parent:
                    raise FabricError(
                        f"switches {source!r} and {target!r} are not connected")
                # Walk back to find the first hop out of source.
                node = target
                while parent[node][0] != source:
                    node = parent[node][0]
                table[(source, target)] = (node, parent[node][1])
        return table


def partition_classifier(big_switch: Classifier,
                         topology: SdxTopology) -> Dict[str, Classifier]:
    """Split a big-switch classifier into per-physical-switch tables.

    See the module docstring for the scheme. The result maps switch name
    to its classifier over *local* port numbers (edge ports keep their
    global numbers; trunk ports are as declared in the topology).
    """
    next_hops = topology.next_hops()
    tables: Dict[str, List[Rule]] = {name: [] for name in topology.switches}

    # Destination-MAC transit rules: collected from the big-switch rules'
    # final delivery actions (dstmac -> egress port).
    delivery_of_mac: Dict[MacAddress, int] = {}
    for rule in big_switch.rules:
        for action in rule.actions:
            egress = action.output_port
            dstmac = action.get("dstmac")
            if egress is not None and dstmac is not None:
                existing = delivery_of_mac.get(dstmac)
                if existing is not None and existing != egress:
                    raise FabricError(
                        f"dstmac {dstmac} delivered to two ports "
                        f"({existing} and {egress})")
                delivery_of_mac[dstmac] = egress

    for rule in big_switch.rules:
        homes = _ingress_switches(rule.match, topology)
        for home in homes:
            local_match = rule.match
            local_actions = []
            for action in rule.actions:
                egress = action.output_port
                if egress is None:
                    local_actions.append(action)
                    continue
                target_switch = topology.switch_of(egress)
                if target_switch == home:
                    local_actions.append(action)
                else:
                    _next, trunk_port = next_hops[(home, target_switch)]
                    assignments = dict(action)
                    assignments["port"] = trunk_port
                    local_actions.append(Action(**assignments))
            tables[home].append(Rule(local_match, tuple(local_actions)))

    # Transit rules: frames arriving on trunk ports forward by dstmac.
    for name in topology.switches:
        trunk_ports = topology.trunk_ports(name)
        if not trunk_ports:
            continue
        for dstmac, egress in sorted(delivery_of_mac.items()):
            target_switch = topology.switch_of(egress)
            if target_switch == name:
                out_port = egress
            else:
                _next, out_port = next_hops[(name, target_switch)]
            for trunk in trunk_ports:
                tables[name].append(Rule(
                    HeaderSpace(port=trunk, dstmac=dstmac),
                    (Action(port=out_port),)))

    partitioned: Dict[str, Classifier] = {}
    for name, rules in tables.items():
        rules.append(Rule(WILDCARD, ()))
        partitioned[name] = Classifier(rules)
    return partitioned


def _ingress_switches(match: HeaderSpace,
                      topology: SdxTopology) -> Tuple[str, ...]:
    """The switches where a big-switch rule must be installed.

    A rule pinned to one ingress port installs only on that port's
    switch; an ingress-wildcard rule (shared defaults, MAC-learning)
    installs everywhere.
    """
    port = match.get("port")
    if port is None:
        return topology.switches
    return (topology.switch_of(port),)


class MultiSwitchDataPlane:
    """Several software switches wired by trunks, processing as one fabric.

    Intended for verification: :meth:`process` carries a packet from its
    ingress edge port across however many switches the partitioned tables
    require, returning the final (edge port, packet) deliveries — which
    must equal what the big-switch classifier produces directly (a
    property the test suite checks).
    """

    def __init__(self, topology: SdxTopology,
                 tables: Dict[str, Classifier], max_hops: int = 8):
        self.topology = topology
        self.tables = tables
        self.max_hops = max_hops
        # trunk port -> (other switch, other port)
        self._peer_of_trunk: Dict[Tuple[str, int], Tuple[str, int]] = {}
        for link in topology.links:
            self._peer_of_trunk[(link.left_switch, link.left_port)] = (
                link.right_switch, link.right_port)
            self._peer_of_trunk[(link.right_switch, link.right_port)] = (
                link.left_switch, link.left_port)

    def process(self, packet) -> List[Tuple[int, "object"]]:
        """Deliveries at edge ports for a packet entering at its ``port``."""
        ingress = packet.port
        if ingress is None:
            raise FabricError("packet has no ingress port")
        switch = self.topology.switch_of(ingress)
        pending = [(switch, packet, 0)]
        deliveries: List[Tuple[int, object]] = []
        while pending:
            current_switch, current_packet, hops = pending.pop()
            if hops > self.max_hops:
                raise FabricError("forwarding loop across switches")
            table = self.tables[current_switch]
            rule = table.first_match(current_packet)
            if rule is None or rule.is_drop:
                continue
            for result in rule.apply(current_packet):
                egress = result.port
                if egress is None:
                    continue
                peer = self._peer_of_trunk.get((current_switch, egress))
                if peer is None:
                    deliveries.append((egress, result))
                else:
                    peer_switch, peer_port = peer
                    pending.append(
                        (peer_switch, result.at_port(peer_port), hops + 1))
        return deliveries
