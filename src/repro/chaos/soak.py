"""The budgeted chaos soak loop behind ``python -m repro soak --chaos``.

Mirrors :mod:`repro.verification.fuzz`: each iteration derives an
independent (scenario, schedule) pair from the session seed, runs the
chaos driver, and — on an assertion failure — shrinks both dimensions
and saves a replayable artifact. The loop stops at the configured
scenario count or when the wall-clock budget is spent. All activity
lands in the ``sdx_chaos_*`` metric family next to the driver's own
counters, so a soak session shows up in ``repro stats``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.chaos.artifact import ChaosArtifact
from repro.chaos.driver import ChaosConfig, ChaosReport, run_chaos
from repro.chaos.shrink import shrink_chaos
from repro.telemetry import Telemetry, get_telemetry
from repro.verification.oracle import OracleFailure
from repro.verification.scenario import Scenario, generate_scenario
from repro.workloads.churn import (
    FAULT_KINDS,
    ChaosSchedule,
    generate_chaos_schedule,
)
from repro.workloads.seeding import derive_seed


@dataclass(frozen=True)
class ChaosSoakConfig:
    """Tunables for one chaos soak session.

    Scenario shape parameters match :class:`~repro.verification.fuzz
    .FuzzConfig`; ``faults`` and ``fault_kinds`` shape each derived
    schedule (the default schedule length covers every kind, see
    :func:`~repro.workloads.churn.generate_chaos_schedule`); ``chaos``
    overrides the per-run driver configuration.
    """

    seed: int = 0
    scenarios: int = 3
    steps: int = 16
    participants: int = 4
    prefixes: int = 4
    policies: int = 4
    faults: int = 6
    fault_kinds: Tuple[str, ...] = FAULT_KINDS
    artifact_dir: Optional[str] = None
    time_budget_seconds: Optional[float] = None
    shrink: bool = True
    chaos: ChaosConfig = field(default_factory=ChaosConfig)


@dataclass(frozen=True)
class ChaosFinding:
    """One failing chaos run: where it came from and what it broke."""

    scenario_index: int
    scenario_seed: int
    schedule_seed: int
    failure: OracleFailure
    shrunk_trace_length: int
    shrunk_fault_count: int
    original_trace_length: int
    original_fault_count: int
    artifact_path: Optional[str]


@dataclass
class ChaosSoakReport:
    """The outcome of one chaos soak session."""

    config: ChaosSoakConfig
    scenarios_run: int = 0
    faults_applied: int = 0
    steps_executed: int = 0
    settle_checks: int = 0
    shrink_runs: int = 0
    findings: List[ChaosFinding] = field(default_factory=list)
    convergence: Dict[str, Dict[str, float]] = field(default_factory=dict)
    budget_exhausted: bool = False
    elapsed_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        """True when no run failed an assertion."""
        return not self.findings

    def kinds_covered(self) -> Tuple[str, ...]:
        """Fault kinds applied at least once, in canonical order."""
        return tuple(kind for kind in FAULT_KINDS
                     if kind in self.convergence)

    def _merge_convergence(self, report: ChaosReport) -> None:
        for kind, stats in report.convergence_by_kind().items():
            slot = self.convergence.setdefault(kind, {
                "faults": 0.0, "events": 0.0, "batches": 0.0,
                "wall_seconds": 0.0})
            for key, value in stats.items():
                slot[key] += value

    def summary(self) -> str:
        """A deterministic multi-line summary (no wall-clock numbers)."""
        lines = [
            f"chaos seed={self.config.seed}: {self.scenarios_run} "
            f"scenario(s), {self.faults_applied} fault(s) applied, "
            f"{self.steps_executed} step(s), {self.settle_checks} "
            f"settle check(s)",
        ]
        covered = self.kinds_covered()
        if covered:
            lines.append("fault kinds covered: " + ", ".join(covered))
        for kind in covered:
            stats = self.convergence[kind]
            lines.append(
                f"  {kind}: {int(stats['faults'])} fault(s), "
                f"{int(stats['events'])} convergence event(s), "
                f"{int(stats['batches'])} batch(es)")
        if self.budget_exhausted:
            lines.append("time budget exhausted before the scenario count")
        if not self.findings:
            lines.append("no assertion failure found")
        for finding in self.findings:
            lines.append(
                f"FAIL scenario#{finding.scenario_index} "
                f"(seed {finding.scenario_seed}): {finding.failure.kind} "
                f"after step {finding.failure.step}, shrunk to "
                f"{finding.shrunk_trace_length} step(s) + "
                f"{finding.shrunk_fault_count} fault(s)")
            lines.append(f"  {finding.failure.detail}")
            if finding.artifact_path:
                lines.append(f"  artifact: {finding.artifact_path}")
        return "\n".join(lines)


def _scenario_for(config: ChaosSoakConfig, index: int) -> Scenario:
    """The ``index``-th scenario of a session, independently seeded."""
    return generate_scenario(
        derive_seed(config.seed, f"chaos-scenario-{index}"),
        participants=config.participants,
        prefixes=config.prefixes,
        policies=config.policies,
        steps=config.steps)


def _schedule_for(config: ChaosSoakConfig, index: int,
                  scenario: Scenario) -> ChaosSchedule:
    """The fault schedule paired with the ``index``-th scenario."""
    return generate_chaos_schedule(
        derive_seed(config.seed, f"chaos-schedule-{index}"),
        scenario.participant_names(),
        prefixes=scenario.prefixes,
        trace_length=len(scenario.trace),
        faults=config.faults,
        kinds=config.fault_kinds)


def run_chaos_soak(config: ChaosSoakConfig,
                   telemetry: Optional[Telemetry] = None) -> ChaosSoakReport:
    """Run one chaos soak session; never raises on a finding."""
    telemetry = telemetry if telemetry is not None else get_telemetry()
    registry = telemetry.registry
    scenarios_counter = registry.counter(
        "sdx_chaos_scenarios_total", "Chaos scenarios executed")
    failures_counter = registry.counter(
        "sdx_chaos_runs_failed_total",
        "Chaos runs that failed a settle assertion")
    shrink_counter = registry.counter(
        "sdx_chaos_shrink_runs_total", "Chaos executions spent shrinking")

    report = ChaosSoakReport(config=config)
    started = time.monotonic()

    def out_of_budget() -> bool:
        if config.time_budget_seconds is None:
            return False
        return time.monotonic() - started >= config.time_budget_seconds

    def runner(scenario: Scenario,
               schedule: ChaosSchedule) -> Optional[OracleFailure]:
        return run_chaos(scenario, schedule, config=config.chaos,
                         telemetry=telemetry).failure

    for index in range(config.scenarios):
        if out_of_budget():
            report.budget_exhausted = True
            break
        scenario = _scenario_for(config, index)
        schedule = _schedule_for(config, index, scenario)
        with telemetry.span("chaos.scenario", index=index,
                            seed=scenario.seed):
            run = run_chaos(scenario, schedule, config=config.chaos,
                            telemetry=telemetry)
        report.scenarios_run += 1
        report.faults_applied += sum(
            1 for outcome in run.outcomes if outcome.applied)
        report.steps_executed += run.steps_executed
        report.settle_checks += run.settle_checks
        report._merge_convergence(run)
        scenarios_counter.inc()
        if run.failure is None:
            continue
        failures_counter.inc()
        original_trace = len(scenario.trace)
        original_faults = len(schedule.faults)
        if config.shrink and not out_of_budget():
            scenario, schedule, failure, runs = shrink_chaos(
                scenario, schedule, run.failure, runner=runner)
        else:
            failure, runs = run.failure, 0
        report.shrink_runs += runs
        shrink_counter.inc(runs)
        artifact_path: Optional[str] = None
        if config.artifact_dir is not None:
            artifact = ChaosArtifact(
                scenario=scenario, schedule=schedule, kind=failure.kind,
                step=failure.step, detail=failure.detail,
                original_trace_length=original_trace,
                original_fault_count=original_faults)
            artifact_path = artifact.save(config.artifact_dir)
        report.findings.append(ChaosFinding(
            scenario_index=index,
            scenario_seed=scenario.seed,
            schedule_seed=schedule.seed,
            failure=failure,
            shrunk_trace_length=len(scenario.trace),
            shrunk_fault_count=len(schedule.faults),
            original_trace_length=original_trace,
            original_fault_count=original_faults,
            artifact_path=artifact_path))
    report.elapsed_seconds = time.monotonic() - started
    return report
