"""Ablation — composition optimisations on vs off (Section 4.3.1).

Compiles the same IXP with the optimised composition (disjoint stacking,
indexed sequential composition, memoized inbound pipelines) and with the
paper's starting point (full parallel cross product + unindexed
sequential composition). The optimised path must examine far fewer rule
pairs and finish faster; both must produce semantically equal tables
(checked packet-wise in the integration suite).

The naive path is quadratic in participants, so this ablation runs at a
deliberately small scale.
"""

from conftest import publish, publish_json

from repro.experiments.metrics import render_table
from repro.workloads.policies import generate_policies, install_assignments
from repro.workloads.topology import generate_ixp

PARTICIPANTS = 30
PREFIXES = 400


def _compile(optimized: bool):
    ixp = generate_ixp(PARTICIPANTS, PREFIXES, seed=0)
    controller = ixp.build_controller(optimized=optimized)
    install_assignments(controller, generate_policies(ixp, seed=1))
    return controller.start()


def _run():
    return _compile(True), _compile(False)


def test_ablation_composition(benchmark):
    optimized, naive = benchmark.pedantic(_run, rounds=1, iterations=1)
    publish("ablation_compose", render_table(
        ["variant", "rule pairs examined", "compile seconds", "flow rules"],
        [["optimized (Sec 4.3)", optimized.report.stats.rule_pairs_examined,
          f"{optimized.total_seconds:.3f}", optimized.flow_rule_count],
         ["naive cross product", naive.report.stats.rule_pairs_examined,
          f"{naive.total_seconds:.3f}", naive.flow_rule_count]]))
    publish_json("ablation_compose", [
        {"variant": "optimized",
         "rule_pairs_examined": optimized.report.stats.rule_pairs_examined,
         "compile_seconds": optimized.total_seconds,
         "flow_rule_count": optimized.flow_rule_count},
        {"variant": "naive_cross_product",
         "rule_pairs_examined": naive.report.stats.rule_pairs_examined,
         "compile_seconds": naive.total_seconds,
         "flow_rule_count": naive.flow_rule_count},
    ])

    # The optimisations cut composition work by well over an order of
    # magnitude even at this tiny scale.
    assert (naive.report.stats.rule_pairs_examined
            > 10 * optimized.report.stats.rule_pairs_examined)
    assert naive.total_seconds > optimized.total_seconds
