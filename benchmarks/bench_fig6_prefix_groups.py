"""Figure 6 — number of prefix groups vs number of policy prefixes.

Runs the Minimum Disjoint Subsets computation over the announced-prefix
sets of the top-N synthetic participants, for N in {100, 200, 300} and
policy-prefix samples up to 25,000 — the paper's exact experiment. The
expected shape: sub-linear growth in prefixes, ordered by participant
count, with group counts in the hundreds-to-~1,500 range (far below the
prefix count).
"""

from conftest import publish, publish_json

from repro.experiments.harness import run_fig6
from repro.experiments.metrics import render_chart, render_series

PARTICIPANTS = (100, 200, 300)
PREFIX_COUNTS = (5_000, 10_000, 15_000, 20_000, 25_000)


def _run():
    return run_fig6(participant_counts=PARTICIPANTS,
                    prefix_counts=PREFIX_COUNTS, total_prefixes=25_000)


def test_fig6_prefix_groups(benchmark):
    series_list = benchmark.pedantic(_run, rounds=1, iterations=1)
    publish("fig6_prefix_groups",
            render_series(series_list, "prefixes", "prefix groups")
            + "\n\n" + render_chart(series_list, x_label="prefixes",
                                    y_label="prefix groups"))
    publish_json("fig6_prefix_groups", {
        "series": {series.label: [[x, y] for x, y in
                                  zip(series.xs(), series.ys())]
                   for series in series_list},
    })

    by_label = {series.label: series for series in series_list}
    for count in PARTICIPANTS:
        series = by_label[f"{count} participants"]
        xs, ys = series.xs(), series.ys()
        # Monotone growth...
        assert ys == sorted(ys)
        # ...but sub-linear: doubling prefixes far less than doubles groups.
        assert ys[-1] / ys[0] < xs[-1] / xs[0]
        # Groups stay well below the prefix count (the point of grouping).
        assert ys[-1] < xs[-1] / 5
    # More participants -> more groups at every x (the paper's ordering).
    for x_index in range(len(PREFIX_COUNTS)):
        column = [by_label[f"{count} participants"].ys()[x_index]
                  for count in PARTICIPANTS]
        assert column == sorted(column)
