"""Tests for the federated JSON config round trip and config linting."""

import pytest

from repro.config import CONFIG_VERSION, ConfigError
from repro.exceptions import StaticPolicyError
from repro.federation import (
    export_federation_config,
    federation_from_config,
    is_federated_config,
    lint_federated_config,
    load_federation_config,
    save_federation_config,
)
from repro.statics import lint_config

from tests.federation.scenarios import clean_scenario, loop_scenario


def loop_document():
    federation = loop_scenario().build_controller(with_dataplane=False)
    return export_federation_config(federation)


class TestRoundTrip:
    def test_export_import_export_is_stable(self):
        document = loop_document()
        rebuilt = federation_from_config(document, with_dataplane=False)
        rebuilt.start()
        assert export_federation_config(rebuilt) == document

    def test_rebuilt_federation_behaves_identically(self):
        document = export_federation_config(
            clean_scenario().build_controller(with_dataplane=False))
        rebuilt = federation_from_config(document, with_dataplane=False)
        rebuilt.start()
        report = rebuilt.lint_policies()
        assert report.by_check("SDX008") == []
        assert report.by_check("SDX009") == []

    def test_save_load_round_trip(self, tmp_path):
        federation = loop_scenario().build_controller(with_dataplane=False)
        path = tmp_path / "federation.json"
        save_federation_config(federation, path)
        rebuilt = load_federation_config(path, with_dataplane=False)
        rebuilt.start()
        assert export_federation_config(rebuilt) == (
            export_federation_config(federation))

    def test_asymmetric_ports_survive_the_round_trip(self):
        from repro.federation import FederatedController

        federation = FederatedController(with_dataplane=False)
        federation.add_exchange("IXP-A")
        federation.add_exchange("IXP-B")
        federation.add_participant(
            "T", 65001, ports_by_exchange={"IXP-A": 2, "IXP-B": 1})
        document = export_federation_config(federation)
        rebuilt = federation_from_config(document, with_dataplane=False)
        assert len(rebuilt.handle("IXP-A", "T").participant
                   .router.ports) == 2
        assert len(rebuilt.handle("IXP-B", "T").participant
                   .router.ports) == 1


class TestValidation:
    def test_version_mismatch_rejected(self):
        document = loop_document()
        document["version"] = CONFIG_VERSION + 1
        with pytest.raises(ConfigError):
            federation_from_config(document)

    def test_empty_exchange_list_rejected(self):
        document = loop_document()
        document["exchanges"] = []
        with pytest.raises(ConfigError):
            federation_from_config(document)

    def test_bad_policy_direction_rejected(self):
        document = loop_document()
        document["policies"][0]["direction"] = "sideways"
        with pytest.raises(ConfigError):
            federation_from_config(document)

    def test_strict_gate_applies_at_load_time(self):
        document = loop_document()
        with pytest.raises(StaticPolicyError):
            federation_from_config(
                document, statics_mode="strict", with_dataplane=False)

    def test_is_federated_config_dispatch_key(self):
        assert is_federated_config(loop_document())
        assert not is_federated_config({"version": 1, "participants": []})


class TestLinting:
    def test_lint_surfaces_the_loop(self):
        report = lint_federated_config(loop_document())
        findings = report.by_check("SDX008")
        assert findings
        assert report.has_errors

    def test_lint_config_dispatches_on_exchanges_key(self):
        report = lint_config(loop_document())
        assert report.by_check("SDX008")

    def test_rejected_policy_becomes_a_diagnostic(self):
        document = loop_document()
        document["policies"][0]["clause"]["fwd"] = "NoSuchParticipant"
        report = lint_federated_config(document)
        findings = [d for d in report.by_check("SDX006")
                    if "installation" in d.message]
        assert len(findings) == 1
        assert dict(findings[0].data)["exchange"] in ("IXP-A", "IXP-B")
        # The lint completed: the surviving policy half is still analyzed.
        assert "SDX008" in report.checks_run

    def test_clean_config_lints_clean(self):
        document = export_federation_config(
            clean_scenario().build_controller(with_dataplane=False))
        report = lint_federated_config(document)
        assert not report.has_errors
