"""Runtime overload under withdrawal-only floods.

The churn suite's overload satellite: drive the runtime's pressure
handling with :func:`~repro.workloads.churn.generate_withdrawal_flood`
— pure withdrawals never net upward into announcements, so the queue
sees sustained one-directional pressure — and pin the loss accounting
*exactly*. The standing identity is::

    submitted_total == processed + coalesced + dropped

after every settle, and ``dropped`` must equal the
``sdx_runtime_events_dropped_total`` counter to the event, not merely
be positive.
"""

from repro.bgp.asn import AsPath
from repro.net.addresses import IPv4Prefix
from repro.runtime import ManualClock, OverloadPolicy, RuntimeConfig
from repro.verification.runtime import canonical_state
from repro.workloads.churn import generate_withdrawal_flood

from tests.core.scenarios import figure1_controller

#: Prefixes pre-announced by B and C so the flood withdraws real routes.
PREFIXES = [f"23.{index}.0.0/16" for index in range(16)]
SENDERS = ("B", "C")


def seeded_controller():
    """A started Figure-1 controller with the flood prefixes announced."""
    sdx, *_ = figure1_controller()
    announce_flood_prefixes(sdx)
    sdx.start()
    return sdx


def announce_flood_prefixes(sdx):
    """Announce every flood prefix, alternating between B and C."""
    for index, prefix in enumerate(PREFIXES):
        sender = SENDERS[index % len(SENDERS)]
        asn = 65002 if sender == "B" else 65003
        sdx.announce_route(sender, IPv4Prefix(prefix),
                           AsPath([asn, 900 + index]))


def assert_loss_identity(sdx, runtime):
    """The accounting identity, with the counter matched by full name."""
    stats = runtime.stats()
    assert stats["submitted_total"] == (
        stats["processed"] + stats["coalesced"] + stats["dropped"])
    losses = sdx.telemetry.registry.losses()
    dropped_counted = losses.get("sdx_runtime_events_dropped_total", 0)
    assert dropped_counted == stats["dropped"]
    return stats


class TestShedOldestFlood:
    def test_flood_loss_matches_dropped_counter_exactly(self):
        sdx = seeded_controller()
        runtime = sdx.build_runtime(RuntimeConfig(
            max_queue_depth=4, coalesce=False,
            overload_policy=OverloadPolicy.SHED_OLDEST), clock=ManualClock())
        flood = generate_withdrawal_flood(SENDERS, PREFIXES, count=24, seed=5)
        for update in flood:
            runtime.submit_update(update)
        # 24 unique events into a depth-4 queue with no draining: the
        # 20 oldest were shed, one per overflowing submission.
        assert runtime.stats()["dropped"] == 20
        runtime.settle()
        stats = assert_loss_identity(sdx, runtime)
        assert stats["submitted_total"] == 24
        assert stats["processed"] == 4
        assert stats["dropped"] == 20

    def test_identity_holds_under_interleaved_draining(self):
        sdx = seeded_controller()
        runtime = sdx.build_runtime(RuntimeConfig(
            max_queue_depth=8, batch_size=4, coalesce=False,
            overload_policy=OverloadPolicy.SHED_OLDEST), clock=ManualClock())
        flood = generate_withdrawal_flood(SENDERS, PREFIXES, count=60, seed=6)
        for index, update in enumerate(flood):
            runtime.submit_update(update)
            if index % 10 == 9:
                runtime.step()
        runtime.settle()
        stats = assert_loss_identity(sdx, runtime)
        assert stats["submitted_total"] == 60
        assert stats["dropped"] > 0  # the flood outran the drain cadence

    def test_coalescing_flood_drops_nothing(self):
        # Over a hot set of 4 prefixes the flood coalesces per
        # (peer, prefix) key: at most 8 distinct keys never overflow a
        # depth-16 queue, so the whole flood is absorbed loss-free.
        sdx = seeded_controller()
        runtime = sdx.build_runtime(RuntimeConfig(
            max_queue_depth=16,
            overload_policy=OverloadPolicy.SHED_OLDEST), clock=ManualClock())
        flood = generate_withdrawal_flood(
            SENDERS, PREFIXES[:4], count=40, seed=7)
        for update in flood:
            runtime.submit_update(update)
        runtime.settle()
        stats = assert_loss_identity(sdx, runtime)
        assert stats["dropped"] == 0
        assert stats["coalesced"] == 40 - stats["processed"]
        losses = sdx.telemetry.registry.losses()
        assert losses["sdx_runtime_events_dropped_total"] == 0


class TestDegradeFlood:
    def test_flood_degrades_without_loss_and_recovers(self):
        sdx = seeded_controller()
        runtime = sdx.build_runtime(RuntimeConfig(
            max_queue_depth=4, batch_size=4, coalesce=False,
            overload_policy=OverloadPolicy.DEGRADE, degrade_patience=1,
            degrade_high_fraction=0.5, degrade_low_fraction=0.25),
            clock=ManualClock())
        flood = generate_withdrawal_flood(SENDERS, PREFIXES, count=4, seed=8)
        for update in flood:
            runtime.submit_update(update)
        assert runtime.degraded
        assert sdx.policies_suspended
        runtime.settle()
        assert not runtime.degraded
        assert not sdx.policies_suspended
        stats = assert_loss_identity(sdx, runtime)
        # Degrade sheds *policies*, never events.
        assert stats["dropped"] == 0
        assert stats["processed"] == 4

    def test_flood_converges_to_inline_state(self):
        sdx = seeded_controller()
        runtime = sdx.build_runtime(RuntimeConfig(
            max_queue_depth=4, batch_size=4, coalesce=False,
            overload_policy=OverloadPolicy.DEGRADE, degrade_patience=1,
            degrade_high_fraction=0.5, degrade_low_fraction=0.25),
            clock=ManualClock())
        flood = generate_withdrawal_flood(SENDERS, PREFIXES, count=30, seed=9)
        for update in flood:
            runtime.submit_update(update)
        runtime.settle()
        assert_loss_identity(sdx, runtime)

        inline, *_ = figure1_controller()
        announce_flood_prefixes(inline)
        inline.start()
        for update in flood:
            inline.submit_update(update)
        inline.run_background_recompilation()
        assert not canonical_state(inline).diff(canonical_state(sdx))
