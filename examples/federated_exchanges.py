#!/usr/bin/env python3
"""Two federated SDX instances and the loop no single exchange can see.

Section 7 of the paper ("a software defined *internet exchange*", not
"exchanges") leaves open what happens when several SDXes deploy
independently. This example builds that world: two exchanges joined by
two transit networks present at both, then shows the failure mode the
federation subsystem exists to catch — two outbound policies, each
locally valid at its own exchange, that compose into an inter-exchange
forwarding loop.

Three acts, one loop-prone pair:

1. the SDX008 static check flags the loop and names a concrete witness
   packet plus the exact cycle of ``(exchange, participant)`` states;
2. rebuilding the same federation with ``statics_mode="strict"`` rejects
   the second policy at install time, before any fabric compiles it;
3. with statics off, the naive federated reference interpreter actually
   forwards the witness packet in the diagnosed cycle — the diagnostic
   is a real packet-level fact, not a modelling artifact.

Run with::

    python examples/federated_exchanges.py
"""


def build():
    """A clean two-exchange federation for the policy linter.

    One transit AS attends both exchanges and re-announces a content
    prefix at the second, stitching a cross-exchange path: traffic an
    eyeball network steers into the transit at IXP-B re-enters IXP-A
    and is delivered to the content network that originates the prefix.
    This steady state lints clean — the stitched path terminates.
    """
    from repro import fwd, match
    from repro.bgp.asn import AsPath
    from repro.federation import FederatedController
    from repro.net.addresses import IPv4Prefix

    federation = FederatedController(statics_mode="off", with_dataplane=False)
    federation.add_exchange("IXP-A")
    federation.add_exchange("IXP-B")
    federation.add_participant("Transit", 65010, exchanges=("IXP-A", "IXP-B"))
    federation.add_participant("Content", 65020, exchanges=("IXP-A",))
    federation.add_participant("Eyeball", 65030, exchanges=("IXP-B",))

    content_prefix = IPv4Prefix("203.0.113.0/24")
    federation.register_origin(content_prefix, "Content")
    federation.announce_route(
        "IXP-A", "Content", content_prefix, AsPath([65020, 64900]))
    # The transit met the origin at IXP-A and resells the route at IXP-B.
    federation.announce_route(
        "IXP-B", "Transit", content_prefix, AsPath([65010, 65020, 64900]))

    federation.add_outbound(
        "IXP-B", "Eyeball", match(dstport=80) >> fwd("Transit"))
    return federation


def loop_scenario():
    """The canonical loop-prone pair as a replayable federated scenario.

    Two transit networks attend both exchanges, each announcing the same
    external prefix at a *different* exchange (neither originates it).
    Each installs one outbound policy steering port-80 traffic to the
    other — at the exchange where the other is the one with the route.
    Locally both clauses are reasonable; composed, port-80 traffic for
    the prefix orbits ``(IXP-B, WestTransit) -> (IXP-A, EastTransit)``
    forever.
    """
    from repro.federation import (
        FederatedAnnouncement,
        FederatedParticipant,
        FederatedPolicy,
        FederatedScenario,
    )

    return FederatedScenario(
        seed=8,
        exchanges=("IXP-A", "IXP-B"),
        participants=(
            FederatedParticipant(
                name="WestTransit", asn=65001, exchanges=("IXP-A", "IXP-B")),
            FederatedParticipant(
                name="EastTransit", asn=65002, exchanges=("IXP-B", "IXP-A")),
        ),
        prefixes=("198.51.100.0/24",),
        owners=(),
        announcements=(
            FederatedAnnouncement(
                exchange="IXP-A", participant="WestTransit",
                prefix="198.51.100.0/24", as_path=(65001, 64700)),
            FederatedAnnouncement(
                exchange="IXP-B", participant="EastTransit",
                prefix="198.51.100.0/24", as_path=(65002, 64700)),
        ),
        policies=(
            FederatedPolicy(
                exchange="IXP-A", participant="EastTransit", direction="out",
                field="dstport", value=80, target="WestTransit"),
            FederatedPolicy(
                exchange="IXP-B", participant="WestTransit", direction="out",
                field="dstport", value=80, target="EastTransit"),
        ),
        trace=(),
    )


def main() -> None:
    """Run the three-act demonstration and print each verdict."""
    from repro.exceptions import StaticPolicyError
    from repro.federation import FederatedReferenceInterpreter, analyze_federation

    scenario = loop_scenario()

    print("act 1: the SDX008 static check sees across both exchanges")
    federation = scenario.build_controller(
        statics_mode="off", with_dataplane=False)
    report = analyze_federation(federation)
    loops = report.by_check("SDX008")
    assert loops, "SDX008 must flag the loop-prone pair"
    for diagnostic in loops:
        print(f"  {diagnostic.describe()}")
    print()

    print("act 2: statics_mode='strict' rejects the pair at install time")
    try:
        scenario.build_controller(statics_mode="strict", with_dataplane=False)
    except StaticPolicyError as error:
        print(f"  rejected: {error}")
    else:
        raise AssertionError("strict mode must reject the loop-prone pair")
    print()

    print("act 3: with statics off, the witness packet really does orbit")
    reference = FederatedReferenceInterpreter(scenario)
    diagnostic = loops[0]
    payload = dict(diagnostic.data)
    outcome = reference.forward(
        payload["origin_exchange"], payload["origin_participant"],
        diagnostic.witness)
    print(f"  witness {diagnostic.witness!r}")
    print(f"  federated reference: {outcome.describe()}")
    assert outcome.is_loop, "the reference must forward the witness in a cycle"


if __name__ == "__main__":
    main()
