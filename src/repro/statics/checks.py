"""The check catalogue of the static policy verifier.

Each check walks the :class:`StaticsContext` — participants with their
normalised clauses, the route server's RIB state, and any raw (not yet
installed) policy documents — and yields :class:`Diagnostic` findings.
Check IDs are stable API (documented in ``docs/ANALYSIS.md``); new
checks append new IDs rather than renumbering.

Soundness contract: an ``SDX001`` (dead clause) verdict is only emitted
when it is *provable* — exact (negation-free, non-dynamic) regions,
covered per-region by a single earlier exact region. The fuzz harness
(:mod:`repro.verification.statics`) holds the analyzer to that contract
by replaying scenarios through the reference interpreter and asserting
dead clauses never win a forwarding decision.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.bgp.routeserver import RouteServer
from repro.core.participant import RESERVED_FIELDS, Participant, _predicate_fields
from repro.core.vswitch import VirtualTopology
from repro.exceptions import AddressError, FieldError, ParticipantError, ReproError
from repro.net.mac import MacAddress
from repro.net.packet import Packet
from repro.policy.headerspace import HeaderSpace
from repro.policy.policies import Match, Predicate
from repro.statics.diagnostics import (
    Diagnostic,
    RawPolicyDocument,
    Severity,
    SourceLocation,
)
from repro.statics.regions import (
    ClauseRegions,
    clause_regions,
    covering_region,
    effective_regions,
    first_intersection,
    witness_packet,
)


@dataclass
class StaticsContext:
    """Everything one analyzer run looks at, with per-run caches."""

    topology: VirtualTopology
    route_server: RouteServer
    raw_policies: Tuple[RawPolicyDocument, ...] = ()
    _info_cache: Dict[Tuple[str, str], Tuple[ClauseRegions, ...]] = field(
        default_factory=dict, repr=False)
    _effective_cache: Dict[Tuple[str, str], Tuple[Tuple[HeaderSpace, ...], ...]] = (
        field(default_factory=dict, repr=False))
    _dead_cache: Dict[Tuple[str, str], Dict[int, "DeadVerdict"]] = field(
        default_factory=dict, repr=False)

    @classmethod
    def from_controller(cls, controller,
                        raw_policies: Sequence[RawPolicyDocument] = ()
                        ) -> "StaticsContext":
        """Build a context over a controller's topology and RIB state."""
        return cls(topology=controller.topology,
                   route_server=controller.route_server,
                   raw_policies=tuple(raw_policies))

    def participants(self) -> List[Participant]:
        """Every participant, name-sorted."""
        return list(self.topology.participants())

    def clauses(self, participant: Participant, direction: str):
        """The participant's normalised clauses for one direction."""
        if direction == "out":
            return () if participant.is_remote else participant.outbound_clauses()
        if direction == "in":
            return participant.inbound_clauses()
        raise ValueError(f"direction must be 'in' or 'out', got {direction!r}")

    def directions(self, participant: Participant) -> Tuple[str, ...]:
        """The clause directions that exist for a participant."""
        return ("in",) if participant.is_remote else ("out", "in")

    def clause_info(self, participant: Participant,
                    direction: str) -> Tuple[ClauseRegions, ...]:
        """Region summaries of the participant's clauses (cached)."""
        key = (participant.name, direction)
        cached = self._info_cache.get(key)
        if cached is None:
            cached = tuple(
                clause_regions(clause)
                for clause in self.clauses(participant, direction))
            self._info_cache[key] = cached
        return cached

    def effective(self, participant: Participant,
                  direction: str) -> Tuple[Tuple[HeaderSpace, ...], ...]:
        """BGP-refined region sets, one tuple per clause (cached)."""
        key = (participant.name, direction)
        cached = self._effective_cache.get(key)
        if cached is None:
            infos = self.clause_info(participant, direction)
            if direction == "out":
                cached = tuple(
                    effective_regions(info, participant.name, self.route_server)
                    for info in infos)
            else:
                cached = tuple(info.regions for info in infos)
            self._effective_cache[key] = cached
        return cached


@dataclass(frozen=True)
class DeadVerdict:
    """Why one clause can never win: per-region covering clause indices."""

    covered_by: Tuple[int, ...]
    witness_space: HeaderSpace


def dead_clause_map(context: StaticsContext, participant: Participant,
                    direction: str) -> Dict[int, DeadVerdict]:
    """Indices of provably dead clauses, with their covering clauses.

    A clause is dead when every one of its effective regions is covered
    by a single effective region of a single earlier *exact* clause —
    the earlier clause's flow rule then always outranks it. Clauses with
    negation or dynamic predicates are never marked dead (their static
    regions over-approximate), and clauses whose effective region set is
    already empty belong to SDX003, not here.
    """
    key = (participant.name, direction)
    cached = context._dead_cache.get(key)
    if cached is not None:
        return cached
    infos = context.clause_info(participant, direction)
    effective = context.effective(participant, direction)
    verdicts: Dict[int, DeadVerdict] = {}
    for index in range(len(infos)):
        info = infos[index]
        if info.dynamic or not info.exact:
            continue
        regions = effective[index]
        if not regions:
            continue
        coverers: List[Tuple[int, HeaderSpace]] = [
            (earlier, space)
            for earlier in range(index)
            if infos[earlier].exact and not infos[earlier].dynamic
            for space in effective[earlier]
        ]
        covered_by: List[int] = []
        for region in regions:
            cover = covering_region(region, [space for _i, space in coverers])
            if cover is None:
                covered_by = []
                break
            for earlier, space in coverers:
                if space == cover:
                    covered_by.append(earlier)
                    break
        if covered_by:
            verdicts[index] = DeadVerdict(
                covered_by=tuple(sorted(set(covered_by))),
                witness_space=regions[0])
    context._dead_cache[key] = verdicts
    return verdicts


def clause_overlaps(clauses: Sequence,
                    infos: Sequence[ClauseRegions]
                    ) -> List[Tuple[int, int, Packet, bool]]:
    """(winner, loser, witness, exact) clause pairs that can both match.

    The raw (pre-join) regions are compared — an overlap matters even
    for destinations outside today's RIB, because routes change. For
    exact pairs the witness is verified against both predicates; pairs
    involving negation are reported as possible overlaps.
    """
    overlaps: List[Tuple[int, int, Packet, bool]] = []
    for first in range(len(infos)):
        for second in range(first + 1, len(infos)):
            witness_space = first_intersection(
                infos[first].regions, infos[second].regions)
            if witness_space is None:
                continue
            witness = witness_packet(witness_space)
            exact = infos[first].exact and infos[second].exact
            if exact and not (clauses[first].predicate.holds(witness)
                              and clauses[second].predicate.holds(witness)):
                continue
            overlaps.append((first, second, witness, exact))
    return overlaps


class Check:
    """Base class: stable ID, human name, and a ``run`` generator."""

    check_id: str = ""
    name: str = ""
    default_severity: Severity = Severity.WARNING

    def run(self, context: StaticsContext) -> Iterator[Diagnostic]:
        """Yield findings over ``context``."""
        raise NotImplementedError

    def _diagnostic(self, location: SourceLocation, message: str, *,
                    severity: Optional[Severity] = None,
                    witness: Optional[Packet] = None,
                    data: Sequence[Tuple[str, Any]] = ()) -> Diagnostic:
        return Diagnostic(
            check_id=self.check_id, check_name=self.name,
            severity=severity if severity is not None else self.default_severity,
            location=location, message=message, witness=witness,
            data=tuple(data))


class DeadClauseCheck(Check):
    """SDX001: a clause no packet can ever reach (fully shadowed)."""

    check_id = "SDX001"
    name = "dead-clause"
    default_severity = Severity.ERROR

    def run(self, context: StaticsContext) -> Iterator[Diagnostic]:
        for participant in context.participants():
            for direction in context.directions(participant):
                verdicts = dead_clause_map(context, participant, direction)
                clauses = context.clauses(participant, direction)
                for index in sorted(verdicts):
                    verdict = verdicts[index]
                    shadows = ", ".join(f"#{i}" for i in verdict.covered_by)
                    yield self._diagnostic(
                        SourceLocation(participant.name, direction, index),
                        f"clause {clauses[index].describe()} is dead: every "
                        f"packet it could match is taken by earlier clause(s) "
                        f"{shadows}",
                        witness=witness_packet(verdict.witness_space),
                        data=(("covered_by", list(verdict.covered_by)),))


class ShadowOverlapCheck(Check):
    """SDX002: clause pairs that compete for the same packets."""

    check_id = "SDX002"
    name = "shadowed-overlap"
    default_severity = Severity.WARNING

    def run(self, context: StaticsContext) -> Iterator[Diagnostic]:
        for participant in context.participants():
            for direction in context.directions(participant):
                dead = dead_clause_map(context, participant, direction)
                for winner, loser, witness, exact in clause_overlaps(
                        context.clauses(participant, direction),
                        context.clause_info(participant, direction)):
                    if loser in dead:
                        continue  # fully dead: SDX001 already reports it
                    certainty = "overlaps" if exact else "possibly overlaps"
                    yield self._diagnostic(
                        SourceLocation(participant.name, direction, loser),
                        f"clause #{winner} {certainty} this clause and wins "
                        f"by priority",
                        witness=witness,
                        data=(("winner", winner), ("exact", exact)))


class RoutelessForwardCheck(Check):
    """SDX003: fwd(peer) clauses the BGP join erases entirely."""

    check_id = "SDX003"
    name = "routeless-forward"
    default_severity = Severity.ERROR

    def run(self, context: StaticsContext) -> Iterator[Diagnostic]:
        for participant in context.participants():
            if participant.is_remote:
                continue
            infos = context.clause_info(participant, "out")
            effective = context.effective(participant, "out")
            for index, info in enumerate(infos):
                clause = info.clause
                if info.dynamic or clause.drops:
                    continue
                if not isinstance(clause.target, str):
                    continue
                try:
                    eligible = context.route_server.reachable_prefixes(
                        participant.name, via=clause.target)
                except ParticipantError:
                    yield self._diagnostic(
                        SourceLocation(participant.name, "out", index),
                        f"forwards to {clause.target!r}, which is not a "
                        f"route-server peer",
                        data=(("target", clause.target),))
                    continue
                if not info.regions:
                    continue  # vacuous predicate; nothing to erase
                if effective[index]:
                    continue
                witness = witness_packet(info.regions[0])
                yield self._diagnostic(
                    SourceLocation(participant.name, "out", index),
                    f"fwd({clause.target!r}) matches no prefix "
                    f"{clause.target!r} exported to {participant.name!r} "
                    f"({len(eligible)} eligible prefix(es)); the BGP join "
                    f"erases this clause and traffic falls to the default "
                    f"route",
                    witness=witness,
                    data=(("target", clause.target),
                          ("eligible_prefixes", [str(p) for p in eligible])))


def _vmac_constraints(predicate: Predicate) -> List[Tuple[str, MacAddress]]:
    """(field, value) pairs in the predicate that sit in the VMAC range."""
    found: List[Tuple[str, MacAddress]] = []
    stack = [predicate]
    while stack:
        node = stack.pop()
        if isinstance(node, Match):
            for name, value in node.space.items_sorted():
                if isinstance(value, MacAddress) and value.is_virtual:
                    found.append((name, value))
        stack.extend(node.children())
    return found


class IsolationCheck(Check):
    """SDX004: matches/actions on fields a participant may not control."""

    check_id = "SDX004"
    name = "isolation-violation"
    default_severity = Severity.ERROR

    def run(self, context: StaticsContext) -> Iterator[Diagnostic]:
        # Raw documents: the main surface — install-time validation has
        # not seen these yet.
        for document in context.raw_policies:
            yield from self._check_raw(document)
        # Installed clauses: defense in depth. Install-time validation
        # should have rejected these, so any finding here means a code
        # path bypassed the participant API.
        for participant in context.participants():
            for direction in context.directions(participant):
                for index, clause in enumerate(
                        context.clauses(participant, direction)):
                    fields = (_predicate_fields(clause.predicate)
                              | {name for name, _v in clause.modifications})
                    reserved = sorted(fields & RESERVED_FIELDS)
                    if reserved:
                        yield self._diagnostic(
                            SourceLocation(participant.name, direction, index),
                            f"installed clause touches reserved field(s) "
                            f"{reserved}; install-time validation was "
                            f"bypassed",
                            data=(("fields", reserved),))

    def _check_raw(self, document: RawPolicyDocument) -> Iterator[Diagnostic]:
        from repro.config import clause_to_policy
        from repro.core.clauses import normalize_policy

        try:
            clauses = normalize_policy(clause_to_policy(dict(document.clause)))
        except ReproError:
            return  # unparseable: SDX006's territory
        for clause in clauses:
            fields = (_predicate_fields(clause.predicate)
                      | {name for name, _v in clause.modifications})
            reserved = sorted(fields & RESERVED_FIELDS)
            if reserved:
                yield self._diagnostic(
                    document.location,
                    f"policy document touches reserved field(s) {reserved}; "
                    f"the SDX manages ports and MAC tags itself",
                    data=(("fields", reserved),))
            for name, value in _vmac_constraints(clause.predicate):
                yield self._diagnostic(
                    document.location,
                    f"match on {name}={value!s} targets the SDX virtual-MAC "
                    f"range (OUI a2:00:00); participants cannot address VMAC "
                    f"tags directly",
                    data=(("field", name), ("value", str(value))))
            if document.direction == "out":
                if isinstance(clause.target, int):
                    yield self._diagnostic(
                        document.location,
                        f"outbound forward to raw switch port "
                        f"{clause.target}; outbound policies must name a "
                        f"participant",
                        data=(("target", clause.target),))
                elif clause.target == document.participant:
                    yield self._diagnostic(
                        document.location,
                        "outbound policy forwards to its own participant",
                        data=(("target", clause.target),))


class BlackholeCheck(Check):
    """SDX005: A steers traffic into B, whose inbound policy drops it."""

    check_id = "SDX005"
    name = "inter-participant-blackhole"
    default_severity = Severity.WARNING

    def run(self, context: StaticsContext) -> Iterator[Diagnostic]:
        participants = {p.name: p for p in context.participants()}
        for sender in context.participants():
            if sender.is_remote:
                continue
            infos = context.clause_info(sender, "out")
            effective = context.effective(sender, "out")
            for index, info in enumerate(infos):
                clause = info.clause
                if info.dynamic or clause.drops:
                    continue
                target = clause.target
                if not isinstance(target, str) or target not in participants:
                    continue
                egress = participants[target]
                finding = self._blackhole_witness(
                    context, sender, index, effective[index], egress)
                if finding is None:
                    continue
                drop_index, witness = finding
                yield self._diagnostic(
                    SourceLocation(sender.name, "out", index),
                    f"steers traffic into {target!r}, whose inbound clause "
                    f"#{drop_index} drops it",
                    witness=witness,
                    data=(("target", target), ("drop_clause", drop_index)))

    def _blackhole_witness(self, context: StaticsContext, sender: Participant,
                           index: int, regions: Sequence[HeaderSpace],
                           egress: Participant
                           ) -> Optional[Tuple[int, Packet]]:
        inbound = context.clause_info(egress, "in")
        if not any(info.clause.drops for info in inbound):
            return None
        for drop_index, drop_info in enumerate(inbound):
            if not drop_info.clause.drops or drop_info.dynamic:
                continue
            for region in regions:
                witness_space = first_intersection([region], drop_info.regions)
                if witness_space is None:
                    continue
                witness = witness_packet(witness_space)
                if not self._clause_wins(context, sender, index, witness):
                    continue
                verdict = self._inbound_disposition(context, egress, witness)
                if verdict == drop_index:
                    return drop_index, witness
        return None

    def _clause_wins(self, context: StaticsContext, sender: Participant,
                     index: int, packet: Packet) -> bool:
        """True if outbound clause ``index`` captures ``packet`` — no
        earlier clause of the sender takes it first (point-wise exact)."""
        clauses = context.clauses(sender, "out")
        infos = context.clause_info(sender, "out")
        if not clauses[index].predicate.holds(packet):
            return False
        dstip = packet.get("dstip")
        for earlier in range(index):
            info = infos[earlier]
            if info.dynamic:
                return False  # cannot reason point-wise past dynamic state
            clause = info.clause
            if not clause.predicate.holds(packet):
                continue
            if clause.drops:
                return False
            if isinstance(clause.target, str):
                eligible = context.route_server.reachable_prefixes(
                    sender.name, via=clause.target)
                if any(prefix.contains_address(dstip) for prefix in eligible):
                    return False
            else:
                return False
        return True

    def _inbound_disposition(self, context: StaticsContext,
                             egress: Participant,
                             packet: Packet) -> Optional[int]:
        """The inbound clause index that takes ``packet`` at the egress
        (``None``: default delivery, or undecidable past dynamic state)."""
        for index, info in enumerate(context.clause_info(egress, "in")):
            if info.dynamic:
                return None
            if info.clause.predicate.holds(packet):
                return index
        return None


class FieldSanityCheck(Check):
    """SDX006: raw policy documents that fail type/field validation."""

    check_id = "SDX006"
    name = "field-sanity"
    default_severity = Severity.ERROR

    def run(self, context: StaticsContext) -> Iterator[Diagnostic]:
        for document in context.raw_policies:
            yield from self._check_document(document)

    def _check_document(self, document: RawPolicyDocument
                        ) -> Iterator[Diagnostic]:
        from repro.config import ConfigError, clause_to_policy

        clause = document.clause
        if document.direction not in ("in", "out"):
            yield self._diagnostic(
                document.location,
                f"policy direction must be 'in' or 'out', got "
                f"{document.direction!r}")
            return
        if not isinstance(clause, dict) or "match" not in clause:
            yield self._diagnostic(
                document.location,
                "clause document must be an object with a 'match' predicate")
            return
        if clause.get("drop") and "fwd" in clause:
            yield self._diagnostic(
                document.location,
                "clause both drops and forwards; pick one disposition")
            return
        try:
            clause_to_policy(dict(clause))
        except FieldError as error:
            yield self._diagnostic(
                document.location,
                f"field/type error before coerce_constraint: "
                f"{_strip_quotes(error)}")
        except AddressError as error:
            yield self._diagnostic(
                document.location, f"bad address or prefix: {error}")
        except (ConfigError, KeyError, TypeError, ValueError) as error:
            yield self._diagnostic(
                document.location, f"malformed clause document: {error!r}")


def _strip_quotes(error: BaseException) -> str:
    # KeyError-derived exceptions repr their message; unwrap one level.
    if error.args and isinstance(error.args[0], str):
        return error.args[0]
    return str(error)


class UnreachableDefaultCheck(Check):
    """SDX007: destinations with no default fabric rule for a sender."""

    check_id = "SDX007"
    name = "unreachable-default"
    default_severity = Severity.INFO

    #: Prefixes named explicitly in one message; the rest are counted.
    _MESSAGE_LIMIT = 6

    def run(self, context: StaticsContext) -> Iterator[Diagnostic]:
        server = context.route_server
        all_prefixes = server.all_prefixes()
        for participant in context.participants():
            if participant.is_remote:
                continue
            own = set(server.announced_by(participant.name)) | set(
                participant.local_prefixes)
            unrouted = [
                prefix for prefix in all_prefixes
                if prefix not in own
                and server.best_route_for(participant.name, prefix) is None
            ]
            if not unrouted:
                continue
            policy_hit = self._policy_intersects(context, participant, unrouted)
            shown = ", ".join(str(p) for p in unrouted[:self._MESSAGE_LIMIT])
            if len(unrouted) > self._MESSAGE_LIMIT:
                shown += f" and {len(unrouted) - self._MESSAGE_LIMIT} more"
            if policy_hit is not None:
                prefix, index = policy_hit
                yield self._diagnostic(
                    SourceLocation(participant.name, "out", index),
                    f"outbound clause #{index} matches destinations in "
                    f"{prefix} but no route covers them — neither policy "
                    f"nor default tagging installs a fabric rule (no "
                    f"default route for: {shown})",
                    severity=Severity.WARNING,
                    witness=HeaderSpace(dstip=prefix).concretise(port=0),
                    data=(("prefixes", [str(p) for p in unrouted]),
                          ("clause_index", index)))
            else:
                yield self._diagnostic(
                    SourceLocation(participant.name),
                    f"no best route (and so no default fabric rule) toward: "
                    f"{shown}",
                    data=(("prefixes", [str(p) for p in unrouted]),))

    def _policy_intersects(self, context: StaticsContext,
                           participant: Participant, prefixes):
        """(prefix, clause index) of the first outbound clause whose raw
        region reaches an unrouted prefix, or ``None``."""
        infos = context.clause_info(participant, "out")
        for prefix in prefixes:
            space = HeaderSpace(dstip=prefix)
            for index, info in enumerate(infos):
                if info.dynamic or info.clause.drops:
                    continue  # an intersecting drop is intentional
                if first_intersection([space], info.regions) is not None:
                    return prefix, index
        return None
