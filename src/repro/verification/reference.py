"""An independent packet-level reference interpreter.

Re-states what the SDX *should* do, from the paper's prose, without
touching the compiler, the incremental engine, or the southbound path:

1. the sender's outbound clauses apply in installation order; the first
   clause whose predicate matches **and** whose target has announced (and
   exports to the sender) a route covering the destination wins. A
   matching drop clause drops unconditionally;
2. otherwise the packet follows the sender's best BGP route;
3. at the egress, the first matching inbound clause picks the delivery
   interface; otherwise the participant's main interface. A sender with
   no route at all toward the destination never reaches the fabric (its
   border router's FIB misses).

The interpreter compiles this *naively* — one flow rule per (clause,
eligible prefix) and one default rule per (sender, routed prefix) —
into real :class:`~repro.dataplane.flowtable.FlowTable`-backed
:class:`~repro.dataplane.switch.SoftwareSwitch` instances, so forwarding
is evaluated by the same table machinery the production data plane uses
while sharing none of the compilation pipeline under test. Routing state
lives in the interpreter's own plain
:class:`~repro.bgp.routeserver.RouteServer`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.bgp.messages import Update
from repro.bgp.routeserver import RouteServer
from repro.core.controller import SdxController
from repro.dataplane.switch import SoftwareSwitch
from repro.net.addresses import IPv4Prefix
from repro.net.packet import Packet
from repro.policy.classifier import Action
from repro.policy.flowrules import FlowRule
from repro.policy.headerspace import WILDCARD, HeaderSpace
from repro.verification.scenario import Scenario

#: Priority band of the highest outbound/inbound clause; clause ``i``
#: installs at ``CLAUSE_BASE - i`` so earlier clauses win ties.
CLAUSE_BASE = 10_000

#: Priority of per-prefix best-route default rules.
DEFAULT_PRIORITY = 1

#: First pseudo switch-port number encoding "egress at participant i".
EGRESS_PORT_BASE = 100_000


class ReferenceInterpreter:
    """Forwarding oracle for one scenario, independent of the compiler."""

    def __init__(self, scenario: Scenario):
        self.scenario = scenario
        self._server = RouteServer()
        for spec in scenario.participants:
            self._server.add_peer(spec.name, spec.asn)
        self._switch_ports = scenario.switch_ports()
        self._names = scenario.participant_names()
        self._pseudo_of = {
            name: EGRESS_PORT_BASE + index
            for index, name in enumerate(self._names)}
        self._name_of_pseudo = {
            port: name for name, port in self._pseudo_of.items()}
        self._prefixes = [IPv4Prefix(text) for text in scenario.prefixes]
        self._out_switches: Dict[str, SoftwareSwitch] = {}
        self._in_switches: Dict[str, SoftwareSwitch] = {}
        self._dirty = True
        for update in scenario.base_updates():
            self.apply(update)

    # ------------------------------------------------------------------
    # Control plane
    # ------------------------------------------------------------------

    @property
    def route_server(self) -> RouteServer:
        """The interpreter's independent BGP view (read-only access for
        the federated walk's re-entry decisions)."""
        return self._server

    def apply(self, update: Update) -> None:
        """Consume one BGP update (the same object the executions get)."""
        self._server.submit(update)
        self._dirty = True

    def verify_alignment(self, controller: SdxController) -> Optional[str]:
        """Check the independently derived topology facts against a real
        controller; returns a description of the first mismatch, if any.

        The interpreter computes switch ports and peering-LAN addresses
        from the scenario alone. A divergence here is a harness bug, not
        a finding — the oracle checks it once per run.
        """
        ips = self.scenario.port_ips()
        for name in self._names:
            participant = controller.topology.participant(name)
            if tuple(participant.switch_ports) != self._switch_ports[name]:
                return (f"{name}: switch ports {participant.switch_ports} "
                        f"!= derived {self._switch_ports[name]}")
            if participant.ports and participant.ports[0].ip != ips[name]:
                return (f"{name}: port ip {participant.ports[0].ip} "
                        f"!= derived {ips[name]}")
        return None

    # ------------------------------------------------------------------
    # Naive table construction
    # ------------------------------------------------------------------

    def _outbound_rules(self, sender: str) -> List[FlowRule]:
        rules: List[FlowRule] = []
        clauses = [policy for policy in self.scenario.policies
                   if policy.participant == sender
                   and policy.direction == "out"]
        for index, clause in enumerate(clauses):
            band = CLAUSE_BASE - index
            space = clause.predicate_space()
            if clause.target is None:
                rules.append(FlowRule(band, space, ()))
                continue
            for prefix in self._server.announced_by(clause.target):
                if not self._server.is_reachable(
                        sender, prefix, via=clause.target):
                    continue
                refined = space.intersect(HeaderSpace(dstip=prefix))
                if refined is None:
                    continue
                rules.append(FlowRule(
                    band, refined,
                    (Action(port=self._pseudo_of[clause.target]),)))
        for prefix in self._server.all_prefixes():
            best = self._server.best_route_for(sender, prefix)
            if best is None:
                continue
            rules.append(FlowRule(
                DEFAULT_PRIORITY, HeaderSpace(dstip=prefix),
                (Action(port=self._pseudo_of[best.learned_from]),)))
        return rules

    def _inbound_rules(self, name: str) -> List[FlowRule]:
        rules: List[FlowRule] = []
        clauses = [policy for policy in self.scenario.policies
                   if policy.participant == name
                   and policy.direction == "in"]
        ports = self._switch_ports[name]
        for index, clause in enumerate(clauses):
            delivery = ports[min(clause.port_index, len(ports) - 1)]
            rules.append(FlowRule(
                CLAUSE_BASE - index, clause.predicate_space(),
                (Action(port=delivery),)))
        rules.append(FlowRule(0, WILDCARD, (Action(port=ports[0]),)))
        return rules

    def _rebuild(self) -> None:
        self._out_switches = {}
        self._in_switches = {}
        for name in self._names:
            out = SoftwareSwitch(f"ref-out-{name}")
            for port in self._switch_ports[name]:
                out.add_port(port)
            for pseudo in self._pseudo_of.values():
                out.add_port(pseudo)
            out.table.install_many(self._outbound_rules(name))
            self._out_switches[name] = out

            inbound = SoftwareSwitch(f"ref-in-{name}")
            inbound.add_port(self._pseudo_of[name])
            for port in self._switch_ports[name]:
                inbound.add_port(port)
            inbound.table.install_many(self._inbound_rules(name))
            self._in_switches[name] = inbound
        self._dirty = False

    # ------------------------------------------------------------------
    # Data plane
    # ------------------------------------------------------------------

    def forward(self, sender: str,
                packet: Packet) -> Optional[Tuple[str, int]]:
        """(egress participant, delivery switch port), or ``None`` if the
        packet is dropped anywhere along the reference path."""
        if self._dirty:
            self._rebuild()
        dstip = packet.get("dstip")
        covering = [prefix for prefix in self._prefixes
                    if prefix.contains_address(dstip)]
        if not covering:
            return None
        # The sender's border router only has a FIB entry when the route
        # server advertises it a best route; otherwise the packet never
        # reaches the fabric.
        if self._server.best_route_for(sender, covering[0]) is None:
            return None
        stamped = packet.modify(port=self._switch_ports[sender][0])
        outs = self._out_switches[sender].process(stamped)
        if not outs:
            return None
        pseudo, forwarded = outs[0]
        egress = self._name_of_pseudo[pseudo]
        arrived = forwarded.modify(port=self._pseudo_of[egress])
        results = self._in_switches[egress].process(arrived)
        if not results:
            return None
        return egress, results[0][0]

    def winning_outbound_clause(self, sender: str,
                                packet: Packet) -> Optional[int]:
        """The outbound clause index that takes ``packet``, or ``None``.

        ``None`` means the packet never exercises a policy clause: it is
        dropped before the fabric (no covering prefix, or no best route
        for the sender) or it follows a best-route default rule. Clause
        indices count the sender's outbound clauses in installation
        order, exactly as :meth:`_outbound_rules` banded them
        (``CLAUSE_BASE - index``) — which is also the order
        :meth:`Scenario.build_controller` installs them, so the index
        aligns with the static analyzer's clause numbering.
        """
        if self._dirty:
            self._rebuild()
        dstip = packet.get("dstip")
        if dstip is None:
            return None
        covering = [prefix for prefix in self._prefixes
                    if prefix.contains_address(dstip)]
        if not covering:
            return None
        if self._server.best_route_for(sender, covering[0]) is None:
            return None
        stamped = packet.modify(port=self._switch_ports[sender][0])
        rule = self._out_switches[sender].table.lookup(stamped)
        if rule is None or rule.priority <= DEFAULT_PRIORITY:
            return None
        return CLAUSE_BASE - rule.priority

    def outcomes(self, corpus) -> Dict[Tuple[str, int], Optional[Tuple[str, int]]]:
        """Forwarding outcome of every (sender, corpus index) pair."""
        return {
            (sender, index): self.forward(sender, packet)
            for sender in self._names
            for index, packet in enumerate(corpus)
        }

    def __repr__(self) -> str:
        return (f"ReferenceInterpreter({len(self._names)} participants, "
                f"{len(self._prefixes)} prefixes)")
