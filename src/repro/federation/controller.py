"""The federation coordinator: one SdxController per exchange, one surface.

:class:`FederatedController` owns a :class:`~repro.core.controller.\
SdxController` per exchange and funnels every configuration change —
participant registration, route announcements, policy installs — through
one API, so a single ``statics_mode`` gate can reason about the *whole*
federation (including the cross-exchange SDX008/SDX009 checks) before
any exchange compiles the change into its fabric.

Per-exchange controllers always run with their own statics gate off: a
single exchange cannot see an inter-exchange loop, and double-gating
would re-report every single-exchange finding. The federated gate runs
:func:`repro.federation.checks.analyze_federation`, which includes the
full single-exchange check battery per member exchange.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from repro.bgp.messages import Update
from repro.core.controller import SdxController
from repro.core.sdxpolicy import ParticipantHandle
from repro.exceptions import ParticipantError, StaticPolicyError
from repro.federation.dataplane import FederatedDataPlane, FederatedOutcome
from repro.federation.topology import (
    ExchangePresence,
    FederatedParticipantSpec,
    FederationTopology,
)
from repro.net.addresses import IPv4Address, IPv4Prefix
from repro.net.packet import Packet
from repro.policy.policies import Policy

#: Valid federated statics gate modes (same surface as SdxController).
STATICS_MODES = ("off", "warn", "strict")


class FederatedController:
    """Several SDX instances behind a single policy-change/settle surface."""

    def __init__(self, *, statics_mode: str = "off", telemetry=None,
                 with_dataplane: bool = True, **controller_kwargs) -> None:
        if statics_mode not in STATICS_MODES:
            raise ValueError(
                f"statics_mode must be one of {STATICS_MODES}, "
                f"got {statics_mode!r}")
        self.statics_mode = statics_mode
        self.telemetry = telemetry
        self.with_dataplane = with_dataplane
        self.topology = FederationTopology()
        self.started = False
        self.last_statics_report = None
        self._controllers: Dict[str, SdxController] = {}
        self._controller_kwargs = dict(controller_kwargs)
        self._dataplane: Optional[FederatedDataPlane] = None

    # ------------------------------------------------------------------
    # Exchanges and participants
    # ------------------------------------------------------------------

    def add_exchange(self, name: str, **overrides) -> SdxController:
        """Register exchange ``name`` and build its member controller.

        Keyword overrides pass through to that exchange's
        :class:`~repro.core.controller.SdxController`.
        """
        self.topology.add_exchange(name)
        kwargs = dict(self._controller_kwargs)
        kwargs.update(overrides)
        kwargs.setdefault("with_dataplane", self.with_dataplane)
        kwargs.setdefault("telemetry", self.telemetry)
        kwargs["statics_mode"] = "off"
        controller = SdxController(**kwargs)
        self._controllers[name] = controller
        return controller

    def exchange(self, name: str) -> SdxController:
        """The member controller of exchange ``name``."""
        try:
            return self._controllers[name]
        except KeyError:
            raise ParticipantError(f"unknown exchange {name!r}") from None

    def exchanges(self) -> Tuple[str, ...]:
        """Member exchange names, in registration order."""
        return self.topology.exchanges()

    def add_participant(self, name: str, asn: int, *,
                        exchanges: Optional[Sequence[str]] = None,
                        ports: int = 1,
                        ports_by_exchange: Optional[Dict[str, int]] = None
                        ) -> FederatedParticipantSpec:
        """Register a participant at one or more exchanges.

        ``exchanges`` defaults to every registered exchange; the listed
        order is the participant's re-entry preference order.
        ``ports_by_exchange`` overrides the uniform ``ports`` count per
        exchange.
        """
        attended = tuple(exchanges) if exchanges is not None else self.exchanges()
        if not attended:
            raise ParticipantError(
                f"participant {name!r} must attend at least one exchange")
        overrides = ports_by_exchange or {}
        presence = tuple(
            ExchangePresence(exchange, overrides.get(exchange, ports))
            for exchange in attended)
        spec = FederatedParticipantSpec(name=name, asn=asn, presence=presence)
        self.topology.add_participant(spec)
        for entry in spec.presence:
            self.exchange(entry.exchange).add_participant(
                name, asn, ports=entry.ports)
        return spec

    def handle(self, exchange: str, name: str) -> ParticipantHandle:
        """The per-exchange programming handle of one participant."""
        return self.exchange(exchange).participant(name)

    def presence(self, name: str) -> Tuple[str, ...]:
        """The exchanges ``name`` attends, in preference order."""
        return self.topology.presence(name)

    def shared_participants(self) -> Tuple[str, ...]:
        """Participants present at more than one exchange."""
        return self.topology.shared_participants()

    # ------------------------------------------------------------------
    # Prefix origins
    # ------------------------------------------------------------------

    def register_origin(self, prefix: IPv4Prefix, participant: str) -> None:
        """Record which participant's network owns ``prefix``."""
        self.topology.register_origin(prefix, participant)

    def origin_of(self, address: IPv4Address) -> Optional[str]:
        """The origin participant of ``address``, if registered."""
        return self.topology.origin_of(address)

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------

    def announce_route(self, exchange: str, name: str, prefix: IPv4Prefix,
                       as_path, *, med: int = 0, local_pref: int = 100,
                       communities: Tuple = ()) -> None:
        """Announce ``prefix`` from ``name`` at one exchange."""
        self.exchange(exchange).announce_route(
            name, prefix, as_path, med=med, local_pref=local_pref,
            communities=communities)

    def withdraw_route(self, exchange: str, name: str,
                       prefix: IPv4Prefix) -> None:
        """Withdraw ``prefix`` from ``name`` at one exchange."""
        self.exchange(exchange).withdraw_route(name, prefix)

    def submit_update(self, exchange: str, update: Update) -> None:
        """Feed one raw BGP update into one exchange's route server."""
        self.exchange(exchange).submit_update(update)

    # ------------------------------------------------------------------
    # Policies (the single change surface)
    # ------------------------------------------------------------------

    def add_outbound(self, exchange: str, name: str, policy: Policy) -> None:
        """Install an outbound policy at one exchange, gated federation-wide.

        In strict mode a gate failure rolls the policy back out before
        re-raising, so a rejected change never reaches any fabric.
        """
        self._install(exchange, name, policy, direction="out")

    def add_inbound(self, exchange: str, name: str, policy: Policy) -> None:
        """Install an inbound policy at one exchange, gated federation-wide."""
        self._install(exchange, name, policy, direction="in")

    def _install(self, exchange: str, name: str, policy: Policy,
                 *, direction: str) -> None:
        handle = self.handle(exchange, name)
        if direction == "out":
            handle.add_outbound(policy)
        else:
            handle.add_inbound(policy)
        try:
            self._statics_gate()
        except StaticPolicyError:
            participant = handle.participant
            if direction == "out":
                participant.remove_outbound(policy)
            else:
                participant.remove_inbound(policy)
            self.exchange(exchange).notify_policy_change(name)
            raise

    def notify_policy_change(self, exchange: str, name: str) -> None:
        """Re-gate and recompile after an out-of-band policy edit."""
        self._statics_gate()
        self.exchange(exchange).notify_policy_change(name)

    # ------------------------------------------------------------------
    # Statics gating
    # ------------------------------------------------------------------

    def lint_policies(self, *, enforce: bool = False):
        """Run the full federation analysis (per-exchange + SDX008/SDX009).

        Stores and returns the :class:`~repro.statics.diagnostics.\
StaticsReport`; with ``enforce`` raises
        :class:`~repro.exceptions.StaticPolicyError` on any
        error-severity finding.
        """
        from repro.federation.checks import analyze_federation

        report = analyze_federation(self, telemetry=self.telemetry)
        self.last_statics_report = report
        if enforce and report.has_errors:
            heads = "; ".join(
                diagnostic.describe() for diagnostic in report.sorted()[:3])
            raise StaticPolicyError(
                f"federated static policy verification failed with "
                f"{len(report.errors)} error(s): {heads}", report=report)
        return report

    def _statics_gate(self) -> None:
        """Apply ``statics_mode`` to the current federation state."""
        if self.statics_mode == "off":
            return
        if self.statics_mode == "strict":
            self.lint_policies(enforce=True)
            return
        report = self.lint_policies(enforce=False)
        if report.diagnostics:  # pragma: no branch - trivial guard
            for diagnostic in report.sorted():
                print(f"statics: {diagnostic.describe()}")

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> Dict[str, object]:
        """Gate, then compile and start every member exchange.

        Returns the per-exchange
        :class:`~repro.core.compile_pipeline.CompilationResult` map.
        """
        self._statics_gate()
        results = {
            name: self._controllers[name].start()
            for name in self.exchanges()
        }
        self.started = True
        return results

    def settle(self) -> None:
        """Run background recompilation on every member exchange."""
        for name in self.exchanges():
            self._controllers[name].run_background_recompilation()

    # ------------------------------------------------------------------
    # Traffic
    # ------------------------------------------------------------------

    @property
    def dataplane(self) -> FederatedDataPlane:
        """The lazily-built cross-fabric driver for this federation."""
        if self._dataplane is None:
            self._dataplane = FederatedDataPlane(self)
        return self._dataplane

    def forward(self, exchange: str, sender: str,
                packet: Packet) -> FederatedOutcome:
        """Walk a packet across the federation through the real fabrics."""
        return self.dataplane.forward(exchange, sender, packet)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def summary(self) -> Dict[str, object]:
        """A status snapshot across all member exchanges."""
        per_exchange = {
            name: self._controllers[name].summary()
            for name in self.exchanges()
        }
        totals: Dict[str, int] = {}
        for snapshot in per_exchange.values():
            for key, value in snapshot.items():
                totals[key] = totals.get(key, 0) + int(value)
        return {
            "exchanges": len(self._controllers),
            "shared_participants": len(self.shared_participants()),
            "transit_links": len(self.topology.transit_links()),
            "origins": len(self.topology.origins()),
            "totals": totals,
            "per_exchange": per_exchange,
        }

    def __repr__(self) -> str:
        state = "started" if self.started else "configured"
        names = ", ".join(self.exchanges())
        return (f"FederatedController([{names}], {state}, "
                f"{len(self.topology.names())} participants)")
