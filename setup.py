"""Legacy setuptools entry point.

Kept alongside ``pyproject.toml`` so ``pip install -e .`` works on
environments without the ``wheel`` package (pip then falls back to the
``setup.py develop`` editable path). All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
