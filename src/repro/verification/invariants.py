"""Standing invariants checked after every fuzzed trace step.

Each checker returns a list of :class:`Violation` records (empty =
invariant holds), so the oracle can fold them into its failure report
and the migrated integration tests can assert on them directly:

- :func:`check_single_delivery` — totality/no-loops: every probe yields
  at most one delivery, at a physical port, accepted by the router;
- :func:`check_bgp_consistency` — delivered traffic always has an
  announced-and-exported route at the egress participant (Section 4.1);
- :func:`check_default_conformance` — border-router FIBs agree with the
  route server, and emitted packets carry the VNH's virtual MAC tag
  (the Section 4.2 encoding the whole data plane keys on);
- :class:`SwapMonitor` — the southbound two-phase swap never drops a
  probe mid-swap that is deliverable both before and after, and every
  intermediate observation equals the old or the new outcome.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.controller import SdxController
from repro.net.packet import Packet

#: A forwarding outcome: (egress participant, delivery port) or dropped.
Outcome = Optional[Tuple[str, int]]


@dataclass(frozen=True)
class Violation:
    """One invariant breach: which invariant, and what happened."""

    invariant: str
    detail: str

    def __str__(self) -> str:
        return f"[{self.invariant}] {self.detail}"


def _physical_senders(controller: SdxController) -> List[str]:
    return [participant.name
            for participant in controller.topology.participants()
            if not participant.is_remote]


def outcome_of(controller: SdxController, sender: str,
               packet: Packet) -> Outcome:
    """One probe's (egress, delivery port), or ``None`` when dropped."""
    accepted = [delivery for delivery in controller.send(sender, packet)
                if delivery.accepted]
    if not accepted:
        return None
    return accepted[0].participant, accepted[0].switch_port


def check_single_delivery(controller: SdxController,
                          probes: Sequence[Packet]) -> List[Violation]:
    """Every probe: at most one delivery, physical port, accepted."""
    violations: List[Violation] = []
    physical = set(controller.topology.physical_ports())
    for sender in _physical_senders(controller):
        for index, probe in enumerate(probes):
            deliveries = controller.send(sender, probe)
            if len(deliveries) > 1:
                violations.append(Violation(
                    "single-delivery",
                    f"{sender} probe#{index} delivered {len(deliveries)} "
                    f"times"))
            for delivery in deliveries:
                if delivery.switch_port not in physical:
                    violations.append(Violation(
                        "single-delivery",
                        f"{sender} probe#{index} exited virtual port "
                        f"{delivery.switch_port}"))
                if not delivery.accepted:
                    violations.append(Violation(
                        "single-delivery",
                        f"{sender} probe#{index} refused by "
                        f"{delivery.participant} (MAC mismatch)"))
    return violations


def check_bgp_consistency(controller: SdxController,
                          probes: Sequence[Packet]) -> List[Violation]:
    """Delivered traffic has an announced+exported covering route."""
    violations: List[Violation] = []
    server = controller.route_server
    for sender in _physical_senders(controller):
        for index, probe in enumerate(probes):
            egress = controller.egress_of(sender, probe)
            if egress is None:
                continue
            dstip = probe.get("dstip")
            covering = [prefix for prefix in server.announced_by(egress)
                        if prefix.contains_address(dstip)]
            if not covering:
                violations.append(Violation(
                    "bgp-consistency",
                    f"{sender} probe#{index} to {dstip} egressed at "
                    f"{egress}, which announced no covering route"))
            elif not server.exports_to(egress, sender):
                violations.append(Violation(
                    "bgp-consistency",
                    f"{sender} probe#{index} delivered to {egress}, which "
                    f"does not export to {sender}"))
    return violations


def check_default_conformance(controller: SdxController) -> List[Violation]:
    """Router FIBs and VMAC tags agree with the route server + allocator.

    For every (participant, prefix): a FIB entry exists exactly when the
    route server has a best route for that participant, and — when the
    prefix is VNH-tagged — packets the router emits toward the prefix
    carry the allocator's virtual MAC, the tag every default and policy
    rule matches on.
    """
    violations: List[Violation] = []
    if controller.fabric is None:
        return violations
    server = controller.route_server
    announced = sorted(server.all_prefixes())
    for participant in controller.topology.participants():
        router = participant.router
        if router is None:
            continue
        for prefix in announced:
            # Only check prefixes this prefix is the most specific cover
            # for, so overlapping announcements don't cross-talk.
            probe_ip = prefix.first_address + 1
            specific = max(
                (candidate for candidate in announced
                 if candidate.contains_address(probe_ip)),
                key=lambda candidate: candidate.length)
            if specific != prefix:
                continue
            best = server.best_route_for(participant.name, prefix)
            emitted = router.emit(Packet(dstip=probe_ip))
            if best is None:
                if emitted is not None:
                    violations.append(Violation(
                        "default-conformance",
                        f"{participant.name} routes {prefix} with no best "
                        f"route at the route server"))
                continue
            if emitted is None:
                violations.append(Violation(
                    "default-conformance",
                    f"{participant.name} has no FIB entry for {prefix} "
                    f"despite a best route via {best.learned_from}"))
                continue
            expected_vmac = controller.allocator.vmac_for_prefix(prefix)
            if (expected_vmac is not None
                    and emitted.get("dstmac") != expected_vmac):
                violations.append(Violation(
                    "default-conformance",
                    f"{participant.name} tags {prefix} with "
                    f"{emitted.get('dstmac')}, allocator says "
                    f"{expected_vmac}"))
    return violations


def check_all(controller: SdxController,
              probes: Sequence[Packet]) -> List[Violation]:
    """Every standing invariant, concatenated."""
    return (check_single_delivery(controller, probes)
            + check_bgp_consistency(controller, probes)
            + check_default_conformance(controller))


class SwapMonitor:
    """Observes a consistency-preserving table swap, probe by probe.

    Attach around a recompilation (``with SwapMonitor(...) as monitor:``),
    and the monitor re-forwards every probe after each southbound batch.
    :meth:`violations` then reports two kinds of breach of the two-phase
    guarantee:

    * a probe deliverable both before and after the swap that dropped at
      some intermediate table state (transient blackhole);
    * an intermediate outcome that matches neither the old nor the new
      forwarding (transient misrouting onto a stale mid-priority rule).
    """

    def __init__(self, controller: SdxController,
                 probes: Sequence[Packet]):
        self.controller = controller
        self.probes = tuple(probes)
        self.baseline: Dict[Tuple[str, int], Outcome] = {}
        self.final: Dict[Tuple[str, int], Outcome] = {}
        self.intermediate: List[Dict[Tuple[str, int], Outcome]] = []
        self._probing = False

    def _snapshot(self) -> Dict[Tuple[str, int], Outcome]:
        return {
            (sender, index): outcome_of(self.controller, sender, probe)
            for sender in _physical_senders(self.controller)
            for index, probe in enumerate(self.probes)
        }

    def _on_batch(self, batch) -> None:
        if self._probing:  # pragma: no cover - defensive reentrancy guard
            return
        self._probing = True
        try:
            self.intermediate.append(self._snapshot())
        finally:
            self._probing = False

    def __enter__(self) -> "SwapMonitor":
        self.baseline = self._snapshot()
        self.controller.southbound.add_observer(self._on_batch)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.controller.southbound.remove_observer(self._on_batch)
        self.final = self._snapshot()

    def violations(self) -> List[Violation]:
        """Breaches of the old-path-or-new-path guarantee."""
        out: List[Violation] = []
        for key, before in self.baseline.items():
            after = self.final.get(key)
            allowed = {before, after}
            for stage, snapshot in enumerate(self.intermediate):
                seen = snapshot.get(key)
                if seen in allowed:
                    continue
                sender, index = key
                kind = ("transient blackhole" if seen is None
                        else "transient misroute")
                out.append(Violation(
                    "two-phase-swap",
                    f"{kind}: {sender} probe#{index} saw {seen} at batch "
                    f"{stage} (old={before}, new={after})"))
        return out
