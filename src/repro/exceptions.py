"""Exception hierarchy shared by every repro subpackage.

All library-raised errors derive from :class:`ReproError` so callers can
catch the whole family with one ``except`` clause while still being able to
distinguish addressing errors from policy or BGP errors.
"""


class ReproError(Exception):
    """Base class for every error raised by this library."""


class AddressError(ReproError, ValueError):
    """An IPv4/MAC address or prefix could not be parsed or is invalid."""


class PolicyError(ReproError):
    """A policy is malformed or cannot be compiled."""


class FieldError(PolicyError, KeyError):
    """A match/modify references an unknown packet header field."""


class BgpError(ReproError):
    """A BGP message, session, or RIB operation is invalid."""


class SessionStateError(BgpError):
    """A BGP session operation was attempted in the wrong state."""


class OwnershipError(ReproError):
    """A participant tried to originate a prefix it does not own."""


class FabricError(ReproError):
    """The IXP fabric or switch configuration is inconsistent."""


class ParticipantError(ReproError):
    """A participant is unknown or misconfigured."""


class CompilationError(ReproError):
    """The SDX compiler could not produce forwarding rules."""


class StaticPolicyError(PolicyError):
    """The static policy verifier found error-severity diagnostics.

    Raised by :class:`~repro.core.controller.SdxController` in strict
    statics mode; carries the offending
    :class:`~repro.statics.diagnostics.StaticsReport` as ``report``.
    """

    def __init__(self, message: str, report=None):
        super().__init__(message)
        self.report = report


class StaticDataplaneError(FabricError):
    """The dataplane verifier rejected a FlowMod apply window.

    Raised by :class:`~repro.statics.dataplane.DataplaneVerifier` in
    strict mode after rolling the offending window back out of the flow
    table; carries the verification
    :class:`~repro.statics.diagnostics.StaticsReport` as ``report``.
    """

    def __init__(self, message: str, report=None):
        super().__init__(message)
        self.report = report
