"""Prioritized rule tables and their composition algebra.

A :class:`Classifier` is an ordered list of :class:`Rule` objects — the
intermediate representation between the policy AST and concrete OpenFlow
rules. Packet semantics are *first match wins*. Compiled classifiers are
always **total**: the last rule matches every packet, so evaluation never
falls off the end and negation is well-defined.

The two composition operators mirror Pyretic's compilation (Monsanto et
al., NSDI 2013):

* :func:`parallel_compose` — the rule-level cross product implementing
  ``p1 + p2`` (apply both policies, union the outputs).
* :func:`sequential_compose` — pulls each right-hand match back through the
  left-hand rule's actions, implementing ``p1 >> p2``.

These are exactly the operations whose cost Section 4.3 of the SDX paper
optimises, so the SDX compiler counts invocations through
:class:`ComposeStats`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.exceptions import PolicyError
from repro.net.addresses import IPv4Prefix
from repro.net.packet import Packet, check_field, coerce_field_value
from repro.policy.headerspace import WILDCARD, HeaderSpace


class Action(Mapping[str, Any]):
    """One forwarding action: a set of header-field assignments.

    The empty action is the identity (forward unmodified); an action that
    assigns ``port`` moves the packet. A rule with *no* actions drops.
    """

    __slots__ = ("_assignments", "_hash")

    def __init__(self, **assignments: Any):
        normalised = {
            name: coerce_field_value(name, value)
            for name, value in assignments.items()
        }
        object.__setattr__(self, "_assignments", normalised)
        object.__setattr__(self, "_hash", None)

    @classmethod
    def _from_dict(cls, assignments: Dict[str, Any]) -> "Action":
        action = cls()
        object.__setattr__(action, "_assignments", assignments)
        return action

    def __getitem__(self, name: str) -> Any:
        return self._assignments[name]

    def __iter__(self) -> Iterator[str]:
        return iter(self._assignments)

    def __len__(self) -> int:
        return len(self._assignments)

    @property
    def is_identity(self) -> bool:
        """True if this action leaves the packet untouched."""
        return not self._assignments

    @property
    def output_port(self) -> Optional[int]:
        """The port this action sends the packet to, if any."""
        return self._assignments.get("port")

    def apply(self, packet: Packet) -> Packet:
        """The packet after this action's assignments."""
        if not self._assignments:
            return packet
        return packet.modify(**{k: v for k, v in self._assignments.items()})

    def then(self, later: "Action") -> "Action":
        """The action equivalent to applying ``self`` then ``later``."""
        if later.is_identity:
            return self
        if self.is_identity:
            return later
        merged = dict(self._assignments)
        merged.update(later._assignments)
        return Action._from_dict(merged)

    def sets_field(self, name: str) -> bool:
        """True if this action assigns ``name``."""
        check_field(name)
        return name in self._assignments

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Action):
            return self._assignments == other._assignments
        return NotImplemented

    def __hash__(self) -> int:
        cached = self._hash
        if cached is None:
            cached = hash(frozenset(self._assignments.items()))
            object.__setattr__(self, "_hash", cached)
        return cached

    def __repr__(self) -> str:
        if self.is_identity:
            return "Action(id)"
        inner = ", ".join(
            f"{name}={self._assignments[name]!s}" for name in sorted(self._assignments))
        return f"Action({inner})"


#: The identity action (forward unmodified).
IDENTITY_ACTION = Action()


def _dedup_actions(actions: Iterable[Action]) -> Tuple[Action, ...]:
    """Drop duplicate actions while preserving first-seen order."""
    return tuple(dict.fromkeys(actions))


@dataclass(frozen=True)
class Rule:
    """One prioritized rule: a match and the actions for matching packets.

    An empty ``actions`` tuple drops the packet; several actions multicast.
    """

    match: HeaderSpace
    actions: Tuple[Action, ...]

    @property
    def is_drop(self) -> bool:
        """True if matching packets are dropped."""
        return not self.actions

    @property
    def is_identity(self) -> bool:
        """True if matching packets pass through unmodified."""
        return self.actions == (IDENTITY_ACTION,)

    def apply(self, packet: Packet) -> FrozenSet[Packet]:
        """The output packets for a packet known to match this rule."""
        return frozenset(action.apply(packet) for action in self.actions)

    def __repr__(self) -> str:
        actions = "drop" if self.is_drop else " | ".join(map(repr, self.actions))
        return f"Rule({self.match!r} -> {actions})"


class Classifier:
    """An ordered, first-match-wins rule table.

    Compiled classifiers are total; :meth:`eval` raises
    :class:`~repro.exceptions.PolicyError` if no rule matches, which
    indicates a compiler bug rather than a user error.
    """

    __slots__ = ("_rules",)

    def __init__(self, rules: Sequence[Rule]):
        self._rules = tuple(rules)

    @property
    def rules(self) -> Tuple[Rule, ...]:
        """The rules, highest priority first."""
        return self._rules

    def __len__(self) -> int:
        return len(self._rules)

    def __iter__(self) -> Iterator[Rule]:
        return iter(self._rules)

    @property
    def is_total(self) -> bool:
        """True if the final rule matches every packet."""
        return bool(self._rules) and self._rules[-1].match.is_wildcard

    def first_match(self, packet: Packet) -> Optional[Rule]:
        """The highest-priority rule matching ``packet``, if any."""
        for rule in self._rules:
            if rule.match.matches(packet):
                return rule
        return None

    def eval(self, packet: Packet) -> FrozenSet[Packet]:
        """The output packet set for ``packet`` (empty set = dropped)."""
        rule = self.first_match(packet)
        if rule is None:
            raise PolicyError(f"classifier is not total: no rule matches {packet!r}")
        return rule.apply(packet)

    def negate(self) -> "Classifier":
        """The complement of a *predicate* classifier.

        Identity rules become drops and vice versa. Only meaningful when
        every rule is a pure filter (identity or drop).
        """
        flipped = []
        for rule in self._rules:
            if rule.is_drop:
                flipped.append(Rule(rule.match, (IDENTITY_ACTION,)))
            elif rule.is_identity:
                flipped.append(Rule(rule.match, ()))
            else:
                raise PolicyError(f"cannot negate non-filter rule {rule!r}")
        return Classifier(flipped)

    def __repr__(self) -> str:
        return f"Classifier({len(self._rules)} rules)"


#: A classifier passing every packet through unmodified.
IDENTITY_CLASSIFIER = Classifier([Rule(WILDCARD, (IDENTITY_ACTION,))])

#: A classifier dropping every packet.
DROP_CLASSIFIER = Classifier([Rule(WILDCARD, ())])


@dataclass
class ComposeStats:
    """Counters for composition work, used by the Section 4.3 evaluation."""

    parallel_ops: int = 0
    sequential_ops: int = 0
    rule_pairs_examined: int = 0

    def merge(self, other: "ComposeStats") -> None:
        """Fold another counter set into this one."""
        self.parallel_ops += other.parallel_ops
        self.sequential_ops += other.sequential_ops
        self.rule_pairs_examined += other.rule_pairs_examined


def _cross_rules(left: Sequence[Rule], right: Sequence[Rule],
                 stats: Optional[ComposeStats]) -> List[Rule]:
    """The lexicographic cross product implementing parallel composition."""
    out: List[Rule] = []
    for rule_l in left:
        for rule_r in right:
            if stats is not None:
                stats.rule_pairs_examined += 1
            match = rule_l.match.intersect(rule_r.match)
            if match is None:
                continue
            out.append(Rule(match, _dedup_actions(rule_l.actions + rule_r.actions)))
    return out


def parallel_compose(left: Classifier, right: Classifier,
                     stats: Optional[ComposeStats] = None) -> Classifier:
    """The classifier for ``p_left + p_right``.

    For every packet the result unions the actions of the first matching
    rule on each side. The cross product in lexicographic (left-major)
    order realises exactly that for total classifiers.
    """
    if stats is not None:
        stats.parallel_ops += 1
    return Classifier(_cross_rules(left.rules, right.rules, stats))


def _pullback(action: Action, match: HeaderSpace) -> Optional[HeaderSpace]:
    """The pre-image of ``match`` under ``action``.

    Constraints on fields the action assigns are checked against the
    assigned value (and dropped if satisfied); the rest carry over to the
    original packet. Returns ``None`` when unsatisfiable.
    """
    remaining: Dict[str, Any] = {}
    for fieldname, constraint in match.items():
        if action.sets_field(fieldname):
            assigned = action[fieldname]
            if isinstance(constraint, IPv4Prefix):
                if not constraint.contains_address(assigned):
                    return None
            elif constraint != assigned:
                return None
        else:
            remaining[fieldname] = constraint
    if not remaining:
        return WILDCARD
    return HeaderSpace._from_dict(remaining)


def _sequence_action(rule_match: HeaderSpace, action: Action,
                     right: Classifier,
                     stats: Optional[ComposeStats]) -> List[Rule]:
    """Rules for packets in ``rule_match`` that take ``action`` then ``right``."""
    out: List[Rule] = []
    for rule_r in right.rules:
        if stats is not None:
            stats.rule_pairs_examined += 1
        pulled = _pullback(action, rule_r.match)
        if pulled is None:
            continue
        match = rule_match.intersect(pulled)
        if match is None:
            continue
        out.append(Rule(match, tuple(action.then(a) for a in rule_r.actions)))
    return out


def sequential_compose(left: Classifier, right: Classifier,
                       stats: Optional[ComposeStats] = None) -> Classifier:
    """The classifier for ``p_left >> p_right``.

    Each left rule's actions are pushed through the right classifier by
    pulling the right-hand matches back through the action's assignments.
    Multicast left rules combine their per-action results in parallel.
    """
    if stats is not None:
        stats.sequential_ops += 1
    out: List[Rule] = []
    for rule_l in left.rules:
        if rule_l.is_drop:
            out.append(rule_l)
            continue
        per_action = [
            _sequence_action(rule_l.match, action, right, stats)
            for action in rule_l.actions
        ]
        combined = per_action[0]
        for more in per_action[1:]:
            combined = _cross_rules(combined, more, stats)
        out.extend(combined)
    return Classifier(out)


def parallel_compose_many(classifiers: Sequence[Classifier],
                          stats: Optional[ComposeStats] = None) -> Classifier:
    """Fold :func:`parallel_compose` over ``classifiers`` (drop if empty)."""
    if not classifiers:
        return DROP_CLASSIFIER
    result = classifiers[0]
    for classifier in classifiers[1:]:
        result = parallel_compose(result, classifier, stats)
    return result


def concatenate_disjoint(classifiers: Sequence[Classifier]) -> Classifier:
    """Stack classifiers known to match disjoint flow spaces.

    This is the Section 4.3 *disjointness* optimisation: when policies can
    never match the same packet, ``p1 + p2`` needs no cross product — the
    rule lists (minus their catch-all drops) simply concatenate, followed
    by a single shared drop.

    Precondition: each classifier's non-catch-all *drop* rules must also
    stay inside its own flow space. Positive guards (e.g. the SDX's
    per-participant ingress-port matches) satisfy this; negation guards
    compile to drop masks that would shadow the other classifiers — the
    SDX clause compiler (:func:`repro.core.compiler.compile_clause_rules`)
    strips those before stacking.
    """
    rules: List[Rule] = []
    for classifier in classifiers:
        for rule in classifier.rules:
            if rule.match.is_wildcard and rule.is_drop:
                continue
            rules.append(rule)
    rules.append(Rule(WILDCARD, ()))
    return Classifier(rules)
