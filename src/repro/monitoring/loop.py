"""The monitor: cadenced sampling plus detector fan-out.

:class:`DataPlaneMonitor` is the object the runtime polls (see
:meth:`repro.runtime.loop.ControlPlaneRuntime.attach_monitor`). It owns
the sampling cadence: ``poll(now)`` is cheap and returns nothing until a
full sampling interval has elapsed on the runtime clock, then takes one
sample, runs every detector over it, and hands back the emitted events
for the runtime to queue. Because emission is cadence-bounded, the
runtime's ``drain()`` still terminates with a monitor attached — the
clock has to advance for another batch of events to appear.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.core.controller import SdxController
from repro.monitoring.events import MonitoringEvent
from repro.monitoring.stats import (
    DEFAULT_EWMA_ALPHA,
    FlowStatsCollector,
    MonitorSample,
)

#: Default sampling cadence, in runtime-clock seconds.
DEFAULT_CADENCE_SECONDS = 1.0


class DataPlaneMonitor:
    """Cadenced counter sampling feeding a set of detectors.

    ``detectors`` are objects with ``observe(sample) -> iterable of
    MonitoringEvent`` (the classes in :mod:`repro.monitoring.detect`,
    or anything matching). ``last_sample`` always holds the newest
    :class:`~repro.monitoring.stats.MonitorSample`, which is how
    reactive apps read detailed per-rule rates when an event fires.
    """

    def __init__(self, controller: SdxController, *,
                 cadence_seconds: float = DEFAULT_CADENCE_SECONDS,
                 ewma_alpha: float = DEFAULT_EWMA_ALPHA,
                 detectors: Sequence[object] = ()):
        if cadence_seconds <= 0:
            raise ValueError(f"cadence must be positive, got {cadence_seconds}")
        self.controller = controller
        self.cadence_seconds = cadence_seconds
        self.collector = FlowStatsCollector(controller, ewma_alpha=ewma_alpha)
        self.detectors: List[object] = list(detectors)
        self.last_sample: Optional[MonitorSample] = None
        self._next_due: Optional[float] = None
        self._events_counter = controller.telemetry.registry.counter(
            "sdx_dataplane_events_total", "Monitoring events emitted")

    def add_detector(self, detector: object) -> None:
        """Run ``detector.observe(sample)`` on every future sample."""
        self.detectors.append(detector)

    def due(self, now: float) -> bool:
        """True if ``poll(now)`` would take a sample."""
        return self._next_due is None or now >= self._next_due

    def poll(self, now: float) -> List[MonitoringEvent]:
        """Sample if a cadence interval elapsed; returns detector events.

        The first poll samples immediately (establishing the counter
        baseline) and schedules the next sample one cadence later.
        """
        if not self.due(now):
            return []
        self._next_due = now + self.cadence_seconds
        sample = self.collector.sample(now)
        self.last_sample = sample
        events: List[MonitoringEvent] = []
        for detector in self.detectors:
            events.extend(detector.observe(sample))
        if events:
            self._events_counter.inc(len(events))
        return events

    def force_sample(self, now: float) -> MonitorSample:
        """Take an off-cadence sample (CLI snapshot mode); detectors do
        **not** run, so no events are emitted and hysteresis state is
        untouched — but EWMA and delta baselines do advance."""
        sample = self.collector.sample(now)
        self.last_sample = sample
        return sample

    def __repr__(self) -> str:
        return (f"DataPlaneMonitor(cadence={self.cadence_seconds:g}s, "
                f"{len(self.detectors)} detectors)")
