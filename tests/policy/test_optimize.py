"""Tests for classifier reductions: they shrink tables without changing
first-match semantics (checked by hypothesis)."""

from hypothesis import given, settings

from repro.net.packet import Packet
from repro.policy.classifier import Action, Classifier, Rule
from repro.policy.headerspace import WILDCARD, HeaderSpace
from repro.policy.optimize import (
    coalesce_adjacent,
    merge_drop_tail,
    optimize,
    remove_shadowed,
)

from tests.policy.strategies import packets, policies


class TestRemoveShadowed:
    def test_drops_rule_under_wildcard(self):
        classifier = Classifier([
            Rule(WILDCARD, (Action(port=1),)),
            Rule(HeaderSpace(dstport=80), (Action(port=2),)),
        ])
        reduced = remove_shadowed(classifier)
        assert len(reduced) == 1
        assert reduced.rules[0].actions == (Action(port=1),)

    def test_keeps_unshadowed_rules(self):
        classifier = Classifier([
            Rule(HeaderSpace(dstport=80), (Action(port=2),)),
            Rule(HeaderSpace(dstport=443), (Action(port=3),)),
            Rule(WILDCARD, ()),
        ])
        assert len(remove_shadowed(classifier)) == 3

    def test_prefix_shadowing(self):
        classifier = Classifier([
            Rule(HeaderSpace(dstip="10.0.0.0/8"), (Action(port=1),)),
            Rule(HeaderSpace(dstip="10.1.0.0/16"), (Action(port=2),)),
            Rule(WILDCARD, ()),
        ])
        reduced = remove_shadowed(classifier)
        assert len(reduced) == 2


class TestMergeDropTail:
    def test_collapses_trailing_drops(self):
        classifier = Classifier([
            Rule(HeaderSpace(dstport=80), (Action(port=2),)),
            Rule(HeaderSpace(dstport=443), ()),
            Rule(HeaderSpace(dstport=22), ()),
            Rule(WILDCARD, ()),
        ])
        reduced = merge_drop_tail(classifier)
        assert len(reduced) == 2

    def test_no_wildcard_tail_untouched(self):
        classifier = Classifier([Rule(HeaderSpace(dstport=443), ())])
        assert merge_drop_tail(classifier) is classifier

    def test_keeps_drops_above_forwarding_rules(self):
        classifier = Classifier([
            Rule(HeaderSpace(dstport=443), ()),
            Rule(HeaderSpace(dstport=80), (Action(port=2),)),
            Rule(WILDCARD, ()),
        ])
        assert len(merge_drop_tail(classifier)) == 3


class TestCoalesceAdjacent:
    def test_merges_redundant_specific_rule(self):
        classifier = Classifier([
            Rule(HeaderSpace(dstip="10.1.0.0/16"), (Action(port=2),)),
            Rule(HeaderSpace(dstip="10.0.0.0/8"), (Action(port=2),)),
            Rule(WILDCARD, ()),
        ])
        reduced = coalesce_adjacent(classifier)
        assert len(reduced) == 2

    def test_keeps_distinct_actions(self):
        classifier = Classifier([
            Rule(HeaderSpace(dstip="10.1.0.0/16"), (Action(port=2),)),
            Rule(HeaderSpace(dstip="10.0.0.0/8"), (Action(port=3),)),
            Rule(WILDCARD, ()),
        ])
        assert len(coalesce_adjacent(classifier)) == 3


class TestOptimizePreservesSemantics:
    @settings(max_examples=100, deadline=None)
    @given(policies(max_depth=4), packets())
    def test_optimize_preserves_eval_property(self, policy, packet):
        compiled = policy.compile()
        reduced = optimize(compiled)
        assert reduced.eval(packet) == compiled.eval(packet)
        assert len(reduced) <= len(compiled)

    @settings(max_examples=100, deadline=None)
    @given(policies(max_depth=4))
    def test_optimize_keeps_total_property(self, policy):
        assert optimize(policy.compile()).is_total
