"""Tests for AS numbers, paths, and path regular expressions."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.bgp.asn import MAX_ASN, AsPath, AsPathPattern, check_asn
from repro.exceptions import BgpError

asns = st.integers(min_value=1, max_value=65535)


class TestCheckAsn:
    def test_accepts_valid(self):
        assert check_asn(65001) == 65001
        assert check_asn(MAX_ASN) == MAX_ASN

    @pytest.mark.parametrize("bad", [0, -5, MAX_ASN + 1])
    def test_rejects_out_of_range(self, bad):
        with pytest.raises(BgpError):
            check_asn(bad)

    def test_rejects_bool_and_text(self):
        with pytest.raises(BgpError):
            check_asn(True)
        with pytest.raises(BgpError):
            check_asn("65001")


class TestAsPath:
    def test_origin_and_neighbour(self):
        path = AsPath([7018, 3356, 43515])
        assert path.origin_asn == 43515
        assert path.neighbour_asn == 7018

    def test_empty_path_has_no_origin(self):
        with pytest.raises(BgpError):
            AsPath().origin_asn
        with pytest.raises(BgpError):
            AsPath().neighbour_asn

    def test_prepend(self):
        path = AsPath([3356]).prepend(7018)
        assert path.asns == (7018, 3356)

    def test_prepend_repeats(self):
        path = AsPath([3356]).prepend(7018, count=3)
        assert path.asns == (7018, 7018, 7018, 3356)
        assert path.length == 4

    def test_prepend_rejects_bad_count(self):
        with pytest.raises(BgpError):
            AsPath([1]).prepend(2, count=0)

    def test_loop_detection(self):
        path = AsPath([7018, 3356])
        assert path.contains_loop(3356)
        assert not path.contains_loop(65001)

    def test_str_is_space_separated(self):
        assert str(AsPath([7018, 3356, 43515])) == "7018 3356 43515"

    def test_equality_and_hash(self):
        assert AsPath([1, 2]) == AsPath([1, 2])
        assert len({AsPath([1, 2]), AsPath([1, 2])}) == 1

    def test_iteration(self):
        assert list(AsPath([5, 6])) == [5, 6]

    @given(st.lists(asns, min_size=1, max_size=6))
    def test_prepend_grows_length_property(self, path_asns):
        path = AsPath(path_asns)
        assert path.prepend(64512).length == path.length + 1


class TestAsPathPattern:
    def test_paper_youtube_example(self):
        """Section 3.2: all routes ending in AS 43515 (YouTube)."""
        pattern = AsPathPattern(r".*43515$")
        assert pattern.matches(AsPath([7018, 3356, 43515]))
        assert not pattern.matches(AsPath([7018, 43515, 3356]))

    def test_anchored_neighbour(self):
        pattern = AsPathPattern(r"^7018")
        assert pattern.matches(AsPath([7018, 3356]))
        assert not pattern.matches(AsPath([3356, 7018]))

    def test_substring_matches_anywhere(self):
        pattern = AsPathPattern(r"3356")
        assert pattern.matches(AsPath([7018, 3356, 43515]))

    def test_bad_regex_rejected(self):
        with pytest.raises(BgpError):
            AsPathPattern("(unclosed")
