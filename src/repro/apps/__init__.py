"""Reusable SDX applications (the paper's Section 2 catalogue).

Each helper packages one wide-area traffic-delivery application as
library code over the participant policy API:

- :func:`repro.apps.peering.application_specific_peering` — peer with a
  neighbour only for chosen applications;
- :func:`repro.apps.inbound_te.split_inbound_by_source` — direct control
  over which port traffic enters on;
- :class:`repro.apps.load_balancer.WideAreaLoadBalancer` — anycast +
  in-network destination rewriting instead of DNS tricks;
- :class:`repro.apps.chaining.ServiceChain` — steer a traffic subset
  through a sequence of middleboxes (the Section 8 "service chaining"
  extension);
- :class:`repro.apps.reactive.ReactiveInboundBalancer` and
  :class:`repro.apps.reactive.HeavyHitterSteering` — counter-driven
  variants that react to :mod:`repro.monitoring` events.
"""

from repro.apps.peering import application_specific_peering
from repro.apps.inbound_te import split_inbound_by_source
from repro.apps.load_balancer import WideAreaLoadBalancer
from repro.apps.chaining import ServiceChain, run_through_chain
from repro.apps.reactive import HeavyHitterSteering, ReactiveInboundBalancer

__all__ = [
    "HeavyHitterSteering",
    "ReactiveInboundBalancer",
    "ServiceChain",
    "WideAreaLoadBalancer",
    "application_specific_peering",
    "run_through_chain",
    "split_inbound_by_source",
]
