"""Tests for the reusable application layer (repro.apps)."""

import pytest

from repro.apps.chaining import ServiceChain, run_through_chain
from repro.apps.inbound_te import split_inbound_by_source
from repro.apps.load_balancer import WideAreaLoadBalancer
from repro.apps.peering import application_specific_peering
from repro.bgp.asn import AsPath
from repro.core.controller import SdxController
from repro.exceptions import PolicyError
from repro.net.addresses import IPv4Address, IPv4Prefix
from repro.net.packet import Packet
from repro.policy.policies import match


def packet(dstip, dstport=80, srcip="10.0.0.1", protocol=6, **extra):
    return Packet(dstip=dstip, dstport=dstport, srcip=srcip,
                  protocol=protocol, **extra)


class TestApplicationSpecificPeering:
    def make(self):
        sdx = SdxController()
        isp = sdx.add_participant("ISP", 64500)
        sdx.add_participant("CDN", 64501)
        sdx.add_participant("Transit", 64502)
        content = IPv4Prefix("60.0.0.0/8")
        sdx.announce_route("CDN", content, AsPath([64501, 15169, 15169]))
        sdx.announce_route("Transit", content, AsPath([64502, 15169]))
        sdx.start()
        return sdx, isp

    def test_installs_per_port_policies(self):
        sdx, isp = self.make()
        installed = application_specific_peering(isp, "CDN",
                                                 applications=("web",))
        assert len(installed) == 2  # 80 and 443
        assert sdx.egress_of("ISP", packet("60.0.0.1", dstport=80)) == "CDN"
        assert sdx.egress_of("ISP", packet("60.0.0.1", dstport=25)) == "Transit"

    def test_teardown_restores_default(self):
        sdx, isp = self.make()
        installed = application_specific_peering(isp, "CDN")
        for policy in installed:
            isp.remove_outbound(policy)
        assert sdx.egress_of("ISP", packet("60.0.0.1", dstport=80)) == "Transit"

    def test_extra_ports_and_dedup(self):
        sdx, isp = self.make()
        installed = application_specific_peering(
            isp, "CDN", applications=("web",), extra_ports=(80, 8443))
        assert len(installed) == 3  # 80, 443, 8443 (80 deduplicated)

    def test_unknown_application_rejected(self):
        sdx, isp = self.make()
        with pytest.raises(PolicyError):
            application_specific_peering(isp, "CDN", applications=("gopher",))

    def test_empty_request_rejected(self):
        sdx, isp = self.make()
        with pytest.raises(PolicyError):
            application_specific_peering(isp, "CDN", applications=())


class TestSplitInboundBySource:
    def make(self, ports=2):
        sdx = SdxController()
        sdx.add_participant("Sender", 64500)
        eyeball = sdx.add_participant("Eyeball", 64510, ports=ports)
        sdx.announce_route("Eyeball", IPv4Prefix("70.0.0.0/8"),
                           AsPath([64510]))
        sdx.start()
        return sdx, eyeball

    def test_default_half_split(self):
        sdx, eyeball = self.make()
        split_inbound_by_source(eyeball)
        low = sdx.send("Sender", packet("70.0.0.1", srcip="9.9.9.9"))[0]
        high = sdx.send("Sender", packet("70.0.0.1", srcip="200.9.9.9"))[0]
        assert low.switch_port == eyeball.port(0)
        assert high.switch_port == eyeball.port(1)

    def test_custom_assignment(self):
        sdx, eyeball = self.make()
        split_inbound_by_source(eyeball, {"96.0.0.0/4": 1})
        carved = sdx.send("Sender", packet("70.0.0.1", srcip="96.5.5.5"))[0]
        other = sdx.send("Sender", packet("70.0.0.1", srcip="9.9.9.9"))[0]
        assert carved.switch_port == eyeball.port(1)
        assert other.switch_port == eyeball.port(0)  # default delivery

    def test_single_port_default_rejected(self):
        sdx, eyeball = self.make(ports=1)
        with pytest.raises(PolicyError):
            split_inbound_by_source(eyeball)

    def test_remote_rejected(self):
        sdx = SdxController()
        sdx.add_participant("Sender", 64500)
        remote = sdx.add_participant("R", 64599, ports=0)
        sdx.start()
        with pytest.raises(PolicyError):
            split_inbound_by_source(remote)


class TestWideAreaLoadBalancer:
    SERVICE = IPv4Address("74.125.1.1")
    ANYCAST = IPv4Prefix("74.125.1.0/24")

    def make(self):
        sdx = SdxController()
        sdx.add_participant("ClientISP", 64500)
        sdx.add_participant("Transit", 64502)
        sdx.announce_route("Transit", IPv4Prefix("54.0.0.0/8"),
                           AsPath([64502, 14618]))
        provider = sdx.add_participant("Provider", 15169, ports=0)
        sdx.register_ownership(self.ANYCAST, "Provider")
        sdx.start()
        balancer = WideAreaLoadBalancer(
            provider, service=self.SERVICE, anycast_prefix=self.ANYCAST,
            via="Transit", default_backend=IPv4Address("54.0.0.1"))
        return sdx, balancer

    def request(self, sdx, srcip):
        deliveries = sdx.send("ClientISP", packet("74.125.1.1", srcip=srcip))
        accepted = [d for d in deliveries if d.accepted]
        return str(accepted[0].packet["dstip"]) if accepted else None

    def test_default_backend(self):
        sdx, balancer = self.make()
        balancer.start()
        assert self.request(sdx, "9.9.9.9") == "54.0.0.1"

    def test_assignment_shifts_one_prefix_only(self):
        sdx, balancer = self.make()
        balancer.start()
        balancer.assign(IPv4Prefix("96.25.160.0/24"), IPv4Address("54.0.0.2"))
        assert self.request(sdx, "96.25.160.9") == "54.0.0.2"
        assert self.request(sdx, "9.9.9.9") == "54.0.0.1"  # affinity kept

    def test_nested_client_prefixes_prefer_specific(self):
        sdx, balancer = self.make()
        balancer.start()
        balancer.assign(IPv4Prefix("96.0.0.0/8"), IPv4Address("54.0.0.2"))
        balancer.assign(IPv4Prefix("96.25.0.0/16"), IPv4Address("54.0.0.3"))
        assert self.request(sdx, "96.25.1.1") == "54.0.0.3"
        assert self.request(sdx, "96.99.1.1") == "54.0.0.2"

    def test_unassign_restores_default(self):
        sdx, balancer = self.make()
        balancer.start()
        balancer.assign(IPv4Prefix("96.0.0.0/8"), IPv4Address("54.0.0.2"))
        balancer.unassign(IPv4Prefix("96.0.0.0/8"))
        assert self.request(sdx, "96.1.1.1") == "54.0.0.1"

    def test_stop_withdraws_service(self):
        sdx, balancer = self.make()
        balancer.start()
        balancer.stop()
        assert self.request(sdx, "9.9.9.9") is None

    def test_service_outside_prefix_rejected(self):
        sdx, _ = self.make()
        with pytest.raises(PolicyError):
            WideAreaLoadBalancer(
                sdx.participant("Provider"),
                service=IPv4Address("8.8.8.8"),
                anycast_prefix=self.ANYCAST, via="Transit",
                default_backend=IPv4Address("54.0.0.1"))

    def test_assignments_copy(self):
        sdx, balancer = self.make()
        balancer.assign(IPv4Prefix("96.0.0.0/8"), IPv4Address("54.0.0.2"))
        view = balancer.assignments()
        view.clear()
        assert balancer.assignments()


class TestServiceChain:
    TARGET = IPv4Prefix("80.0.0.0/8")

    def make(self):
        sdx = SdxController()
        sdx.add_participant("ISP", 64500)
        sdx.add_participant("Victim", 64510)
        sdx.add_participant("Scrub", 64520)
        sdx.add_participant("Log", 64530)
        sdx.announce_route("Victim", self.TARGET, AsPath([64510]))
        sdx.start()
        chain = ServiceChain(sdx, "ISP", match(protocol=17),
                             ["Scrub", "Log"])
        chain.announce_coverage([self.TARGET])
        return sdx, chain

    def test_traverses_both_middleboxes(self):
        sdx, chain = self.make()
        chain.install()
        traversal = run_through_chain(chain, "ISP",
                                      packet("80.0.0.1", protocol=17))
        assert traversal.hops == ["Scrub", "Log"]
        assert traversal.final_egress == "Victim"
        assert traversal.completed

    def test_middlebox_functions_apply_in_order(self):
        sdx, chain = self.make()
        chain.install()
        chain.set_function("Scrub", lambda p: p.modify(srcport=1111))
        chain.set_function("Log", lambda p: p.modify(dstport=2222))
        traversal = run_through_chain(
            chain, "ISP", packet("80.0.0.1", protocol=17, srcport=5))
        assert traversal.final_packet["srcport"] == 1111
        assert traversal.final_packet["dstport"] == 2222

    def test_unselected_traffic_goes_direct(self):
        sdx, chain = self.make()
        chain.install()
        traversal = run_through_chain(chain, "ISP",
                                      packet("80.0.0.1", protocol=6))
        assert traversal.hops == []
        assert traversal.final_egress == "Victim"

    def test_coverage_announcements_never_best(self):
        sdx, chain = self.make()
        assert sdx.route_server.best_route_for(
            "ISP", self.TARGET).learned_from == "Victim"

    def test_uninstall_restores_direct_path(self):
        sdx, chain = self.make()
        chain.install()
        chain.uninstall()
        assert not chain.is_installed
        traversal = run_through_chain(chain, "ISP",
                                      packet("80.0.0.1", protocol=17))
        assert traversal.hops == []
        assert traversal.final_egress == "Victim"

    def test_double_install_rejected(self):
        sdx, chain = self.make()
        chain.install()
        with pytest.raises(PolicyError):
            chain.install()

    def test_validation(self):
        sdx, _ = self.make()
        with pytest.raises(PolicyError):
            ServiceChain(sdx, "ISP", match(protocol=17), [])
        with pytest.raises(PolicyError):
            ServiceChain(sdx, "ISP", match(protocol=17), ["Scrub", "Scrub"])
        with pytest.raises(PolicyError):
            ServiceChain(sdx, "ISP", match(protocol=17), ["ISP"])
        chain = ServiceChain(sdx, "ISP", match(protocol=17), ["Scrub"])
        with pytest.raises(PolicyError):
            chain.set_function("Log", lambda p: p)
