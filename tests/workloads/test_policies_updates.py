"""Tests for the policy generator and the update-trace generator."""

import pytest

from repro.workloads.datasets import ALL_PROFILES, AMS_IX, IxpProfile
from repro.workloads.policies import generate_policies, install_assignments
from repro.workloads.topology import generate_ixp
from repro.workloads.updates import (
    generate_burst_trace,
    generate_trace,
    trace_stats,
)


class TestDatasets:
    def test_table1_values(self):
        assert AMS_IX.collector_peers == 116
        assert AMS_IX.total_peers == 639
        assert AMS_IX.prefixes == 518_082
        assert AMS_IX.bgp_updates == 11_161_624
        assert len(ALL_PROFILES) == 3

    def test_scaling(self):
        scaled = AMS_IX.scaled(0.01)
        assert scaled.prefixes == round(518_082 * 0.01)
        assert scaled.fraction_prefixes_updated == AMS_IX.fraction_prefixes_updated

    def test_scaling_bounds(self):
        with pytest.raises(ValueError):
            AMS_IX.scaled(0)
        with pytest.raises(ValueError):
            AMS_IX.scaled(1.5)

    def test_updates_per_second(self):
        assert AMS_IX.updates_per_second == pytest.approx(
            11_161_624 / (6 * 86_400))


class TestGeneratePolicies:
    def make(self):
        ixp = generate_ixp(100, 2_000, seed=0)
        return ixp, generate_policies(ixp, seed=1)

    def test_deterministic(self):
        ixp = generate_ixp(100, 2_000, seed=0)
        first = generate_policies(ixp, seed=1)
        second = generate_policies(ixp, seed=1)
        assert [a.description for a in first] == [a.description for a in second]

    def test_roles_present(self):
        ixp, assignments = self.make()
        kinds = {a.description.split()[0] for a in assignments}
        assert {"content", "eyeball", "transit"} <= kinds

    def test_eyeballs_have_no_outbound(self):
        ixp, assignments = self.make()
        eyeballs = {s.name for s in ixp.participants if s.category == "eyeball"}
        for assignment in assignments:
            if assignment.participant in eyeballs:
                assert assignment.direction == "in"

    def test_all_install_cleanly(self):
        ixp, assignments = self.make()
        controller = ixp.build_controller()
        installed = install_assignments(controller, assignments)
        assert installed == len(assignments)
        result = controller.start()
        assert result.flow_rule_count > 0

    def test_single_assignment_install(self):
        ixp, assignments = self.make()
        controller = ixp.build_controller()
        assignments[0].install(controller)
        handle = controller.participant(assignments[0].participant)
        assert handle.participant.has_policies

    def test_prefix_sample_restricts_transit_policies(self):
        ixp = generate_ixp(100, 2_000, seed=0)
        sample = ixp.all_prefixes()[:10]
        assignments = generate_policies(ixp, seed=1, prefix_sample=sample)
        for assignment in assignments:
            if assignment.description.startswith("transit") and \
                    assignment.direction == "out":
                assert any(str(p) in assignment.description for p in sample)


class TestGenerateTrace:
    def make_trace(self, **kwargs):
        ixp = generate_ixp(50, 1_000, seed=0)
        defaults = dict(duration_seconds=40_000.0, seed=1,
                        fraction_prefixes_updated=0.12)
        defaults.update(kwargs)
        return ixp, generate_trace(ixp, **defaults)

    def test_deterministic(self):
        _, first = self.make_trace()
        _, second = self.make_trace()
        assert [(e.time, e.update) for e in first] == [
            (e.time, e.update) for e in second]

    def test_times_monotonic(self):
        _, events = self.make_trace()
        times = [event.time for event in events]
        assert times == sorted(times)

    def test_senders_actually_announce(self):
        ixp, events = self.make_trace()
        announcers = {}
        for name, prefix, _path in ixp.announcements:
            announcers.setdefault(prefix, set()).add(name)
        for event in events:
            for prefix in event.update.prefixes:
                assert event.update.sender in announcers[prefix]

    def test_fraction_prefixes_updated_bounded(self):
        ixp, events = self.make_trace(duration_seconds=200_000.0)
        stats = trace_stats(events, total_prefixes=1_000)
        assert stats.fraction_prefixes_updated <= 0.125

    def test_max_updates_stops_exactly(self):
        _, events = self.make_trace(max_updates=77)
        assert len(events) == 77

    def test_burst_statistics_match_paper(self):
        """75% of bursts <= 3 prefixes; inter-arrivals >= 10 s 75% of the
        time, >= 60 s half of the time (tolerances for sampling noise)."""
        _, events = self.make_trace(max_updates=4_000)
        stats = trace_stats(events, total_prefixes=1_000)
        assert 0.65 <= stats.fraction_small_bursts <= 0.85
        assert 0.65 <= stats.fraction_gaps_over_10s <= 0.85
        assert 0.40 <= stats.fraction_gaps_over_60s <= 0.60

    def test_withdraw_then_reannounce(self):
        ixp, events = self.make_trace(max_updates=2_000,
                                      withdraw_probability=0.5)
        withdrawn = set()
        for event in events:
            update = event.update
            for withdrawal in update.withdrawals:
                key = (update.sender, withdrawal.prefix)
                assert key not in withdrawn  # never double-withdraw
                withdrawn.add(key)
            for announcement in update.announcements:
                withdrawn.discard((update.sender, announcement.prefix))

    def test_empty_trace_stats(self):
        stats = trace_stats([], total_prefixes=10)
        assert stats.updates == 0
        assert stats.fraction_prefixes_updated == 0.0

    def test_replay_through_controller(self):
        ixp, events = self.make_trace(max_updates=30)
        controller = ixp.build_controller()
        controller.start()
        for event in events:
            controller.submit_update(event.update)
        assert controller.engine.fast_path_invocations == 30
        controller.run_background_recompilation()
        assert controller.engine.fast_path_rules_live == 0


class TestGenerateBurstTrace:
    def make(self, **kwargs):
        ixp = generate_ixp(20, 200, seed=0)
        defaults = dict(bursts=5, burst_size=40, hot_prefixes=8, seed=1)
        defaults.update(kwargs)
        return ixp, generate_burst_trace(ixp, **defaults)

    def test_deterministic(self):
        _, first = self.make()
        _, second = self.make()
        assert [(e.time, e.update) for e in first] == [
            (e.time, e.update) for e in second]

    def test_size_and_timing(self):
        _, events = self.make(gap_seconds=30.0)
        assert len(events) == 5 * 40
        times = sorted({event.time for event in events})
        assert len(times) == 5  # one shared timestamp per burst
        assert all(b - a == 30.0 for a, b in zip(times, times[1:]))

    def test_hot_set_is_bounded(self):
        _, events = self.make()
        touched = {prefix for event in events
                   for prefix in event.update.prefixes}
        assert len(touched) <= 8

    def test_repeats_within_a_burst(self):
        """Sampling WITH replacement: a 40-update burst over 8 hot
        prefixes must revisit prefixes — that's what coalescing absorbs."""
        _, events = self.make()
        first_burst = [event for event in events
                       if event.time == events[0].time]
        keys = [(e.update.sender, prefix) for e in first_burst
                for prefix in e.update.prefixes]
        assert len(set(keys)) < len(keys)

    def test_senders_actually_announce(self):
        ixp, events = self.make()
        announcers = {}
        for name, prefix, _path in ixp.announcements:
            announcers.setdefault(prefix, set()).add(name)
        for event in events:
            for prefix in event.update.prefixes:
                assert event.update.sender in announcers[prefix]

    def test_rejects_nonpositive_shape(self):
        ixp = generate_ixp(5, 20, seed=0)
        with pytest.raises(ValueError):
            generate_burst_trace(ixp, bursts=0)
        with pytest.raises(ValueError):
            generate_burst_trace(ixp, burst_size=0)
