"""Tests for counters, gauges, streaming histograms, and the registry."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.telemetry.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        registry = MetricsRegistry()
        counter = registry.counter("events_total")
        assert counter.value == 0
        counter.inc()
        counter.inc(5)
        assert counter.value == 6

    def test_negative_increment_rejected(self):
        counter = MetricsRegistry().counter("events_total")
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_set_is_monotonic(self):
        counter = MetricsRegistry().counter("events_total")
        counter.set(10)
        assert counter.value == 10
        counter.set(10)  # idempotent re-set is fine
        with pytest.raises(ValueError):
            counter.set(9)


class TestGauge:
    def test_set_inc_dec(self):
        gauge = MetricsRegistry().gauge("level")
        gauge.set(5)
        gauge.inc(2)
        gauge.dec(3)
        assert gauge.value == 4


class TestHistogram:
    def test_counts_and_sum(self):
        histogram = Histogram.from_samples("latency", [1.0, 2.0, 3.0])
        assert histogram.count == 3
        assert histogram.sum == pytest.approx(6.0)
        assert histogram.mean == pytest.approx(2.0)

    def test_exact_endpoints(self):
        histogram = Histogram.from_samples("latency", [0.5, 1.7, 42.0])
        assert histogram.quantile(0.0) == 0.5
        assert histogram.quantile(1.0) == 42.0
        assert histogram.min == 0.5
        assert histogram.max == 42.0

    def test_interior_quantile_within_bucket_error(self):
        samples = [float(v) for v in range(1, 1001)]
        histogram = Histogram.from_samples("latency", samples)
        # Log buckets (base 1.1) bound the relative error at ~5%.
        assert histogram.quantile(0.5) == pytest.approx(500, rel=0.06)
        assert histogram.quantile(0.99) == pytest.approx(990, rel=0.06)

    def test_quantile_bounds_checked(self):
        histogram = Histogram.from_samples("latency", [1.0])
        with pytest.raises(ValueError):
            histogram.quantile(1.5)

    def test_empty_histogram_quantiles_are_zero(self):
        histogram = MetricsRegistry().histogram("latency")
        assert histogram.quantile(0.5) == 0.0
        assert histogram.count == 0

    def test_zero_and_negative_samples_underflow_bucket(self):
        histogram = Histogram.from_samples("sizes", [0.0, 0.0, 5.0])
        assert histogram.count == 3
        assert histogram.quantile(0.0) == 0.0
        assert histogram.quantile(1.0) == 5.0
        assert histogram.quantile(0.5) >= 0.0

    def test_single_sample_all_quantiles_collapse(self):
        histogram = Histogram.from_samples("latency", [3.7])
        for q in (0.0, 0.25, 0.5, 0.9, 0.99, 1.0):
            assert histogram.quantile(q) == 3.7
        summary = histogram.percentiles()
        assert summary["p50"] == summary["p99"] == summary["max"] == 3.7

    def test_heavily_skewed_distribution(self):
        # 999 fast samples and one 10^6x outlier: the tail quantiles
        # must not contaminate the body, and the max stays exact.
        samples = [0.001] * 999 + [1000.0]
        histogram = Histogram.from_samples("latency", samples)
        assert histogram.quantile(0.5) == pytest.approx(0.001, rel=0.06)
        assert histogram.quantile(0.99) == pytest.approx(0.001, rel=0.06)
        assert histogram.quantile(1.0) == 1000.0
        assert histogram.percentiles()["max"] == 1000.0
        # Quantiles stay monotone across the jump to the outlier bucket.
        values = [histogram.quantile(q)
                  for q in (0.5, 0.9, 0.99, 0.999, 1.0)]
        assert values == sorted(values)

    def test_percentiles_summary(self):
        histogram = Histogram.from_samples("latency", [1.0, 2.0, 3.0])
        summary = histogram.percentiles()
        assert set(summary) == {"p50", "p90", "p99", "max"}
        assert summary["max"] == 3.0

    @given(st.lists(st.floats(min_value=1e-6, max_value=1e6),
                    min_size=1, max_size=100))
    def test_quantiles_bounded_by_min_max_property(self, samples):
        histogram = Histogram.from_samples("latency", samples)
        for q in (0.0, 0.25, 0.5, 0.9, 0.99, 1.0):
            assert min(samples) <= histogram.quantile(q) <= max(samples)

    @given(st.lists(st.floats(min_value=1e-3, max_value=1e3),
                    min_size=1, max_size=100))
    def test_median_relative_error_property(self, samples):
        from repro.experiments.metrics import Cdf
        histogram = Histogram.from_samples("latency", samples)
        exact = Cdf(samples)
        # Endpoints agree exactly with the Cdf contract.
        assert histogram.quantile(0.0) == exact.quantile(0.0)
        assert histogram.quantile(1.0) == exact.quantile(1.0)


class TestRegistry:
    def test_get_or_create_returns_same_object(self):
        registry = MetricsRegistry()
        first = registry.counter("events_total", "help")
        second = registry.counter("events_total")
        assert first is second
        assert len(registry) == 1

    def test_labels_create_distinct_series(self):
        registry = MetricsRegistry()
        add = registry.counter("mods_total", op="add")
        delete = registry.counter("mods_total", op="delete")
        assert add is not delete
        add.inc()
        assert registry.get("mods_total", op="add").value == 1
        assert registry.get("mods_total", op="delete").value == 0

    def test_full_name_includes_labels(self):
        registry = MetricsRegistry()
        metric = registry.counter("mods_total", op="add")
        assert metric.full_name == "mods_total{op=add}"

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("thing")
        with pytest.raises(ValueError):
            registry.gauge("thing")

    def test_losses_collects_by_suffix(self):
        registry = MetricsRegistry()
        dropped = registry.counter("x_dropped_total")
        registry.counter("x_misses_total")
        registry.counter("x_skipped_total")
        registry.counter("x_total")  # not a loss counter
        dropped.inc(3)
        losses = registry.losses()
        assert losses == {"x_dropped_total": 3, "x_misses_total": 0,
                          "x_skipped_total": 0}

    def test_snapshot_shapes(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(2)
        registry.gauge("g").set(1.5)
        registry.histogram("h").observe(4.0)
        snapshot = registry.snapshot()
        assert snapshot["c"] == 2
        assert snapshot["g"] == 1.5
        assert snapshot["h"]["count"] == 1
        assert snapshot["h"]["max"] == 4.0

    def test_render_lists_every_metric(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.histogram("h")
        text = registry.render()
        assert "c" in text
        assert "(no samples)" in text

    def test_render_empty(self):
        assert MetricsRegistry().render() == "(no metrics)"
