"""The packet model shared by the policy language and the data plane.

A :class:`Packet` is an immutable bundle of header fields plus a location
(the switch port it currently sits on). Policies in :mod:`repro.policy` map
one located packet to a *set* of located packets — empty set means drop,
a singleton means forward, several mean multicast — exactly the Pyretic
semantics the paper builds on (Section 3.1).

Field registry
--------------
``FIELDS`` names every header field the SDX data plane can match on or
rewrite. IP addresses are held as :class:`~repro.net.addresses.IPv4Address`,
MACs as :class:`~repro.net.mac.MacAddress`, everything else as small ints.
"""

from __future__ import annotations

from typing import Any, Dict, FrozenSet, Iterator, Mapping, Optional

from repro.exceptions import FieldError
from repro.net.addresses import IPv4Address
from repro.net.mac import MacAddress

#: Every header field a packet can carry, with a one-line meaning.
FIELDS: Dict[str, str] = {
    "port": "ingress port on the current switch (location)",
    "srcmac": "Ethernet source MAC address",
    "dstmac": "Ethernet destination MAC address",
    "ethtype": "Ethernet payload type (0x0800 IPv4, 0x0806 ARP)",
    "srcip": "IPv4 source address",
    "dstip": "IPv4 destination address",
    "protocol": "IP protocol number (6 TCP, 17 UDP)",
    "srcport": "transport-layer source port",
    "dstport": "transport-layer destination port",
}

#: Fields holding IPv4 addresses.
IP_FIELDS: FrozenSet[str] = frozenset({"srcip", "dstip"})

#: Fields holding MAC addresses.
MAC_FIELDS: FrozenSet[str] = frozenset({"srcmac", "dstmac"})

#: Common ethertype values.
ETHTYPE_IPV4 = 0x0800
ETHTYPE_ARP = 0x0806

#: Common IP protocol numbers.
PROTO_TCP = 6
PROTO_UDP = 17


def check_field(name: str) -> str:
    """Validate a field name, returning it unchanged."""
    if name not in FIELDS:
        raise FieldError(f"unknown packet field {name!r}; known: {sorted(FIELDS)}")
    return name


def coerce_field_value(name: str, value: Any) -> Any:
    """Normalise ``value`` into the canonical type for field ``name``.

    Strings and ints are accepted for address fields and converted; other
    fields must be ints.
    """
    check_field(name)
    if value is None:
        return None
    if name in IP_FIELDS:
        return IPv4Address(value)
    if name in MAC_FIELDS:
        return MacAddress(value)
    if isinstance(value, bool) or not isinstance(value, int):
        raise FieldError(f"field {name!r} expects an int, got {value!r}")
    return value


class Packet(Mapping[str, Any]):
    """An immutable located packet.

    Construct with keyword header fields; unknown fields raise
    :class:`~repro.exceptions.FieldError`::

        >>> pkt = Packet(port=1, dstport=80, srcip="10.0.0.1")
        >>> pkt["dstport"]
        80
        >>> pkt.modify(port=2)["port"]
        2

    Missing fields read as ``None`` via :meth:`get`, mirroring wildcard
    behaviour in the policy language.
    """

    __slots__ = ("_fields", "_hash")

    def __init__(self, **fields: Any):
        normalised = {
            name: coerce_field_value(name, value)
            for name, value in fields.items()
            if value is not None
        }
        object.__setattr__(self, "_fields", normalised)
        object.__setattr__(self, "_hash", None)

    def __getitem__(self, name: str) -> Any:
        check_field(name)
        try:
            return self._fields[name]
        except KeyError:
            raise FieldError(f"packet has no value for field {name!r}") from None

    def get(self, name: str, default: Any = None) -> Any:
        """The field value, or ``default`` when the field is unset."""
        check_field(name)
        return self._fields.get(name, default)

    def __iter__(self) -> Iterator[str]:
        return iter(self._fields)

    def __len__(self) -> int:
        return len(self._fields)

    def __contains__(self, name: object) -> bool:
        return name in self._fields

    @property
    def port(self) -> Optional[int]:
        """The packet's current location (ingress port), if set."""
        return self._fields.get("port")

    def modify(self, **updates: Any) -> "Packet":
        """A copy of this packet with ``updates`` applied.

        Passing ``field=None`` removes the field.
        """
        fields = dict(self._fields)
        for name, value in updates.items():
            check_field(name)
            if value is None:
                fields.pop(name, None)
            else:
                fields[name] = coerce_field_value(name, value)
        clone = Packet()
        object.__setattr__(clone, "_fields", fields)
        return clone

    def at_port(self, port: int) -> "Packet":
        """A copy of this packet relocated to ``port``."""
        return self.modify(port=port)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Packet):
            return self._fields == other._fields
        return NotImplemented

    def __hash__(self) -> int:
        cached = self._hash
        if cached is None:
            cached = hash(frozenset(self._fields.items()))
            object.__setattr__(self, "_hash", cached)
        return cached

    def __repr__(self) -> str:
        inner = ", ".join(
            f"{name}={self._fields[name]!s}" for name in sorted(self._fields))
        return f"Packet({inner})"
