"""Tests for live RIB-tracking predicates (Section 3.2's dynamic
attribute grouping)."""

import pytest

from repro.bgp.asn import AsPath
from repro.core.dynamic import contains_dynamic, resolve_dynamic, rib_match
from repro.exceptions import PolicyError
from repro.net.addresses import IPv4Prefix
from repro.policy.policies import fwd, match

from tests.core.scenarios import figure1_controller, packet

YOUTUBE_ASN = 43515


def youtube_exchange():
    """A, B plus a content AS originating YouTube-like prefixes via B."""
    from repro.core.controller import SdxController
    sdx = SdxController()
    edge = sdx.add_participant("Edge", 64500)
    sdx.add_participant("Transit", 64501)
    sdx.add_participant("Transcoder", 64502)
    sdx.announce_route("Transit", IPv4Prefix("60.0.0.0/8"),
                       AsPath([64501, 3356, YOUTUBE_ASN]))
    sdx.announce_route("Transit", IPv4Prefix("61.0.0.0/8"),
                       AsPath([64501, 3356, 2906]))  # not YouTube
    sdx.announce_route("Transcoder", IPv4Prefix("60.0.0.0/8"),
                       AsPath([64502, 3356, YOUTUBE_ASN]))
    sdx.announce_route("Transcoder", IPv4Prefix("61.0.0.0/8"),
                       AsPath([64502, 3356, 2906]))
    return sdx, edge


class TestRibPrefixSet:
    def test_unresolved_eval_raises(self):
        predicate = rib_match("srcip", "as_path", r".*43515$")
        with pytest.raises(PolicyError):
            predicate.holds(packet("60.0.0.1"))
        with pytest.raises(PolicyError):
            predicate.compile()

    def test_rejects_non_ip_field(self):
        with pytest.raises(PolicyError):
            rib_match("dstport", "as_path", r".*43515$")

    def test_contains_and_resolve(self):
        predicate = match(dstport=80) & rib_match(
            "dstip", "as_path", r".*43515$")
        assert contains_dynamic(predicate)
        sdx, edge = youtube_exchange()
        resolved = resolve_dynamic(predicate, edge.rib)
        assert not contains_dynamic(resolved)
        assert resolved.holds(packet("60.0.0.1", dstport=80))
        assert not resolved.holds(packet("61.0.0.1", dstport=80))

    def test_static_predicate_passthrough(self):
        predicate = match(dstport=80)
        sdx, edge = youtube_exchange()
        assert resolve_dynamic(predicate, edge.rib) is predicate


class TestDynamicThroughSdx:
    def test_paper_youtube_redirection(self):
        """Section 3.2's example: traffic *to* YouTube-originated space
        detours through a transcoding middlebox, tracked via as-path."""
        sdx, edge = youtube_exchange()
        edge.add_outbound(
            rib_match("dstip", "as_path", rf".*{YOUTUBE_ASN}$")
            >> fwd("Transcoder"))
        sdx.start()
        assert sdx.egress_of("Edge", packet("60.0.0.1")) == "Transcoder"
        assert sdx.egress_of("Edge", packet("61.0.0.1")) == "Transit"

    def test_tracks_rib_across_churn(self):
        """A newly YouTube-originated prefix joins the redirection set on
        the next (background) recompilation — no policy change needed."""
        sdx, edge = youtube_exchange()
        edge.add_outbound(
            rib_match("dstip", "as_path", rf".*{YOUTUBE_ASN}$")
            >> fwd("Transcoder"))
        sdx.start()
        fresh = IPv4Prefix("62.0.0.0/8")
        sdx.announce_route("Transit", fresh, AsPath([64501, YOUTUBE_ASN]))
        sdx.announce_route("Transcoder", fresh, AsPath([64502, YOUTUBE_ASN]))
        sdx.run_background_recompilation()
        assert sdx.egress_of("Edge", packet("62.0.0.1")) == "Transcoder"

    def test_fast_path_resolves_dynamic(self):
        """The incremental path resolves the live set immediately."""
        sdx, edge = youtube_exchange()
        edge.add_outbound(
            rib_match("dstip", "as_path", rf".*{YOUTUBE_ASN}$")
            >> fwd("Transcoder"))
        sdx.start()
        fresh = IPv4Prefix("62.0.0.0/8")
        sdx.announce_route("Transcoder", fresh, AsPath([64502, YOUTUBE_ASN]))
        assert sdx.egress_of("Edge", packet("62.0.0.1")) == "Transcoder"

    def test_dynamic_inbound_not_cached(self):
        sdx, edge = youtube_exchange()
        transit = sdx.participant("Transit")
        transit.add_inbound(
            rib_match("srcip", "as_path", r".*2906$") >> fwd(transit.port(0)))
        sdx.start()
        assert "Transit" not in sdx.compiler._inbound_cache

    def test_config_round_trip(self):
        from repro.config import controller_from_config, export_config
        sdx, edge = youtube_exchange()
        edge.add_outbound(
            rib_match("dstip", "as_path", rf".*{YOUTUBE_ASN}$")
            >> fwd("Transcoder"))
        sdx.start()
        clone = controller_from_config(export_config(sdx))
        clone.start()
        assert clone.egress_of("Edge", packet("60.0.0.1")) == "Transcoder"
        assert clone.egress_of("Edge", packet("61.0.0.1")) == "Transit"

    def test_analysis_skips_dynamic_regions(self):
        from repro.core.analysis import find_clause_overlaps
        sdx, edge = youtube_exchange()
        edge.add_outbound(
            rib_match("dstip", "as_path", rf".*{YOUTUBE_ASN}$")
            >> fwd("Transcoder"))
        edge.add_outbound(match(dstport=80) >> fwd("Transit"))
        assert find_clause_overlaps(edge.participant) == []
