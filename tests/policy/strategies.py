"""Shared hypothesis strategies for random packets, predicates, policies.

The strategies keep the value universe deliberately small (a few ports,
addresses drawn from a handful of /8s) so that random packets actually hit
random matches often enough to exercise both branches everywhere.
"""

from hypothesis import strategies as st

from repro.net.addresses import IPv4Prefix
from repro.net.packet import Packet
from repro.policy.headerspace import HeaderSpace
from repro.policy.policies import (
    Conjunction,
    Disjunction,
    Match,
    Negation,
    drop,
    fwd,
    identity,
    modify,
)

small_ports = st.sampled_from([1, 2, 3, 4])
transport_ports = st.sampled_from([80, 443, 8080, 53])
ip_values = st.integers(min_value=0, max_value=0xFFFFFFFF)
prefix_lengths = st.sampled_from([0, 1, 4, 8, 16, 24, 32])
prefixes = st.builds(lambda n, l: IPv4Prefix(network=n, length=l), ip_values, prefix_lengths)

#: Addresses concentrated in two /8s so prefix matches hit frequently.
clustered_ips = st.one_of(
    st.integers(min_value=0x0A000000, max_value=0x0A0000FF),
    st.integers(min_value=0xC0000000, max_value=0xC00000FF),
    ip_values,
)

clustered_prefixes = st.one_of(
    st.sampled_from([
        IPv4Prefix("10.0.0.0/8"),
        IPv4Prefix("10.0.0.0/24"),
        IPv4Prefix("192.0.0.0/8"),
        IPv4Prefix("192.0.0.0/30"),
        IPv4Prefix("0.0.0.0/0"),
        IPv4Prefix("0.0.0.0/1"),
        IPv4Prefix("128.0.0.0/1"),
    ]),
    prefixes,
)


@st.composite
def packets(draw) -> Packet:
    """A random located packet over the small test universe."""
    fields = {"port": draw(small_ports)}
    if draw(st.booleans()):
        fields["dstport"] = draw(transport_ports)
    if draw(st.booleans()):
        fields["srcport"] = draw(transport_ports)
    if draw(st.booleans()):
        fields["srcip"] = draw(clustered_ips)
    if draw(st.booleans()):
        fields["dstip"] = draw(clustered_ips)
    if draw(st.booleans()):
        fields["protocol"] = draw(st.sampled_from([6, 17]))
    return Packet(**fields)


@st.composite
def header_spaces(draw) -> HeaderSpace:
    """A random conjunction of match constraints."""
    fields = {}
    if draw(st.booleans()):
        fields["port"] = draw(small_ports)
    if draw(st.booleans()):
        fields["dstport"] = draw(transport_ports)
    if draw(st.booleans()):
        fields["srcip"] = draw(clustered_prefixes)
    if draw(st.booleans()):
        fields["dstip"] = draw(clustered_prefixes)
    return HeaderSpace(**fields)


def predicates(max_depth: int = 3):
    """A random predicate tree of bounded depth."""
    leaves = st.one_of(
        st.just(identity),
        st.just(drop),
        st.builds(Match, header_spaces()),
    )
    return st.recursive(
        leaves,
        lambda inner: st.one_of(
            st.builds(lambda a, b: Conjunction((a, b)), inner, inner),
            st.builds(lambda a, b: Disjunction((a, b)), inner, inner),
            st.builds(Negation, inner),
        ),
        max_leaves=max_depth,
    )


@st.composite
def atomic_policies(draw):
    """A random leaf policy: filter, forward, modify, identity, or drop."""
    kind = draw(st.sampled_from(["match", "fwd", "mod", "id", "drop"]))
    if kind == "match":
        return Match(draw(header_spaces()))
    if kind == "fwd":
        return fwd(draw(small_ports))
    if kind == "mod":
        field = draw(st.sampled_from(["dstport", "dstip", "port"]))
        if field == "dstip":
            return modify(dstip=draw(clustered_ips))
        if field == "port":
            return modify(port=draw(small_ports))
        return modify(dstport=draw(transport_ports))
    if kind == "id":
        return identity
    return drop


def policies(max_depth: int = 3):
    """A random policy tree with ``+`` and ``>>`` composition."""
    return st.recursive(
        atomic_policies(),
        lambda inner: st.one_of(
            st.builds(lambda a, b: a + b, inner, inner),
            st.builds(lambda a, b: a >> b, inner, inner),
        ),
        max_leaves=max_depth,
    )
