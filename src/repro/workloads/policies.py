"""The Section 6.1 policy generator: eyeball / transit / content mixes.

From the paper: "the top 15% of eyeball ASes, the top 5% of transit
ASes, and a random set of 5% of content ASes install custom policies",
where

* **content providers** install outbound policies for three randomly
  chosen top eyeball networks, plus one inbound policy matching one
  header field;
* **eyeball networks** install inbound policies for half of the content
  providers, matching one randomly selected header field, and no
  outbound policies;
* **transit networks** install outbound policies for one prefix group
  for half of the top eyeball networks (destination prefix plus one
  header field) and inbound policies proportional to the number of top
  content providers.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core.controller import SdxController
from repro.net.addresses import IPv4Prefix
from repro.policy.policies import Policy, fwd, match
from repro.workloads.seeding import SeedLike, make_rng
from repro.workloads.topology import ParticipantSpec, SyntheticIxp

#: Single-field match options used by the generator (field, values).
_FIELD_CHOICES: Tuple[Tuple[str, Tuple[int, ...]], ...] = (
    ("dstport", (80, 443, 8080, 1935, 53)),
    ("srcport", (80, 443, 123, 53)),
    ("protocol", (6, 17)),
)

#: Fractions of each category that install custom policies (Section 6.1).
POLICY_FRACTIONS = {"eyeball": 0.15, "transit": 0.05, "content": 0.05}


@dataclass(frozen=True)
class PolicyAssignment:
    """One generated policy: who installs it, which direction, and why."""

    participant: str
    direction: str  # "in" or "out"
    policy: Policy
    description: str

    def install(self, controller: SdxController) -> None:
        """Install the policy on a controller hosting the participant."""
        install_assignments(controller, [self])


def _single_field_match(rng: random.Random):
    field, values = rng.choice(_FIELD_CHOICES)
    value = rng.choice(values)
    return match(**{field: value}), f"{field}={value}"


def _source_half_match(rng: random.Random):
    half = rng.choice(("0.0.0.0/1", "128.0.0.0/1"))
    return match(srcip=half), f"srcip={half}"


def _policy_installers(ixp: SyntheticIxp,
                       rng: random.Random) -> Tuple[List[ParticipantSpec], ...]:
    eyeballs = [p for p in ixp.participants if p.category == "eyeball"]
    transits = [p for p in ixp.participants if p.category == "transit"]
    contents = [p for p in ixp.participants if p.category == "content"]
    eyeballs.sort(key=lambda p: (-len(p.prefixes), p.name))
    transits.sort(key=lambda p: (-len(p.prefixes), p.name))
    top_eyeballs = eyeballs[:max(1, round(len(eyeballs) * POLICY_FRACTIONS["eyeball"]))]
    top_transits = transits[:max(1, round(len(transits) * POLICY_FRACTIONS["transit"]))]
    content_count = max(1, round(len(contents) * POLICY_FRACTIONS["content"]))
    chosen_content = rng.sample(contents, k=min(content_count, len(contents))) \
        if contents else []
    return top_eyeballs, top_transits, chosen_content


def generate_policies(ixp: SyntheticIxp, *, seed: SeedLike = 0,
                      prefix_sample: Optional[Sequence[IPv4Prefix]] = None
                      ) -> List[PolicyAssignment]:
    """The Section 6.1 policy mix for a synthetic IXP.

    ``prefix_sample``, when given, restricts transit destination-prefix
    policies to that set (the Figure 6 experiments sweep how many
    prefixes have policies applied). ``seed`` is an int or a
    :class:`random.Random`.
    """
    rng = make_rng(seed)
    top_eyeballs, top_transits, chosen_content = _policy_installers(ixp, rng)
    assignments: List[PolicyAssignment] = []

    # Content providers: 3 outbound toward top eyeballs + 1 inbound.
    for content in chosen_content:
        targets = rng.sample(top_eyeballs, k=min(3, len(top_eyeballs)))
        for target in targets:
            if target.name == content.name:
                continue
            predicate, label = _single_field_match(rng)
            assignments.append(PolicyAssignment(
                participant=content.name, direction="out",
                policy=predicate >> fwd(target.name),
                description=f"content {content.name}: {label} -> {target.name}"))
        predicate, label = _single_field_match(rng)
        assignments.append(PolicyAssignment(
            participant=content.name, direction="in",
            policy=predicate,
            description=f"content {content.name}: inbound {label}"))

    # Eyeballs: inbound policies for half of the content providers.
    for eyeball in top_eyeballs:
        count = max(1, len(chosen_content) // 2) if chosen_content else 1
        for _ in range(count):
            if rng.random() < 0.5:
                predicate, label = _source_half_match(rng)
            else:
                predicate, label = _single_field_match(rng)
            port_index = rng.randrange(eyeball.ports)
            assignments.append(PolicyAssignment(
                participant=eyeball.name, direction="in",
                policy=predicate >> _own_port_fwd(eyeball, port_index),
                description=f"eyeball {eyeball.name}: inbound {label} "
                            f"-> port {port_index}"))

    # Transit: outbound (prefix + field) for half the top eyeballs,
    # inbound proportional to content providers.
    eligible_prefixes = list(prefix_sample) if prefix_sample is not None else None
    for transit in top_transits:
        targets = top_eyeballs[:max(1, len(top_eyeballs) // 2)]
        for target in targets:
            if target.name == transit.name or not target.prefixes:
                continue
            pool = [p for p in target.prefixes
                    if eligible_prefixes is None or p in eligible_prefixes]
            if not pool:
                continue
            prefix = rng.choice(pool)
            predicate, label = _single_field_match(rng)
            assignments.append(PolicyAssignment(
                participant=transit.name, direction="out",
                policy=(match(dstip=prefix) & predicate) >> fwd(target.name),
                description=f"transit {transit.name}: {prefix} & {label} "
                            f"-> {target.name}"))
        for _ in range(max(1, len(chosen_content))):
            predicate, label = _single_field_match(rng)
            assignments.append(PolicyAssignment(
                participant=transit.name, direction="in",
                policy=predicate,
                description=f"transit {transit.name}: inbound {label}"))

    return assignments


#: Symbolic target prefix meaning "my own interface number N"; resolved
#: against real switch-port numbers when the policy is installed.
_SELF_PORT = "@self:"


def _own_port_fwd(spec: ParticipantSpec, port_index: int) -> Policy:
    """A forward to the installer's own interface ``port_index``.

    Emitted symbolically because concrete switch-port numbers exist only
    once the participant is attached to a controller.
    """
    return fwd(f"{_SELF_PORT}{port_index}")


def install_assignments(controller: SdxController,
                        assignments: Sequence[PolicyAssignment]) -> int:
    """Install generated assignments on a controller; returns the count.

    Symbolic own-port forwards are resolved against the controller's
    actual port numbering here.
    """
    installed = 0
    for assignment in assignments:
        handle = controller.participant(assignment.participant)
        policy = assignment.policy
        own_ports = handle.participant.switch_ports
        mapping = {
            f"{_SELF_PORT}{index}": handle.port(min(index, len(own_ports) - 1))
            for index in range(4)
        } if own_ports else {}
        policy = policy.substitute_ports(mapping)
        if assignment.direction == "out":
            handle.participant.add_outbound(policy)
        else:
            handle.participant.add_inbound(policy)
        installed += 1
    return installed
