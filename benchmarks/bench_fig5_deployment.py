"""Figures 5a & 5b — the deployment ("in the wild") experiments.

Replays both Section 5.2 timelines through the simulated fabric at 10x
compression and asserts the published traffic shapes:

* 5a — three 1 Mbps flows from the client ISP all ride AS A; at the
  policy event, the port-80 flow shifts to AS B; at the route
  withdrawal, everything returns to AS A.
* 5b — both client flows hit AWS instance #1 until the remote tenant
  installs the load-balance policy, after which one flow is rewritten
  to instance #2.
"""

from conftest import publish, publish_json

from repro.experiments.harness import run_fig5a, run_fig5b
from repro.experiments.metrics import render_series

TIME_SCALE = 0.1


def test_fig5a_application_specific_peering(benchmark):
    series, events = benchmark.pedantic(
        run_fig5a, kwargs={"time_scale": TIME_SCALE}, rounds=1, iterations=1)
    text = "\n".join(f"t={when:.0f}s: {label}" for when, label in events)
    text += "\n\n" + render_series(
        [series[label] for label in sorted(series)],
        "time(s)", "Mbps", max_rows=20)
    publish("fig5a_app_peering", text)
    publish_json("fig5a_app_peering", {
        "time_scale": TIME_SCALE,
        "events": [{"time_seconds": when, "label": label}
                   for when, label in events],
        "series": {label: [[x, y] for x, y in series[label].points]
                   for label in sorted(series)},
    })

    a_ys, b_ys = series["A"].ys(), series["B"].ys()
    steps = len(a_ys)
    policy_step = int(steps * 565 / 1800) + 1
    withdraw_step = int(steps * 1253 / 1800) + 1
    # Before the policy: all three flows via A.
    assert a_ys[policy_step - 2] == 3.0 and b_ys[policy_step - 2] == 0.0
    # Between policy and withdrawal: port-80 flow via B.
    assert a_ys[withdraw_step - 2] == 2.0 and b_ys[withdraw_step - 2] == 1.0
    # After the withdrawal: back to A, nothing dropped.
    assert a_ys[-1] == 3.0 and b_ys[-1] == 0.0
    assert "dropped" not in series


def test_fig5b_wide_area_load_balance(benchmark):
    series, events = benchmark.pedantic(
        run_fig5b, kwargs={"time_scale": TIME_SCALE}, rounds=1, iterations=1)
    text = "\n".join(f"t={when:.0f}s: {label}" for when, label in events)
    text += "\n\n" + render_series(
        [series[label] for label in sorted(series)],
        "time(s)", "Mbps", max_rows=20)
    publish("fig5b_load_balance", text)
    publish_json("fig5b_load_balance", {
        "time_scale": TIME_SCALE,
        "events": [{"time_seconds": when, "label": label}
                   for when, label in events],
        "series": {label: [[x, y] for x, y in series[label].points]
                   for label in sorted(series)},
    })

    one, two = series["AWS instance #1"].ys(), series["AWS instance #2"].ys()
    steps = len(one)
    policy_step = int(steps * 246 / 600) + 1
    # Before the policy: both flows to instance #1.
    assert one[policy_step - 2] == 2.0 and two[policy_step - 2] == 0.0
    # After: balanced 1/1.
    assert one[-1] == 1.0 and two[-1] == 1.0
    assert "dropped" not in series
