"""Participants: the ASes connected to (or remotely using) the SDX.

A participant bundles identity (name, ASN), physical attachment (router
ports with their switch-port numbers), and the inbound/outbound policies
it has installed. Policies are validated and normalised to clause form
(:mod:`repro.core.clauses`) at installation time, so misuse fails at the
API boundary with a clear error instead of deep inside the compiler.

Remote participants (Section 3.2, wide-area load balancing) have no
physical ports: they exist only as a virtual switch plus policies, and
may originate prefixes through the SDX.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.core.clauses import Clause, normalize_policy
from repro.dataplane.router import BorderRouter, RouterPort
from repro.exceptions import ParticipantError, PolicyError
from repro.net.addresses import IPv4Prefix
from repro.policy.policies import Policy

#: Fields participants may never match on or rewrite: the SDX owns the
#: MAC tag space, and locations change only via fwd().
RESERVED_FIELDS = frozenset({"dstmac", "srcmac", "port"})


def _predicate_fields(predicate) -> frozenset:
    """Every header field a predicate tree constrains."""
    from repro.core.dynamic import RibPrefixSet
    from repro.policy.policies import Match
    from repro.policy.predicates import MatchAnyPrefix, MatchAnyValue

    fields: set = set()
    stack = [predicate]
    while stack:
        node = stack.pop()
        if isinstance(node, Match):
            fields.update(node.space)
        elif isinstance(node, (MatchAnyPrefix, MatchAnyValue, RibPrefixSet)):
            fields.add(node.field)
        stack.extend(node.children())
    return frozenset(fields)


@dataclass
class Participant:
    """One AS at (or remotely using) the exchange."""

    name: str
    asn: int
    router: Optional[BorderRouter] = None
    local_prefixes: Tuple[IPv4Prefix, ...] = ()
    _outbound: List[Policy] = field(default_factory=list)
    _inbound: List[Policy] = field(default_factory=list)
    policy_generation: int = 0
    _clause_cache: dict = field(default_factory=dict)
    policies_suspended: bool = False

    @property
    def is_remote(self) -> bool:
        """True if the participant has no physical presence at the IXP."""
        return self.router is None

    @property
    def ports(self) -> List[RouterPort]:
        """The participant's router interfaces (empty when remote)."""
        return [] if self.router is None else self.router.ports

    @property
    def switch_ports(self) -> Tuple[int, ...]:
        """Switch ports of the participant's interfaces, in order."""
        return tuple(
            port.switch_port for port in self.ports if port.switch_port is not None)

    def port(self, index: int = 0) -> int:
        """The switch-port number of interface ``index``.

        This is what inbound policies pass to ``fwd`` — e.g. B's inbound
        traffic engineering uses ``fwd(b.port(0))`` and ``fwd(b.port(1))``
        for the paper's B1/B2.
        """
        ports = self.switch_ports
        if not ports:
            raise ParticipantError(f"participant {self.name!r} has no physical ports")
        if not 0 <= index < len(ports):
            raise ParticipantError(
                f"participant {self.name!r} has no port index {index}")
        return ports[index]

    @property
    def main_port(self) -> int:
        """The default delivery port for inbound traffic."""
        return self.port(0)

    # ------------------------------------------------------------------
    # Policy validation
    # ------------------------------------------------------------------

    def _validate_clauses(self, clauses: List[Clause], *, inbound: bool) -> None:
        for clause in clauses:
            matched_reserved = _predicate_fields(clause.predicate) & RESERVED_FIELDS
            if matched_reserved:
                raise PolicyError(
                    f"policy of {self.name!r} matches reserved field(s) "
                    f"{sorted(matched_reserved)}; the SDX manages ports and "
                    f"MAC tags itself")
            reserved = {name for name, _value in clause.modifications} & RESERVED_FIELDS
            if reserved:
                raise PolicyError(
                    f"policy of {self.name!r} modifies reserved field(s) "
                    f"{sorted(reserved)}; use fwd() for forwarding")
            target = clause.target
            if not inbound:
                if clause.drops:
                    continue
                if target is None:
                    raise PolicyError(
                        f"outbound clause of {self.name!r} has no fwd(): "
                        f"{clause.describe()}")
                if isinstance(target, int):
                    raise PolicyError(
                        f"outbound policy of {self.name!r} must name a "
                        f"participant (fwd('B')), not a raw port ({target})")
                if target == self.name:
                    raise PolicyError(
                        f"outbound policy of {self.name!r} forwards to itself")
                continue
            # Inbound.
            if clause.drops:
                continue
            if self.is_remote:
                if target is None:
                    raise PolicyError(
                        f"remote participant {self.name!r} has no ports; every "
                        f"inbound clause must end in fwd('<participant>'): "
                        f"{clause.describe()}")
                if isinstance(target, int):
                    raise PolicyError(
                        f"remote participant {self.name!r} cannot forward to a "
                        f"raw port ({target}); name a participant instead")
                if target == self.name:
                    raise PolicyError(
                        f"remote participant {self.name!r} forwards to itself")
            else:
                if isinstance(target, str):
                    raise PolicyError(
                        f"inbound policy of {self.name!r} must forward to its "
                        f"own ports (e.g. fwd(participant.port(1))), not to "
                        f"participant {target!r}")
                if target is not None and target not in self.switch_ports:
                    raise PolicyError(
                        f"inbound policy of {self.name!r} forwards to switch "
                        f"port {target}, which is not one of its own ports")

    def validate_policy(self, policy: Policy, *, inbound: bool) -> List[Clause]:
        """Validate a policy without installing it; returns its clauses.

        Raises exactly what :meth:`add_outbound`/:meth:`add_inbound`
        would — the basis for what-if previews.
        """
        if not inbound and self.is_remote:
            raise PolicyError(
                f"remote participant {self.name!r} cannot have outbound policies")
        clauses = normalize_policy(policy)
        self._validate_clauses(clauses, inbound=inbound)
        return clauses

    # ------------------------------------------------------------------
    # Policy storage
    # ------------------------------------------------------------------

    def add_outbound(self, policy: Policy) -> None:
        """Install an outbound policy (applies to traffic this AS sends)."""
        if self.is_remote:
            raise PolicyError(
                f"remote participant {self.name!r} cannot have outbound policies")
        self._validate_clauses(normalize_policy(policy), inbound=False)
        self._outbound.append(policy)
        self.policy_generation += 1

    def add_inbound(self, policy: Policy) -> None:
        """Install an inbound policy (applies to traffic sent to this AS)."""
        self._validate_clauses(normalize_policy(policy), inbound=True)
        self._inbound.append(policy)
        self.policy_generation += 1

    def clear_policies(self) -> None:
        """Remove every installed policy."""
        if self._outbound or self._inbound:
            self._outbound.clear()
            self._inbound.clear()
            self.policy_generation += 1

    def remove_outbound(self, policy: Policy) -> None:
        """Remove one previously installed outbound policy."""
        try:
            self._outbound.remove(policy)
        except ValueError:
            raise PolicyError(
                f"policy not installed for participant {self.name!r}") from None
        self.policy_generation += 1

    def remove_inbound(self, policy: Policy) -> None:
        """Remove one previously installed inbound policy."""
        try:
            self._inbound.remove(policy)
        except ValueError:
            raise PolicyError(
                f"policy not installed for participant {self.name!r}") from None
        self.policy_generation += 1

    @property
    def outbound_policies(self) -> Tuple[Policy, ...]:
        """Installed outbound policies, oldest first."""
        return tuple(self._outbound)

    @property
    def inbound_policies(self) -> Tuple[Policy, ...]:
        """Installed inbound policies, oldest first."""
        return tuple(self._inbound)

    def set_policies_suspended(self, suspended: bool) -> bool:
        """Temporarily mask (or unmask) the participant's policies.

        While suspended, :meth:`outbound_clauses` and
        :meth:`inbound_clauses` return nothing, so the compiler treats
        the participant as policy-free (default BGP forwarding) without
        forgetting the installed policies. The runtime's degrade mode
        (:class:`~repro.runtime.events.OverloadPolicy`) flips this under
        sustained overload and flips it back once the queue drains.
        Returns True if the state actually changed; the policy
        generation is bumped so memoized compilations are invalidated.
        """
        if self.policies_suspended == suspended:
            return False
        self.policies_suspended = suspended
        self.policy_generation += 1
        return True

    def outbound_clauses(self) -> Tuple[Clause, ...]:
        """The normalised outbound clauses, priority order (cached).

        Empty while policies are suspended (degrade mode)."""
        if self.policies_suspended:
            return ()
        return self._clauses("out", self._outbound)

    def inbound_clauses(self) -> Tuple[Clause, ...]:
        """The normalised inbound clauses, priority order (cached).

        Empty while policies are suspended (degrade mode)."""
        if self.policies_suspended:
            return ()
        return self._clauses("in", self._inbound)

    def _clauses(self, kind: str, policies: List[Policy]) -> Tuple[Clause, ...]:
        cached = self._clause_cache.get(kind)
        if cached is not None and cached[0] == self.policy_generation:
            return cached[1]
        clauses = tuple(
            clause for policy in policies for clause in normalize_policy(policy))
        self._clause_cache[kind] = (self.policy_generation, clauses)
        return clauses

    @property
    def has_policies(self) -> bool:
        """True if any policy is installed."""
        return bool(self._outbound or self._inbound)

    def outbound_targets(self) -> Tuple[str, ...]:
        """Participant names this AS forwards to in its outbound policies.

        Drives the Section 4.3 optimisation of only composing policies
        between participants that actually exchange traffic.
        """
        names = {
            clause.target for clause in self.outbound_clauses()
            if isinstance(clause.target, str)
        }
        return tuple(sorted(names))

    def __repr__(self) -> str:
        kind = "remote" if self.is_remote else f"{len(self.ports)} ports"
        return (f"Participant({self.name!r}, AS{self.asn}, {kind}, "
                f"{len(self._outbound)} out / {len(self._inbound)} in policies)")
