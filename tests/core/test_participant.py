"""Tests for the participant model and its policy validation."""

import pytest

from repro.core.participant import Participant
from repro.dataplane.router import BorderRouter, RouterPort
from repro.exceptions import ParticipantError, PolicyError
from repro.net.addresses import IPv4Address, IPv4Prefix
from repro.net.mac import MacAddress
from repro.policy.policies import drop, fwd, match, modify


def physical(name="A", asn=65001, ports=(1,)):
    router = BorderRouter(name, asn, [
        RouterPort(mac=MacAddress(0x020000000000 + p),
                   ip=IPv4Address("172.0.0.1") + p, switch_port=p)
        for p in ports])
    return Participant(name=name, asn=asn, router=router)


def remote(name="D", asn=65099):
    return Participant(name=name, asn=asn)


class TestPorts:
    def test_switch_ports(self):
        participant = physical(ports=(4, 7))
        assert participant.switch_ports == (4, 7)
        assert participant.port(1) == 7
        assert participant.main_port == 4

    def test_remote_has_no_ports(self):
        participant = remote()
        assert participant.is_remote
        assert participant.switch_ports == ()
        with pytest.raises(ParticipantError):
            participant.port(0)

    def test_bad_port_index(self):
        with pytest.raises(ParticipantError):
            physical().port(3)


class TestOutboundValidation:
    def test_valid_policy_accepted(self):
        participant = physical()
        participant.add_outbound(match(dstport=80) >> fwd("B"))
        assert participant.has_policies
        assert participant.outbound_targets() == ("B",)

    def test_remote_cannot_have_outbound(self):
        with pytest.raises(PolicyError):
            remote().add_outbound(match(dstport=80) >> fwd("B"))

    def test_outbound_needs_fwd(self):
        with pytest.raises(PolicyError):
            physical().add_outbound(match(dstport=80))

    def test_outbound_raw_port_rejected(self):
        with pytest.raises(PolicyError):
            physical().add_outbound(match(dstport=80) >> fwd(3))

    def test_outbound_self_forward_rejected(self):
        with pytest.raises(PolicyError):
            physical("A").add_outbound(match(dstport=80) >> fwd("A"))

    def test_outbound_drop_clause_ok(self):
        participant = physical()
        participant.add_outbound(match(srcip="6.6.6.0/24") >> drop)
        assert participant.outbound_clauses()[0].drops

    def test_nonreserved_modify_accepted(self):
        participant = physical()
        participant.add_outbound(
            match(dstport=80) >> modify(dstport=81) >> fwd("B"))
        assert dict(participant.outbound_clauses()[0].modifications) == {"dstport": 81}

    def test_reserved_modify_rejected(self):
        with pytest.raises(PolicyError):
            physical().add_outbound(
                match(dstport=80) >> modify(dstmac="00:11:22:33:44:55") >> fwd("B"))

    def test_reserved_match_rejected(self):
        with pytest.raises(PolicyError):
            physical().add_outbound(match(dstmac="00:11:22:33:44:55") >> fwd("B"))
        with pytest.raises(PolicyError):
            physical().add_outbound(match(port=1) >> fwd("B"))


class TestInboundValidation:
    def test_inbound_to_own_port(self):
        participant = physical(ports=(4, 7))
        participant.add_inbound(match(srcip="0.0.0.0/1") >> fwd(7))
        assert participant.inbound_clauses()[0].target == 7

    def test_inbound_to_foreign_port_rejected(self):
        with pytest.raises(PolicyError):
            physical(ports=(4,)).add_inbound(match(srcip="0.0.0.0/1") >> fwd(9))

    def test_physical_inbound_symbolic_rejected(self):
        with pytest.raises(PolicyError):
            physical().add_inbound(match(dstport=80) >> fwd("B"))

    def test_inbound_modify_only_ok(self):
        participant = physical()
        participant.add_inbound(match(dstip="74.125.1.1") >> modify(dstip="10.0.0.9"))
        clause = participant.inbound_clauses()[0]
        assert clause.target is None
        assert clause.modifications

    def test_remote_inbound_needs_symbolic_fwd(self):
        participant = remote()
        participant.add_inbound(match(dstip="74.125.1.1") >> fwd("B"))
        with pytest.raises(PolicyError):
            remote().add_inbound(match(dstip="74.125.1.1") >> modify(dstip="1.2.3.4"))
        with pytest.raises(PolicyError):
            remote().add_inbound(match(dstport=80) >> fwd(3))
        with pytest.raises(PolicyError):
            remote("D").add_inbound(match(dstport=80) >> fwd("D"))


class TestPolicyLifecycle:
    def test_generation_bumps(self):
        participant = physical()
        start = participant.policy_generation
        policy = match(dstport=80) >> fwd("B")
        participant.add_outbound(policy)
        participant.remove_outbound(policy)
        assert participant.policy_generation == start + 2

    def test_remove_unknown_policy_rejected(self):
        with pytest.raises(PolicyError):
            physical().remove_outbound(match(dstport=80) >> fwd("B"))
        with pytest.raises(PolicyError):
            physical().remove_inbound(match(dstport=80) >> fwd(1))

    def test_clear_policies(self):
        participant = physical()
        participant.add_outbound(match(dstport=80) >> fwd("B"))
        participant.clear_policies()
        assert not participant.has_policies
        generation = participant.policy_generation
        participant.clear_policies()  # no-op, no bump
        assert participant.policy_generation == generation

    def test_clause_cache_invalidation(self):
        participant = physical()
        participant.add_outbound(match(dstport=80) >> fwd("B"))
        assert len(participant.outbound_clauses()) == 1
        participant.add_outbound(match(dstport=443) >> fwd("C"))
        assert len(participant.outbound_clauses()) == 2
        assert participant.outbound_targets() == ("B", "C")

    def test_inbound_clauses_cached_separately(self):
        participant = physical(ports=(4, 7))
        participant.add_outbound(match(dstport=80) >> fwd("B"))
        participant.add_inbound(match(srcip="0.0.0.0/1") >> fwd(7))
        assert len(participant.outbound_clauses()) == 1
        assert len(participant.inbound_clauses()) == 1
