"""Small measurement containers: CDFs and labelled series."""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence, Tuple


class Cdf:
    """An empirical cumulative distribution over float samples."""

    def __init__(self, samples: Iterable[float]):
        self._sorted = sorted(samples)
        if not self._sorted:
            raise ValueError("a CDF needs at least one sample")

    @property
    def samples(self) -> List[float]:
        """The samples, ascending."""
        return list(self._sorted)

    def __len__(self) -> int:
        return len(self._sorted)

    def fraction_below(self, value: float) -> float:
        """P(X <= value)."""
        return bisect.bisect_right(self._sorted, value) / len(self._sorted)

    def quantile(self, q: float) -> float:
        """The q-quantile (0 <= q <= 1), by nearest-rank.

        The endpoints are exact: ``q=0.0`` is the minimum and ``q=1.0``
        the maximum, independent of sample count — the nearest-rank
        rounding below is never trusted with them.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if q == 0.0:
            return self._sorted[0]
        if q == 1.0:
            return self._sorted[-1]
        rank = max(0, min(len(self._sorted) - 1,
                          int(q * len(self._sorted) + 0.5) - 1))
        return self._sorted[rank]

    @property
    def median(self) -> float:
        """The 50th percentile."""
        return self.quantile(0.5)

    def points(self, count: int = 50) -> List[Tuple[float, float]]:
        """(value, cumulative fraction) pairs for plotting/printing."""
        step = max(1, len(self._sorted) // count)
        out = []
        for index in range(0, len(self._sorted), step):
            value = self._sorted[index]
            out.append((value, (index + 1) / len(self._sorted)))
        if out[-1][0] != self._sorted[-1]:
            out.append((self._sorted[-1], 1.0))
        return out


@dataclass
class Series:
    """One labelled line of (x, y) points, as the figures plot them."""

    label: str
    points: List[Tuple[float, float]] = field(default_factory=list)

    def add(self, x: float, y: float) -> None:
        """Append a point."""
        self.points.append((x, y))

    def xs(self) -> List[float]:
        """The x coordinates in order."""
        return [x for x, _y in self.points]

    def ys(self) -> List[float]:
        """The y coordinates in order."""
        return [y for _x, y in self.points]


def render_table(headers: Sequence[str],
                 rows: Sequence[Sequence[object]]) -> str:
    """A plain-text table (what the benchmark harness prints)."""
    cells = [[str(value) for value in row] for row in rows]
    widths = [
        max(len(headers[col]), *(len(row[col]) for row in cells)) if cells
        else len(headers[col])
        for col in range(len(headers))
    ]
    def fmt(row):
        return "  ".join(value.rjust(widths[col]) for col, value in enumerate(row))
    lines = [fmt(headers), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in cells)
    return "\n".join(lines)


def render_chart(series_list: Sequence["Series"], *, width: int = 60,
                 height: int = 16, x_label: str = "x",
                 y_label: str = "y") -> str:
    """An ASCII scatter chart of several series, one marker per series.

    Rough but genuinely useful for eyeballing the evaluation shapes in a
    terminal — the benchmark harness appends one below each table.
    """
    markers = "ox+*#@%&"
    points = [(x, y) for series in series_list for x, y in series.points]
    if not points:
        return "(no data)"
    xs = [x for x, _y in points]
    ys = [y for _x, y in points]
    x_low, x_high = min(xs), max(xs)
    y_low, y_high = min(ys), max(ys)
    x_span = (x_high - x_low) or 1.0
    y_span = (y_high - y_low) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for index, series in enumerate(series_list):
        marker = markers[index % len(markers)]
        for x, y in series.points:
            column = int((x - x_low) / x_span * (width - 1))
            row = height - 1 - int((y - y_low) / y_span * (height - 1))
            grid[row][column] = marker
    lines = [f"{y_label} [{y_low:g} .. {y_high:g}]"]
    lines.extend("|" + "".join(row) for row in grid)
    lines.append("+" + "-" * width)
    lines.append(f" {x_label} [{x_low:g} .. {x_high:g}]")
    legend = "  ".join(
        f"{markers[index % len(markers)]}={series.label}"
        for index, series in enumerate(series_list))
    lines.append(" " + legend)
    return "\n".join(lines)


def render_series(series_list: Sequence[Series], x_label: str, y_label: str,
                  max_rows: int = 0) -> str:
    """Print several series as aligned columns, one block per series.

    ``max_rows`` > 0 downsamples long series evenly (always keeping the
    first and last point) so timelines stay readable.
    """
    blocks = []
    for series in series_list:
        points = series.points
        if max_rows and len(points) > max_rows:
            step = (len(points) - 1) / (max_rows - 1)
            indices = sorted({round(i * step) for i in range(max_rows)})
            points = [points[index] for index in indices]
        rows = [(f"{x:g}", f"{y:g}") for x, y in points]
        blocks.append(series.label + "\n" + render_table(
            [x_label, y_label], rows))
    return "\n\n".join(blocks)
