"""The southbound flow-update engine (controller → switch).

The compiler and the incremental engine produce *desired* rule tables;
a real switch wants a stream of FlowMod messages. This subpackage is the
layer between the two — what the paper's prototype delegated to Pyretic's
OpenFlow runtime, rebuilt here so update cost is measurable and bounded:

* :mod:`repro.southbound.diff` — the minimal delta (adds / modifies /
  deletes, keyed by match + priority) between an installed rule set and a
  freshly compiled classifier;
* :mod:`repro.southbound.queue` — an update queue that coalesces
  back-to-back mods for the same rule key, batches FlowMods, and applies
  backpressure under bursts;
* :mod:`repro.southbound.engine` — the priority-safe two-phase scheduler
  (install adds/modifies before deletes) guaranteeing every intermediate
  table state forwards each packet the old way or the new way, never into
  a transient hole;
* :mod:`repro.southbound.stats` — per-batch counters and latency
  histograms, rendered through :mod:`repro.experiments.metrics`.
"""

from repro.southbound.diff import (
    Delta,
    FlowMod,
    FlowModOp,
    PRIORITY_CEILING,
    PRIORITY_STRIDE,
    align_flow_rules,
    compute_delta,
    diff_classifier,
    rule_key,
)
from repro.southbound.engine import SouthboundConfig, SouthboundEngine, schedule_two_phase
from repro.southbound.queue import UpdateQueue
from repro.southbound.stats import SouthboundStats

__all__ = [
    "Delta",
    "FlowMod",
    "FlowModOp",
    "PRIORITY_CEILING",
    "PRIORITY_STRIDE",
    "SouthboundConfig",
    "SouthboundEngine",
    "SouthboundStats",
    "UpdateQueue",
    "align_flow_rules",
    "compute_delta",
    "diff_classifier",
    "rule_key",
    "schedule_two_phase",
]
