"""A Pyretic-like policy language with classifier compilation.

The SDX paper expresses participant policies in Pyretic (Monsanto et al.,
NSDI 2013): boolean predicates over packet header fields combined with a
small set of actions, composed in parallel (``+``) and in sequence (``>>``).
This subpackage is a from-scratch implementation of the fragment the SDX
needs, with the same surface syntax used throughout the paper::

    from repro.policy import match, fwd, modify

    policy = (match(dstport=80) >> fwd("B")) + (match(dstport=443) >> fwd("C"))

Policies have two interchangeable semantics:

* **Interpretation** — :meth:`Policy.eval` maps a located packet to a set
  of located packets (Pyretic's denotational semantics). Used by tests and
  by the flow-level traffic simulator.
* **Compilation** — :meth:`Policy.compile` produces a
  :class:`~repro.policy.classifier.Classifier`: a prioritized rule table
  equivalent to the policy, ready to install on an OpenFlow-style switch.

Property-based tests assert the two semantics agree on random packets.
"""

from repro.policy.headerspace import HeaderSpace
from repro.policy.predicates import (
    FalsePredicate,
    MatchPredicate,
    Predicate,
    TruePredicate,
    match,
)
from repro.policy.policies import (
    Drop,
    Forward,
    Modify,
    Parallel,
    Policy,
    Sequential,
    drop,
    fwd,
    identity,
    if_,
    modify,
)
from repro.policy.classifier import Action, Classifier, Rule
from repro.policy.flowrules import FlowRule, render_flow_table, to_flow_rules

__all__ = [
    "Action",
    "Classifier",
    "Drop",
    "FalsePredicate",
    "FlowRule",
    "Forward",
    "HeaderSpace",
    "MatchPredicate",
    "Modify",
    "Parallel",
    "Policy",
    "Predicate",
    "Rule",
    "Sequential",
    "TruePredicate",
    "drop",
    "fwd",
    "identity",
    "if_",
    "match",
    "modify",
    "render_flow_table",
    "to_flow_rules",
]
