"""A priority flow table with OpenFlow-like first-match semantics.

Rules are kept sorted by descending priority (insertion order breaks
ties, matching OpenFlow's undefined-but-stable behaviour in practice).
Per-rule packet counters support the rule-utilisation measurements in the
benchmark harness.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.net.packet import Packet
from repro.policy.classifier import Classifier
from repro.policy.flowrules import FlowRule, render_flow_table, to_flow_rules


class FlowTable:
    """An installed set of flow rules plus match counters."""

    def __init__(self) -> None:
        self._rules: List[FlowRule] = []
        self._counters: Dict[int, int] = {}
        self._generation = 0

    def install(self, rule: FlowRule) -> None:
        """Add one rule, keeping priority order."""
        index = 0
        while index < len(self._rules) and self._rules[index].priority >= rule.priority:
            index += 1
        self._rules.insert(index, rule)
        self._counters[id(rule)] = 0
        self._generation += 1

    def install_many(self, rules: Iterable[FlowRule]) -> int:
        """Install several rules; returns how many were added."""
        count = 0
        for rule in rules:
            self.install(rule)
            count += 1
        return count

    def install_classifier(self, classifier: Classifier,
                           base_priority: int = 0) -> int:
        """Install a compiled classifier at ``base_priority``."""
        return self.install_many(to_flow_rules(classifier, base_priority))

    def remove_where(self, predicate) -> int:
        """Remove every rule for which ``predicate(rule)`` is true."""
        keep = [rule for rule in self._rules if not predicate(rule)]
        removed = len(self._rules) - len(keep)
        if removed:
            removed_ids = {id(rule) for rule in self._rules} - {id(rule) for rule in keep}
            for rule_id in removed_ids:
                self._counters.pop(rule_id, None)
            self._rules = keep
            self._generation += 1
        return removed

    def clear(self) -> None:
        """Remove every rule."""
        self._rules.clear()
        self._counters.clear()
        self._generation += 1

    def replace_with(self, classifier: Classifier, base_priority: int = 0) -> int:
        """Atomically swap the whole table for a compiled classifier."""
        self.clear()
        return self.install_classifier(classifier, base_priority)

    @property
    def rules(self) -> Tuple[FlowRule, ...]:
        """Installed rules, highest priority first."""
        return tuple(self._rules)

    def __len__(self) -> int:
        return len(self._rules)

    @property
    def generation(self) -> int:
        """Bumped on every table mutation (used to detect staleness)."""
        return self._generation

    def lookup(self, packet: Packet) -> Optional[FlowRule]:
        """The highest-priority rule matching ``packet``, if any."""
        for rule in self._rules:
            if rule.match.matches(packet):
                return rule
        return None

    def process(self, packet: Packet) -> Tuple[Packet, ...]:
        """Apply the table to ``packet``; empty tuple means dropped.

        A table miss also drops (OpenFlow default for SDX: the controller
        installs explicit defaults, so misses indicate unmatched traffic).
        """
        rule = self.lookup(packet)
        if rule is None:
            return ()
        self._counters[id(rule)] += 1
        return tuple(action.apply(packet) for action in rule.actions)

    def packets_matched(self, rule: FlowRule) -> int:
        """How many packets have hit ``rule`` since installation."""
        return self._counters.get(id(rule), 0)

    def render(self) -> str:
        """The table as ``ovs-ofctl``-style text."""
        return render_flow_table(self._rules)

    def __repr__(self) -> str:
        return f"FlowTable({len(self._rules)} rules)"
