"""Policy-interaction analysis: overlap detection and coverage reports.

The SDX "resolv[es] conflicts that arise between participants" by
construction — isolation makes different participants' policies disjoint,
and one participant's overlapping clauses resolve by priority. This
module gives operators *visibility* into those resolutions before they
bite:

* :func:`find_clause_overlaps` — pairs of one participant's clauses that
  can match the same packet, with a concrete witness packet and which
  clause wins;
* :func:`analyze_sdx` — an exchange-wide report: per-participant clause
  counts, overlaps, forwarding targets, and eligible-prefix coverage per
  outbound target.

Detection is sound for the clause fragment (conjunctive predicates and
prefix/value sets); predicates containing negation are flagged as
*possible* overlaps (the match regions are over-approximated by their
positive parts).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.clauses import Clause
from repro.core.participant import Participant
from repro.net.packet import Packet
from repro.policy.classifier import Classifier
from repro.policy.headerspace import HeaderSpace
from repro.policy.policies import Negation, Policy, Predicate


def _contains_negation(predicate: Predicate) -> bool:
    stack: List[Policy] = [predicate]
    while stack:
        node = stack.pop()
        if isinstance(node, Negation):
            return True
        stack.extend(node.children())
    return False


def _positive_regions(predicate: Predicate) -> List[HeaderSpace]:
    """The identity-rule matches of the compiled filter (its match set,
    over-approximated when the predicate contains negation masks)."""
    classifier = predicate.compile()
    return [rule.match for rule in classifier.rules if rule.is_identity]


@dataclass(frozen=True)
class ClauseOverlap:
    """Two clauses of one participant that can match the same packet."""

    participant: str
    direction: str
    winner_index: int
    loser_index: int
    witness: Packet
    exact: bool

    def describe(self) -> str:
        """A one-line operator-facing description."""
        certainty = "overlap" if self.exact else "possible overlap"
        return (f"{self.participant} ({self.direction}): clause "
                f"#{self.winner_index} shadows #{self.loser_index} "
                f"({certainty}; e.g. {self.witness!r})")


def find_clause_overlaps(participant: Participant,
                         direction: str = "out") -> List[ClauseOverlap]:
    """Overlapping clause pairs within one participant's policy list.

    ``direction`` is ``"out"`` or ``"in"``. The earlier (winning) clause
    is reported first in each pair.
    """
    if direction == "out":
        clauses: Sequence[Clause] = participant.outbound_clauses()
    elif direction == "in":
        clauses = participant.inbound_clauses()
    else:
        raise ValueError(f"direction must be 'in' or 'out', got {direction!r}")
    from repro.core.dynamic import contains_dynamic

    # Dynamic RIB predicates have no static match region; they are
    # excluded from overlap analysis (empty region = never reported).
    regions = [
        [] if contains_dynamic(clause.predicate)
        else _positive_regions(clause.predicate)
        for clause in clauses
    ]
    negated = [_contains_negation(clause.predicate) for clause in clauses]
    overlaps: List[ClauseOverlap] = []
    for first in range(len(clauses)):
        for second in range(first + 1, len(clauses)):
            witness_space = _first_intersection(regions[first], regions[second])
            if witness_space is None:
                continue
            witness = witness_space.concretise(port=0)
            exact = not (negated[first] or negated[second])
            if exact and not (clauses[first].predicate.holds(witness)
                              and clauses[second].predicate.holds(witness)):
                continue
            overlaps.append(ClauseOverlap(
                participant=participant.name, direction=direction,
                winner_index=first, loser_index=second,
                witness=witness, exact=exact))
    return overlaps


def _first_intersection(left: Sequence[HeaderSpace],
                        right: Sequence[HeaderSpace]) -> Optional[HeaderSpace]:
    for space_l in left:
        for space_r in right:
            merged = space_l.intersect(space_r)
            if merged is not None:
                return merged
    return None


@dataclass
class ParticipantReport:
    """One participant's policy summary."""

    name: str
    outbound_clauses: int
    inbound_clauses: int
    targets: Tuple[str, ...]
    overlaps: List[ClauseOverlap] = field(default_factory=list)
    eligible_prefixes: Dict[str, int] = field(default_factory=dict)


@dataclass
class SdxReport:
    """An exchange-wide policy-interaction report."""

    participants: List[ParticipantReport]

    @property
    def total_overlaps(self) -> int:
        """Overlapping clause pairs across the whole exchange."""
        return sum(len(report.overlaps) for report in self.participants)

    def render(self) -> str:
        """A printable multi-line summary."""
        lines: List[str] = []
        for report in self.participants:
            lines.append(
                f"{report.name}: {report.outbound_clauses} outbound / "
                f"{report.inbound_clauses} inbound clauses"
                + (f", targets {', '.join(report.targets)}"
                   if report.targets else ""))
            for target, count in sorted(report.eligible_prefixes.items()):
                lines.append(f"  eligible via {target}: {count} prefixes")
            for overlap in report.overlaps:
                lines.append(f"  ! {overlap.describe()}")
        if not lines:
            return "(no policies installed)"
        return "\n".join(lines)


def analyze_sdx(controller) -> SdxReport:
    """Build the policy-interaction report for a controller's participants."""
    reports: List[ParticipantReport] = []
    for participant in controller.topology.participants():
        if not participant.has_policies:
            continue
        report = ParticipantReport(
            name=participant.name,
            outbound_clauses=len(participant.outbound_clauses())
            if not participant.is_remote else 0,
            inbound_clauses=len(participant.inbound_clauses()),
            targets=participant.outbound_targets())
        if not participant.is_remote:
            report.overlaps.extend(find_clause_overlaps(participant, "out"))
        report.overlaps.extend(find_clause_overlaps(participant, "in"))
        for target in report.targets:
            report.eligible_prefixes[target] = len(
                controller.route_server.reachable_prefixes(
                    participant.name, via=target))
        reports.append(report)
    return SdxReport(participants=reports)
