"""Seeded, exactly-serialisable federated scenarios.

A :class:`FederatedScenario` is the multi-exchange analogue of
:class:`~repro.verification.scenario.Scenario`: everything needed to
rebuild identical federations — exchanges, participants with their
presence sets, a global non-overlapping prefix pool, federation-wide
prefix origins, per-exchange announcements and policies, and a BGP churn
trace whose steps each target one exchange. The encoding round-trips
exactly through JSON (``to_json`` / ``from_json``), so fuzz failures
replay bit-identically.

Per-exchange *projections* (:meth:`FederatedScenario.project`) are plain
single-exchange scenarios restricted to one exchange's members; they are
what the per-exchange reference interpreters are built from, and their
participant order matches :class:`~repro.federation.controller.\
FederatedController` registration order so switch-port numbering lines
up across all execution arms.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.bgp.asn import AsPath
from repro.net.addresses import IPv4Prefix
from repro.net.packet import Packet
from repro.verification.scenario import (
    FIELD_CHOICES,
    Scenario,
    ScenarioAnnouncement,
    ScenarioParticipant,
    ScenarioPolicy,
    TraceStep,
)
from repro.workloads.routing import PrefixPool, synthesize_as_path
from repro.workloads.seeding import SeedLike, derive_seed, make_rng

#: Bump when the JSON encoding changes incompatibly.
FEDERATED_SCENARIO_VERSION = 1

#: Exchange names are letters appended to a common stem.
_EXCHANGE_STEM = "IXP-"


def _exchange_names(count: int) -> Tuple[str, ...]:
    """``IXP-A``, ``IXP-B``, ... for ``count`` exchanges."""
    return tuple(f"{_EXCHANGE_STEM}{chr(ord('A') + i)}" for i in range(count))


@dataclass(frozen=True)
class FederatedParticipant:
    """One participant and the exchanges it attends (preference order)."""

    name: str
    asn: int
    exchanges: Tuple[str, ...]
    ports: int = 1


@dataclass(frozen=True)
class FederatedAnnouncement:
    """One base-table announcement at one exchange."""

    exchange: str
    participant: str
    prefix: str
    as_path: Tuple[int, ...]


@dataclass(frozen=True)
class FederatedPolicy:
    """One generated policy clause, pinned to one exchange."""

    exchange: str
    participant: str
    direction: str
    field: str
    value: Union[int, str]
    target: Optional[str] = None
    dst_prefix: Optional[str] = None
    port_index: int = 0

    def to_scenario_policy(self) -> ScenarioPolicy:
        """The clause without its exchange tag."""
        return ScenarioPolicy(
            participant=self.participant, direction=self.direction,
            field=self.field, value=self.value, target=self.target,
            dst_prefix=self.dst_prefix, port_index=self.port_index)


@dataclass(frozen=True)
class FederatedTraceStep:
    """One BGP churn step targeting one exchange."""

    exchange: str
    kind: str
    participant: str
    prefix: str
    as_path: Tuple[int, ...] = ()
    med: int = 0

    def to_step(self) -> TraceStep:
        """The step without its exchange tag."""
        return TraceStep(kind=self.kind, participant=self.participant,
                         prefix=self.prefix, as_path=self.as_path,
                         med=self.med)


@dataclass(frozen=True)
class FederatedScenario:
    """Everything needed to rebuild one federation identically."""

    seed: int
    exchanges: Tuple[str, ...]
    participants: Tuple[FederatedParticipant, ...]
    prefixes: Tuple[str, ...]
    owners: Tuple[Tuple[str, str], ...]
    announcements: Tuple[FederatedAnnouncement, ...]
    policies: Tuple[FederatedPolicy, ...]
    trace: Tuple[FederatedTraceStep, ...]

    # ------------------------------------------------------------------
    # Derived facts
    # ------------------------------------------------------------------

    def participant_names(self) -> Tuple[str, ...]:
        """Member names in registration order."""
        return tuple(spec.name for spec in self.participants)

    def asn_of(self, name: str) -> int:
        """The ASN of participant ``name``."""
        for spec in self.participants:
            if spec.name == name:
                return spec.asn
        raise KeyError(name)

    def presence(self, name: str) -> Tuple[str, ...]:
        """The exchanges ``name`` attends, in preference order."""
        for spec in self.participants:
            if spec.name == name:
                return spec.exchanges
        raise KeyError(name)

    def participants_at(self, exchange: str) -> Tuple[FederatedParticipant, ...]:
        """Members present at ``exchange``, in registration order."""
        return tuple(spec for spec in self.participants
                     if exchange in spec.exchanges)

    def owner_of(self, prefix: str) -> Optional[str]:
        """The registered origin of ``prefix``, if any."""
        for owned, name in self.owners:
            if owned == prefix:
                return name
        return None

    # ------------------------------------------------------------------
    # Projections
    # ------------------------------------------------------------------

    def project(self, exchange: str) -> Scenario:
        """This scenario restricted to one exchange's members and state."""
        if exchange not in self.exchanges:
            raise KeyError(exchange)
        return Scenario(
            seed=derive_seed(self.seed, f"exchange-{exchange}"),
            participants=tuple(
                ScenarioParticipant(name=spec.name, asn=spec.asn,
                                    ports=spec.ports)
                for spec in self.participants_at(exchange)),
            prefixes=self.prefixes,
            announcements=tuple(
                ScenarioAnnouncement(participant=item.participant,
                                     prefix=item.prefix,
                                     as_path=item.as_path)
                for item in self.announcements if item.exchange == exchange),
            policies=tuple(
                item.to_scenario_policy()
                for item in self.policies if item.exchange == exchange),
            trace=tuple(
                item.to_step()
                for item in self.trace if item.exchange == exchange),
        )

    def step_update(self, step: FederatedTraceStep):
        """One trace step as the exact update every execution consumes."""
        return self.project(step.exchange).step_update(step.to_step())

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def build_controller(self, *, statics_mode: str = "off",
                         start: bool = True, **kwargs):
        """A federation loaded with this scenario's base state.

        Identical on every call (same registration order, same base
        routes, same policies in list order). Policies install through
        the federated change surface, so ``statics_mode="strict"``
        rejects a loop-prone scenario at install time. Keyword arguments
        pass through to the per-exchange controllers.
        """
        from repro.federation.controller import FederatedController

        kwargs.setdefault("with_dataplane", True)
        with_dataplane = kwargs.pop("with_dataplane")
        federation = FederatedController(
            statics_mode=statics_mode, with_dataplane=with_dataplane,
            **kwargs)
        for exchange in self.exchanges:
            federation.add_exchange(exchange)
        for spec in self.participants:
            federation.add_participant(
                spec.name, spec.asn, exchanges=spec.exchanges,
                ports=spec.ports)
        for prefix, owner in self.owners:
            federation.register_origin(IPv4Prefix(prefix), owner)
        for item in self.announcements:
            federation.announce_route(
                item.exchange, item.participant, IPv4Prefix(item.prefix),
                AsPath(item.as_path))
        for item in self.policies:
            controller = federation.exchange(item.exchange)
            built = item.to_scenario_policy().build(
                lambda name, index: controller.participant(name).port(index))
            if item.direction == "out":
                federation.add_outbound(item.exchange, item.participant, built)
            else:
                federation.add_inbound(item.exchange, item.participant, built)
        if start:
            federation.start()
        return federation

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """A JSON-safe dict (see :meth:`from_dict` for the inverse)."""
        payload = asdict(self)
        payload["version"] = FEDERATED_SCENARIO_VERSION
        return payload

    def to_json(self) -> str:
        """The scenario as deterministic, pretty-printed JSON."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "FederatedScenario":
        """Rebuild a scenario from :meth:`to_dict` output."""
        version = payload.get("version", FEDERATED_SCENARIO_VERSION)
        if version != FEDERATED_SCENARIO_VERSION:
            raise ValueError(
                f"unsupported federated scenario version {version!r}")
        return cls(
            seed=int(payload["seed"]),  # type: ignore[arg-type]
            exchanges=tuple(payload["exchanges"]),  # type: ignore[arg-type]
            participants=tuple(
                FederatedParticipant(
                    name=item["name"], asn=item["asn"],
                    exchanges=tuple(item["exchanges"]), ports=item["ports"])
                for item in payload["participants"]),  # type: ignore[union-attr]
            prefixes=tuple(payload["prefixes"]),  # type: ignore[arg-type]
            owners=tuple(
                (item[0], item[1])
                for item in payload["owners"]),  # type: ignore[union-attr]
            announcements=tuple(
                FederatedAnnouncement(
                    exchange=item["exchange"], participant=item["participant"],
                    prefix=item["prefix"], as_path=tuple(item["as_path"]))
                for item in payload["announcements"]),  # type: ignore[union-attr]
            policies=tuple(
                FederatedPolicy(**item)
                for item in payload["policies"]),  # type: ignore[union-attr]
            trace=tuple(
                FederatedTraceStep(
                    exchange=item["exchange"], kind=item["kind"],
                    participant=item["participant"], prefix=item["prefix"],
                    as_path=tuple(item["as_path"]), med=item["med"])
                for item in payload["trace"]),  # type: ignore[union-attr]
        )

    @classmethod
    def from_json(cls, text: str) -> "FederatedScenario":
        """Rebuild a scenario from :meth:`to_json` output."""
        return cls.from_dict(json.loads(text))


def wrap_scenario(scenario: Scenario,
                  exchange: str = "IXP-A") -> FederatedScenario:
    """A single-exchange scenario as a one-exchange federation.

    No participant is shared and no origin is registered, so every
    egress exits upstream immediately — the federated semantics collapse
    to plain single-exchange SDX semantics, which the hypothesis
    equivalence properties pin down.
    """
    return FederatedScenario(
        seed=scenario.seed,
        exchanges=(exchange,),
        participants=tuple(
            FederatedParticipant(name=spec.name, asn=spec.asn,
                                 exchanges=(exchange,), ports=spec.ports)
            for spec in scenario.participants),
        prefixes=scenario.prefixes,
        owners=(),
        announcements=tuple(
            FederatedAnnouncement(exchange=exchange,
                                  participant=item.participant,
                                  prefix=item.prefix, as_path=item.as_path)
            for item in scenario.announcements),
        policies=tuple(
            FederatedPolicy(exchange=exchange, participant=item.participant,
                            direction=item.direction, field=item.field,
                            value=item.value, target=item.target,
                            dst_prefix=item.dst_prefix,
                            port_index=item.port_index)
            for item in scenario.policies),
        trace=tuple(
            FederatedTraceStep(exchange=exchange, kind=item.kind,
                               participant=item.participant,
                               prefix=item.prefix, as_path=item.as_path,
                               med=item.med)
            for item in scenario.trace),
    )


# ----------------------------------------------------------------------
# Generation
# ----------------------------------------------------------------------


def _assign_presence(rng, names: Sequence[str], exchanges: Tuple[str, ...],
                     shared: int) -> Dict[str, Tuple[str, ...]]:
    """Presence sets: the first ``shared`` names attend several exchanges,
    the rest are spread round-robin so every exchange has members."""
    presence: Dict[str, Tuple[str, ...]] = {}
    for index, name in enumerate(names):
        if index < shared:
            count = rng.randint(2, len(exchanges)) if len(exchanges) > 2 else 2
            attended = sorted(rng.sample(range(len(exchanges)), count))
            ordered = [exchanges[i] for i in attended]
            rng.shuffle(ordered)
            presence[name] = tuple(ordered)
        else:
            home = exchanges[(index - shared) % len(exchanges)]
            presence[name] = (home,)
    return presence


def generate_federated_scenario(
        seed: SeedLike, *, exchanges: int = 2, participants: int = 6,
        shared: int = 2, prefixes: int = 4, policies: int = 6,
        steps: int = 12,
        withdraw_probability: float = 0.25) -> FederatedScenario:
    """A seeded random federation with cross-exchange structure.

    The first ``shared`` participants attend several exchanges (these
    are the stitch points loops and blackholes need); the rest are
    single-homed, spread so every exchange has members. Each prefix has
    one federation-wide origin that announces it everywhere it peers;
    shared participants re-announce prefixes they can reach at other
    exchanges with longer AS paths (transit claims), which is what makes
    the cross-exchange walk non-trivial. Policies and the churn trace
    mirror the single-exchange generator, pinned to exchanges.
    """
    if exchanges < 1:
        raise ValueError("need at least one exchange")
    if participants < exchanges:
        raise ValueError("need at least one participant per exchange")
    shared = min(shared, participants) if exchanges > 1 else 0
    rng = make_rng(seed, salt=0xFEDE)
    exchange_names = _exchange_names(exchanges)

    specs: List[FederatedParticipant] = []
    names = [f"AS{i + 1}" for i in range(participants)]
    presence = _assign_presence(rng, names, exchange_names, shared)
    for index, name in enumerate(names):
        specs.append(FederatedParticipant(
            name=name, asn=65_001 + index, exchanges=presence[name],
            ports=2 if rng.random() < 0.25 else 1))
    by_name = {spec.name: spec for spec in specs}

    pool = PrefixPool(lengths=(24, 16), seed=derive_seed(seed, "prefixes"))
    prefix_list = tuple(str(prefix) for prefix in pool.take(prefixes))

    owners: List[Tuple[str, str]] = []
    announcements: List[FederatedAnnouncement] = []
    for prefix in prefix_list:
        owner = rng.choice(specs)
        origin_asn = rng.randrange(1_000, 60_000)
        owners.append((prefix, owner.name))
        for exchange in owner.exchanges:
            announcements.append(FederatedAnnouncement(
                exchange=exchange, participant=owner.name, prefix=prefix,
                as_path=tuple(synthesize_as_path(
                    origin_asn, owner.asn, rng, min_length=2))))
        # Transit claims: shared participants that peer alongside the
        # owner somewhere re-announce the prefix at their *other*
        # exchanges with a longer path — the stitches of the federation.
        for spec in specs:
            if spec.name == owner.name or not spec.exchanges:
                continue
            meets_owner = bool(set(spec.exchanges) & set(owner.exchanges))
            for exchange in spec.exchanges:
                if exchange in owner.exchanges:
                    continue
                if meets_owner and rng.random() < 0.6:
                    announcements.append(FederatedAnnouncement(
                        exchange=exchange, participant=spec.name,
                        prefix=prefix,
                        as_path=tuple(synthesize_as_path(
                            origin_asn, spec.asn, rng, min_length=3))))

    policy_list: List[FederatedPolicy] = []
    for _ in range(policies):
        exchange = rng.choice(exchange_names)
        members = [spec for spec in specs if exchange in spec.exchanges]
        if len(members) < 2:
            continue
        sender = rng.choice(members)
        field, values = rng.choice(FIELD_CHOICES)
        value = rng.choice(values)
        if rng.random() < 0.3:
            policy_list.append(FederatedPolicy(
                exchange=exchange, participant=sender.name, direction="in",
                field=field, value=value,
                port_index=rng.randrange(sender.ports)))
            continue
        target = rng.choice([s for s in members if s.name != sender.name])
        dst_prefix = (rng.choice(prefix_list)
                      if prefix_list and rng.random() < 0.5 else None)
        policy_list.append(FederatedPolicy(
            exchange=exchange, participant=sender.name, direction="out",
            field=field, value=value, target=target.name,
            dst_prefix=dst_prefix))

    trace: List[FederatedTraceStep] = []
    announced: Dict[Tuple[str, str, str], Tuple[int, ...]] = {
        (item.exchange, item.participant, item.prefix): item.as_path
        for item in announcements
    }
    trace_rng = make_rng(derive_seed(seed, "federated-trace"))
    for _ in range(steps):
        exchange = trace_rng.choice(exchange_names)
        members = [spec for spec in specs if exchange in spec.exchanges]
        if not members or not prefix_list:
            continue
        spec = trace_rng.choice(members)
        prefix = trace_rng.choice(prefix_list)
        key = (exchange, spec.name, prefix)
        if key in announced and trace_rng.random() < withdraw_probability:
            del announced[key]
            trace.append(FederatedTraceStep(
                exchange=exchange, kind="withdraw", participant=spec.name,
                prefix=prefix))
        else:
            path = tuple(synthesize_as_path(
                trace_rng.randrange(1_000, 60_000), spec.asn, trace_rng,
                min_length=2))
            announced[key] = path
            trace.append(FederatedTraceStep(
                exchange=exchange, kind="announce", participant=spec.name,
                prefix=prefix, as_path=path,
                med=trace_rng.choice((0, 0, 0, 50, 100))))

    return FederatedScenario(
        seed=_seed_int(seed),
        exchanges=exchange_names,
        participants=tuple(specs),
        prefixes=prefix_list,
        owners=tuple(owners),
        announcements=tuple(announcements),
        policies=tuple(policy_list),
        trace=tuple(trace),
    )


def _seed_int(seed: SeedLike) -> int:
    """A stable integer encoding of any accepted seed value."""
    if isinstance(seed, int):
        return seed
    return derive_seed(seed, "federated-scenario")


def generate_federated_corpus(scenario: FederatedScenario, *,
                              size: int = 12,
                              seed: Optional[int] = None) -> Tuple[Packet, ...]:
    """A deduplicated probe corpus covering every member exchange.

    Unions the single-exchange corpora of each projection (structured
    prefix x policy-field probes plus seeded random packets), so every
    exchange's policies and announcements have covering probes.
    """
    from repro.verification.corpus import generate_corpus

    merged: List[Packet] = []
    seen = set()
    for exchange in scenario.exchanges:
        projection = scenario.project(exchange)
        packets = generate_corpus(
            projection, size=size,
            seed=seed if seed is not None else derive_seed(
                scenario.seed, f"corpus-{exchange}"))
        for packet in packets:
            key = tuple(sorted((name, str(value))
                               for name, value in packet.items()))
            if key not in seen:
                seen.add(key)
                merged.append(packet)
    return tuple(merged)
