"""Runtime-vs-inline equivalence: the oracle for event coalescing.

The control-plane runtime reorders across priority classes and collapses
per-(participant, prefix) churn to its latest state, so the *sequence*
of controller calls differs from an inline replay — but the *final*
control-plane state must not. This module states that contract
precisely and checks it:

* :func:`canonical_state` — a controller snapshot comparable **up to
  (VNH, VMAC) renaming**. Raw VNH addresses legitimately diverge
  between executions (the allocator's cursor and free list record how
  many ephemerals each path burned), so the snapshot captures the
  *partition* of prefixes into shared-VNH groups rather than the
  addresses themselves, alongside the exact Adj-RIBs-In, per-participant
  best routes, policy state, and table size.
* :func:`check_runtime_equivalence` — replays one
  :class:`~repro.verification.scenario.Scenario` trace twice: inline
  (direct :meth:`~repro.core.controller.SdxController.submit_update`
  per event, periodic background recompilation — the
  :class:`~repro.verification.oracle.DifferentialOracle`'s incremental
  arm) and through a deterministic step-driven
  :class:`~repro.runtime.loop.ControlPlaneRuntime` with coalescing on.
  After both settle it asserts canonical-state equality, forwarding
  equivalence over the packet corpus, and the standing invariants.

Soundness of the comparison rests on the route server's Adj-RIB-In
being last-writer-wins per (sender, prefix): coalescing only ever drops
states that a patient observer could never have distinguished once the
burst drained.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.core.controller import SdxController
from repro.net.packet import Packet
from repro.runtime.clock import ManualClock
from repro.runtime.loop import ControlPlaneRuntime, RuntimeConfig
from repro.verification.corpus import generate_corpus
from repro.verification.invariants import check_all
from repro.verification.oracle import OracleFailure, compare_controllers
from repro.verification.scenario import Scenario

#: A hashable summary of one RIB entry (attributes spelled out so two
#: value-equal routes from different executions compare equal).
RouteSummary = Tuple[str, str, Tuple[int, ...], int, int, Tuple[Tuple[int, int], ...]]


def _route_summary(entry) -> RouteSummary:
    attributes = entry.attributes
    return (
        entry.learned_from,
        str(attributes.next_hop),
        tuple(attributes.as_path.asns),
        attributes.med,
        attributes.local_pref,
        tuple(sorted(attributes.communities)),
    )


@dataclass(frozen=True)
class CanonicalState:
    """A controller snapshot comparable up to (VNH, VMAC) renaming."""

    adj_ribs: Tuple[Tuple[str, Tuple[RouteSummary, ...]], ...]
    best_routes: Tuple[Tuple[str, str, Optional[RouteSummary]], ...]
    vnh_partition: FrozenSet[Tuple[str, ...]]
    unassigned_prefixes: Tuple[str, ...]
    ephemeral_prefixes: Tuple[str, ...]
    policies_suspended: bool
    rule_count: int

    def diff(self, other: "CanonicalState") -> List[str]:
        """Human-readable differences from ``other`` (empty if equal)."""
        problems: List[str] = []
        if self.adj_ribs != other.adj_ribs:
            mine, theirs = dict(self.adj_ribs), dict(other.adj_ribs)
            for prefix in sorted(set(mine) | set(theirs)):
                if mine.get(prefix) != theirs.get(prefix):
                    problems.append(
                        f"adj-rib mismatch for {prefix}: "
                        f"{mine.get(prefix)} != {theirs.get(prefix)}")
        if self.best_routes != other.best_routes:
            mine_best = {(p, pre): route for p, pre, route in self.best_routes}
            theirs_best = {(p, pre): route
                           for p, pre, route in other.best_routes}
            for key in sorted(set(mine_best) | set(theirs_best)):
                if mine_best.get(key) != theirs_best.get(key):
                    problems.append(
                        f"best route mismatch for {key}: "
                        f"{mine_best.get(key)} != {theirs_best.get(key)}")
        if self.vnh_partition != other.vnh_partition:
            problems.append(
                f"VNH grouping mismatch: "
                f"{sorted(self.vnh_partition)} != "
                f"{sorted(other.vnh_partition)}")
        if self.unassigned_prefixes != other.unassigned_prefixes:
            problems.append(
                f"unassigned prefixes differ: {self.unassigned_prefixes} "
                f"!= {other.unassigned_prefixes}")
        if self.ephemeral_prefixes != other.ephemeral_prefixes:
            problems.append(
                f"ephemeral VNHs differ: {self.ephemeral_prefixes} != "
                f"{other.ephemeral_prefixes}")
        if self.policies_suspended != other.policies_suspended:
            problems.append(
                f"policy suspension differs: {self.policies_suspended} != "
                f"{other.policies_suspended}")
        if self.rule_count != other.rule_count:
            problems.append(
                f"flow-table size differs: {self.rule_count} != "
                f"{other.rule_count}")
        return problems


def canonical_state(controller: SdxController) -> CanonicalState:
    """Snapshot ``controller`` for renaming-insensitive comparison."""
    route_server = controller.route_server
    prefixes = route_server.all_prefixes()
    adj_ribs = tuple(
        (str(prefix),
         tuple(sorted(_route_summary(entry)
                      for entry in route_server.all_routes_for(prefix))))
        for prefix in prefixes)
    best_routes: List[Tuple[str, str, Optional[RouteSummary]]] = []
    for participant in controller.topology.participants():
        for prefix in prefixes:
            best = route_server.best_route_for(participant.name, prefix)
            best_routes.append((
                participant.name, str(prefix),
                None if best is None else _route_summary(best)))
    groups: Dict[str, List[str]] = {}
    unassigned: List[str] = []
    for prefix in prefixes:
        vnh = controller.allocator.next_hop_for_prefix(prefix)
        if vnh is None:
            unassigned.append(str(prefix))
        else:
            groups.setdefault(str(vnh), []).append(str(prefix))
    return CanonicalState(
        adj_ribs=adj_ribs,
        best_routes=tuple(best_routes),
        vnh_partition=frozenset(
            tuple(sorted(members)) for members in groups.values()),
        unassigned_prefixes=tuple(sorted(unassigned)),
        ephemeral_prefixes=tuple(
            sorted(str(prefix)
                   for prefix in controller.allocator.ephemeral_prefixes())),
        policies_suspended=controller.policies_suspended,
        rule_count=len(controller.table),
    )


def check_runtime_equivalence(
        scenario: Scenario, *,
        drain_every: int = 4,
        config: Optional[RuntimeConfig] = None,
        corpus: Optional[Sequence[Packet]] = None) -> Optional[OracleFailure]:
    """Replay ``scenario`` inline and through the runtime; compare.

    The inline execution submits every trace update directly and runs
    the background recompilation every ``drain_every`` steps and at the
    end. The runtime execution submits the same updates into a
    deterministic (step-driven, :class:`~repro.runtime.clock
    .ManualClock`) :class:`~repro.runtime.loop.ControlPlaneRuntime`
    with coalescing enabled, draining on the same cadence, then
    settles. Returns the first discrepancy as an
    :class:`~repro.verification.oracle.OracleFailure`, or ``None``.
    """
    inline = scenario.build_controller()
    routed = scenario.build_controller()
    runtime = ControlPlaneRuntime(
        routed,
        config=config if config is not None else RuntimeConfig(),
        clock=ManualClock())
    probes: Tuple[Packet, ...] = tuple(
        corpus if corpus is not None else generate_corpus(scenario))

    last = len(scenario.trace) - 1
    for index, step in enumerate(scenario.trace):
        update = scenario.step_update(step)
        inline.submit_update(update)
        runtime.submit_update(update)
        if (index + 1) % drain_every == 0:
            inline.run_background_recompilation()
            runtime.settle()
    inline.run_background_recompilation()
    runtime.settle()

    want, got = canonical_state(inline), canonical_state(routed)
    problems = want.diff(got)
    if problems:
        return OracleFailure("runtime-state", last, problems[0])
    violations = compare_controllers(inline, routed, probes)
    if violations:
        return OracleFailure("runtime-forwarding", last, violations[0].detail)
    violations = check_all(routed, probes)
    if violations:
        first = violations[0]
        return OracleFailure(f"runtime-invariant:{first.invariant}", last,
                             first.detail)
    return None
