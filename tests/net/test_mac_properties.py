"""Property-style tests for MAC addresses and the VMAC tag encoding,
on seeded random (see test_address_properties for the approach)."""

import random

import pytest

from repro.exceptions import AddressError
from repro.net.mac import (
    VMAC_CAPACITY,
    VMAC_OUI,
    MacAddress,
    fec_for_vmac,
    vmac_for_fec,
)

CASES = 300


class TestMacProperties:
    def test_string_round_trip(self):
        rng = random.Random(0x3AC1)
        for _ in range(CASES):
            mac = MacAddress(rng.randrange(1 << 48))
            assert MacAddress(str(mac)) == mac, mac

    def test_order_matches_integers(self):
        rng = random.Random(0x3AC2)
        for _ in range(CASES):
            a = MacAddress(rng.randrange(1 << 48))
            b = MacAddress(rng.randrange(1 << 48))
            assert (a < b) == (int(a) < int(b)), (a, b)

    def test_oui_is_top_24_bits(self):
        rng = random.Random(0x3AC3)
        for _ in range(CASES):
            value = rng.randrange(1 << 48)
            assert MacAddress(value).oui == value >> 24

    def test_out_of_range_rejected(self):
        for bad in (-1, 1 << 48):
            with pytest.raises(AddressError):
                MacAddress(bad)


class TestVmacEncoding:
    def test_fec_round_trip(self):
        rng = random.Random(0x3AC4)
        for _ in range(CASES):
            fec = rng.randrange(VMAC_CAPACITY)
            vmac = vmac_for_fec(fec)
            assert vmac.is_virtual
            assert vmac.oui == VMAC_OUI
            assert fec_for_vmac(vmac) == fec, fec

    def test_encoding_is_injective(self):
        rng = random.Random(0x3AC5)
        fecs = rng.sample(range(VMAC_CAPACITY), k=500)
        assert len({vmac_for_fec(fec) for fec in fecs}) == len(fecs)

    def test_locally_administered_bit_always_set(self):
        rng = random.Random(0x3AC6)
        for _ in range(CASES):
            vmac = vmac_for_fec(rng.randrange(VMAC_CAPACITY))
            first_octet = int(vmac) >> 40
            assert first_octet & 0x02, vmac

    def test_capacity_bounds_enforced(self):
        vmac_for_fec(VMAC_CAPACITY - 1)   # boundary is legal
        for bad in (-1, VMAC_CAPACITY):
            with pytest.raises(AddressError):
                vmac_for_fec(bad)

    def test_physical_macs_never_decode(self):
        rng = random.Random(0x3AC7)
        for _ in range(CASES):
            value = rng.randrange(1 << 48)
            mac = MacAddress(value)
            if mac.is_virtual:
                continue
            with pytest.raises(AddressError):
                fec_for_vmac(mac)
