#!/usr/bin/env python3
"""Explore the evaluation machinery: generate an IXP, compile it, churn it.

Builds a synthetic exchange shaped like the paper's Section 6 workloads
(heavy-tailed prefix ownership, eyeball/transit/content policy mix),
compiles it, replays a bursty BGP update trace through the two-stage
incremental engine, and prints the resulting control-plane statistics.

Run with::

    python examples/synthetic_ixp.py [participants] [prefixes]
"""

import sys

from repro.experiments.metrics import render_table
from repro.workloads.policies import generate_policies, install_assignments
from repro.workloads.topology import generate_ixp
from repro.workloads.updates import generate_trace, trace_stats


def build():
    """A small Section 6.1 exchange for the static policy verifier.

    Lint-sized: 12 participants and 80 prefixes keep the analyzer fast
    while still exercising the eyeball/transit/content policy mix.
    """
    ixp = generate_ixp(12, 80, seed=7)
    controller = ixp.build_controller()
    install_assignments(controller, generate_policies(ixp, seed=8))
    return controller


def main() -> None:
    participants = int(sys.argv[1]) if len(sys.argv) > 1 else 150
    prefixes = int(sys.argv[2]) if len(sys.argv) > 2 else 5_000

    print(f"generating an IXP with {participants} participants and "
          f"{prefixes} prefixes ...")
    ixp = generate_ixp(participants, prefixes, seed=7)
    top = ixp.top_by_prefixes(5)
    print(render_table(
        ["participant", "category", "ports", "prefixes announced"],
        [[spec.name, spec.category, spec.ports, len(spec.prefixes)]
         for spec in top]))
    print()

    controller = ixp.build_controller()
    assignments = generate_policies(ixp, seed=8)
    install_assignments(controller, assignments)
    print(f"installed {len(assignments)} generated policies "
          f"(Section 6.1 mix)")

    result = controller.start()
    print(f"initial compilation: {result.prefix_group_count} prefix groups, "
          f"{result.flow_rule_count} flow rules, "
          f"{result.total_seconds:.2f}s")
    print("  stage timings: " + ", ".join(
        f"{stage}={seconds * 1000:.0f}ms"
        for stage, seconds in result.timings.items() if stage != "total"))
    print()

    print("replaying a bursty BGP update trace (500 updates) ...")
    events = generate_trace(ixp, seed=9, max_updates=500)
    for event in events:
        controller.submit_update(event.update)
    stats = trace_stats(events, total_prefixes=prefixes)
    fast_times = [entry.seconds for entry in controller.fast_path_log]
    print(f"  prefixes updated: {stats.prefixes_updated} "
          f"({stats.fraction_prefixes_updated:.1%} of table)")
    print(f"  fast-path rules pending: "
          f"{controller.engine.fast_path_rules_live}")
    print(f"  mean fast-path latency: "
          f"{sum(fast_times) / len(fast_times) * 1000:.1f} ms")

    background = controller.run_background_recompilation()
    print(f"background re-optimisation: table back to "
          f"{background.flow_rule_count} rules, "
          f"{background.prefix_group_count} groups")


if __name__ == "__main__":
    main()
