"""Tests for the SDX008/SDX009 federation checks and the static walker."""

from repro import drop, fwd, match
from repro.core.dynamic import rib_match
from repro.federation import (
    FederationContext,
    analyze_federation,
)
from repro.federation.checks import walk_statically
from repro.net.packet import Packet
from repro.statics.diagnostics import Severity
from repro.telemetry import Telemetry

from tests.federation.scenarios import (
    PORT,
    blackhole_scenario,
    clean_scenario,
    loop_scenario,
)

DSTIP = "198.51.100.9"


def build(scenario):
    return scenario.build_controller(with_dataplane=False)


class TestInterExchangeLoop:
    def test_loop_pair_flagged_as_error(self):
        report = analyze_federation(build(loop_scenario()))
        findings = report.by_check("SDX008")
        assert findings
        assert all(d.severity is Severity.ERROR for d in findings)

    def test_diagnostic_carries_cycle_and_witness(self):
        report = analyze_federation(build(loop_scenario()))
        diagnostic = report.by_check("SDX008")[0]
        payload = dict(diagnostic.data)
        assert payload["origin_exchange"] in ("IXP-A", "IXP-B")
        assert payload["origin_participant"] in ("West", "East")
        assert len(payload["cycle"]) == 2
        assert diagnostic.witness.get("dstport") == PORT

    def test_one_finding_per_composed_clause(self):
        report = analyze_federation(build(loop_scenario()))
        anchors = {(dict(d.data)["origin_exchange"],
                    d.location.participant, d.location.clause_index)
                   for d in report.by_check("SDX008")}
        assert anchors == {("IXP-A", "East", 0), ("IXP-B", "West", 0)}

    def test_clean_federation_has_no_loop_findings(self):
        report = analyze_federation(build(clean_scenario()))
        assert report.by_check("SDX008") == []

    def test_blackhole_federation_has_no_loop_findings(self):
        report = analyze_federation(build(blackhole_scenario()))
        assert report.by_check("SDX008") == []


class TestStitchedBlackhole:
    def test_stitched_drop_flagged_as_warning(self):
        report = analyze_federation(build(blackhole_scenario()))
        findings = report.by_check("SDX009")
        assert findings
        assert all(d.severity is Severity.WARNING for d in findings)

    def test_diagnostic_names_the_killer(self):
        report = analyze_federation(build(blackhole_scenario()))
        payload = dict(report.by_check("SDX009")[0].data)
        assert payload["drop_exchange"] == "IXP-B"
        assert payload["drop_participant"] == "Transit"
        assert payload["drop_reason"] == "outbound-drop"
        assert payload["drop_clause"] == 0

    def test_same_exchange_drop_is_not_stitched(self):
        # The egress's inbound policy refuses the packet at the very
        # first exchange: single-exchange territory (SDX005), not SDX009.
        federation = build(clean_scenario())
        transit = federation.handle("IXP-B", "Transit")
        transit.participant.add_inbound(match(dstport=PORT) >> drop)
        federation.exchange("IXP-B").notify_policy_change("Transit")
        report = analyze_federation(federation)
        assert report.by_check("SDX009") == []

    def test_clean_federation_has_no_blackhole_findings(self):
        report = analyze_federation(build(clean_scenario()))
        assert report.by_check("SDX009") == []

    def test_inbound_refusal_beyond_first_exchange_is_stitched(self):
        # Replace Transit's outbound drop with an inbound drop on Relay:
        # at IXP-B the re-entered packet defaults to Relay, whose inbound
        # policy refuses what IXP-A steered in.
        scenario = blackhole_scenario()
        federation = scenario.build_controller(with_dataplane=False)
        transit = federation.handle("IXP-B", "Transit")
        transit.participant.remove_outbound(
            transit.participant.outbound_policies[0])
        relay = federation.handle("IXP-B", "Relay")
        relay.participant.add_inbound(match(dstport=PORT) >> drop)
        federation.exchange("IXP-B").notify_policy_change("Transit")
        federation.exchange("IXP-B").notify_policy_change("Relay")
        report = analyze_federation(federation)
        payload = dict(report.by_check("SDX009")[0].data)
        assert payload["drop_reason"] == "inbound-drop"
        assert payload["drop_exchange"] == "IXP-B"
        assert payload["drop_participant"] == "Relay"


class TestSoundnessContract:
    def _make_west_dynamic(self):
        """The loop federation, with a dynamic clause ahead of West's
        steering clause at IXP-B."""
        federation = build(loop_scenario())
        west = federation.handle("IXP-B", "West").participant
        west.clear_policies()
        west.add_outbound(
            (match(dstport=22) & rib_match("dstip", "as_path", r".*64700$"))
            >> fwd("East"))
        west.add_outbound(match(dstport=PORT) >> fwd("East"))
        federation.exchange("IXP-B").notify_policy_change("West")
        return federation

    def test_dynamic_clause_aborts_the_walk(self):
        # A dynamic clause ahead of the steering clause makes every walk
        # through (IXP-B, West) point-wise undecidable.
        federation = self._make_west_dynamic()
        context = FederationContext(federation)
        walk = walk_statically(
            context, "IXP-B", "West", Packet(dstip=DSTIP, dstport=PORT))
        assert walk.kind == "unknown"

    def test_dynamic_clause_suppresses_the_verdict(self):
        federation = self._make_west_dynamic()
        report = analyze_federation(federation)
        # Every loop walk crosses (IXP-B, West), so no verdict survives.
        assert report.by_check("SDX008") == []

    def test_walk_matches_reference_on_clean_path(self):
        federation = build(clean_scenario())
        context = FederationContext(federation)
        walk = walk_statically(
            context, "IXP-B", "Eyeball", Packet(dstip=DSTIP, dstport=PORT))
        assert walk.kind == "delivered"
        assert walk.via == "origin"
        assert walk.participant == "Content"
        assert walk.hops == (("IXP-B", "Eyeball"), ("IXP-A", "Transit"))

    def test_unmatched_traffic_exits_upstream(self):
        federation = build(clean_scenario())
        context = FederationContext(federation)
        walk = walk_statically(
            context, "IXP-B", "Eyeball", Packet(dstip=DSTIP, dstport=443))
        # Default routing hands it to Transit; Transit carries it to
        # IXP-A where Content originates it.
        assert walk.kind == "delivered"

    def test_packet_without_route_never_leaves_the_border(self):
        federation = build(clean_scenario())
        context = FederationContext(federation)
        walk = walk_statically(
            context, "IXP-B", "Eyeball",
            Packet(dstip="203.0.113.5", dstport=PORT))
        assert walk.kind == "dropped"
        assert walk.drop_reason == "no-route"
        assert len(walk.hops) == 1


class TestAnalyzeFederation:
    def test_report_merges_member_batteries(self):
        report = analyze_federation(build(loop_scenario()))
        assert "SDX001" in report.checks_run
        assert "SDX008" in report.checks_run
        assert "SDX009" in report.checks_run
        assert report.participants_analyzed == 4  # two members, twice each

    def test_member_findings_are_exchange_tagged(self):
        report = analyze_federation(build(loop_scenario()))
        for diagnostic in report.diagnostics:
            assert "exchange" in dict(
                diagnostic.data) or diagnostic.check_id in (
                "SDX008", "SDX009")

    def test_telemetry_counters_recorded(self):
        telemetry = Telemetry()
        analyze_federation(build(loop_scenario()), telemetry=telemetry)
        snapshot = telemetry.registry.snapshot()
        assert snapshot["sdx_statics_federation_runs_total"] == 1
        assert snapshot["sdx_statics_federation_diagnostics_total"] >= 2
