"""Synthetic IXP traffic matrices with realistic locality.

Section 4.3 leans on Ager et al.'s measurement that "about 95% of all
IXP traffic is exchanged between about 5% of the participants" — it is
why composing only the policies of participants that exchange traffic
saves so much work. This generator produces flow-level demands with that
concentration: source and destination weights follow the same Zipf law
as prefix ownership (the paper itself uses advertised prefixes as the
traffic proxy), so a handful of participant pairs carry almost all
bytes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.net.addresses import IPv4Prefix
from repro.net.packet import Packet
from repro.workloads.seeding import SeedLike, make_rng
from repro.workloads.topology import SyntheticIxp, ZIPF_EXPONENT

#: Transport ports sampled for flows, roughly web-heavy.
_FLOW_PORTS = (80, 80, 443, 443, 443, 53, 8080, 1935, 25)


@dataclass(frozen=True)
class TrafficDemand:
    """One constant-rate flow between two IXP participants."""

    source: str
    destination: str
    dst_prefix: IPv4Prefix
    packet: Packet
    rate_mbps: float

    @property
    def pair(self) -> Tuple[str, str]:
        """The (source, destination) participant pair."""
        return (self.source, self.destination)


def generate_traffic_matrix(ixp: SyntheticIxp, *, flows: int = 500,
                            seed: SeedLike = 0,
                            mean_rate_mbps: float = 10.0) -> List[TrafficDemand]:
    """A flow-level traffic matrix over an existing synthetic IXP.

    Flow endpoints are drawn with Zipf-by-size weights on both sides
    (gravity model) and flow rates are Pareto-distributed, which together
    yield the heavy pair-concentration real IXPs show. ``seed`` is an int
    or a :class:`random.Random`.
    """
    rng = make_rng(seed, salt=0xBEEF)
    specs = list(ixp.participants)
    sizes = sorted(specs, key=lambda spec: (-len(spec.prefixes), spec.name))
    weights = [1.0 / ((rank + 1) ** ZIPF_EXPONENT) for rank in range(len(sizes))]
    announcers: Dict[IPv4Prefix, List[str]] = {}
    for name, prefix, _path in ixp.announcements:
        announcers.setdefault(prefix, []).append(name)

    demands: List[TrafficDemand] = []
    attempts = 0
    while len(demands) < flows and attempts < flows * 20:
        attempts += 1
        source = rng.choices(sizes, weights=weights, k=1)[0]
        destination = rng.choices(sizes, weights=weights, k=1)[0]
        if destination.name == source.name or not destination.prefixes:
            continue
        dst_prefix = rng.choice(destination.prefixes)
        dstip = dst_prefix.first_address + rng.randrange(
            min(dst_prefix.num_addresses, 250))
        srcip = (source.prefixes[0].first_address + rng.randrange(200)
                 if source.prefixes else rng.randrange(1 << 32))
        # A truncated-Pareto rate: the heaviest flows run ~150x the mean,
        # which is what concentrates bytes onto a few participant pairs.
        rate = mean_rate_mbps * 0.3 / max(0.002, rng.random() ** 1.2)
        demands.append(TrafficDemand(
            source=source.name,
            destination=destination.name,
            dst_prefix=dst_prefix,
            packet=Packet(dstip=dstip, srcip=srcip,
                          dstport=rng.choice(_FLOW_PORTS),
                          srcport=rng.randrange(1024, 65000),
                          protocol=6),
            rate_mbps=rate))
    return demands


@dataclass(frozen=True)
class LocalityStats:
    """Concentration statistics of a traffic matrix."""

    total_mbps: float
    pairs: int
    participants: int
    pairs_for_95_percent: int

    @property
    def pair_fraction_for_95_percent(self) -> float:
        """Share of active pairs carrying 95% of the traffic."""
        if self.pairs == 0:
            return 0.0
        return self.pairs_for_95_percent / self.pairs


def locality_stats(demands: Sequence[TrafficDemand]) -> LocalityStats:
    """How concentrated a traffic matrix is across participant pairs."""
    by_pair: Dict[Tuple[str, str], float] = {}
    participants = set()
    for demand in demands:
        by_pair[demand.pair] = by_pair.get(demand.pair, 0.0) + demand.rate_mbps
        participants.add(demand.source)
        participants.add(demand.destination)
    total = sum(by_pair.values())
    running = 0.0
    needed = 0
    for rate in sorted(by_pair.values(), reverse=True):
        running += rate
        needed += 1
        if running >= 0.95 * total:
            break
    return LocalityStats(
        total_mbps=total,
        pairs=len(by_pair),
        participants=len(participants),
        pairs_for_95_percent=needed)
