"""Tests for federated scenario generation, projection and round-trips."""

import dataclasses

import pytest

from repro.federation import (
    FederatedScenario,
    generate_federated_corpus,
    generate_federated_scenario,
    wrap_scenario,
)
from repro.verification.scenario import generate_scenario

from tests.federation.scenarios import clean_scenario, loop_scenario


class TestGeneration:
    def test_same_seed_same_scenario(self):
        first = generate_federated_scenario(7, exchanges=3, participants=8)
        second = generate_federated_scenario(7, exchanges=3, participants=8)
        assert first == second

    def test_different_seeds_diverge(self):
        first = generate_federated_scenario(7)
        second = generate_federated_scenario(8)
        assert first != second

    def test_every_exchange_has_members(self):
        scenario = generate_federated_scenario(5, exchanges=3, participants=9)
        for exchange in scenario.exchanges:
            assert scenario.participants_at(exchange)

    def test_shared_participants_attend_several_exchanges(self):
        scenario = generate_federated_scenario(
            5, exchanges=3, participants=9, shared=2)
        shared = [spec for spec in scenario.participants
                  if len(spec.exchanges) > 1]
        assert len(shared) == 2

    def test_owners_announce_everywhere_they_peer(self):
        scenario = generate_federated_scenario(9, exchanges=2, participants=6)
        announced = {(a.exchange, a.participant, a.prefix)
                     for a in scenario.announcements}
        for prefix, owner in scenario.owners:
            for exchange in scenario.presence(owner):
                assert (exchange, owner, prefix) in announced

    def test_single_exchange_request_has_no_shared_members(self):
        scenario = generate_federated_scenario(5, exchanges=1, participants=4)
        assert scenario.exchanges == ("IXP-A",)
        assert all(len(spec.exchanges) == 1 for spec in scenario.participants)

    def test_invalid_shapes_rejected(self):
        with pytest.raises(ValueError):
            generate_federated_scenario(1, exchanges=0)
        with pytest.raises(ValueError):
            generate_federated_scenario(1, exchanges=4, participants=2)


class TestSerialisation:
    def test_json_round_trip_is_exact(self):
        scenario = generate_federated_scenario(
            11, exchanges=3, participants=8, steps=6)
        assert FederatedScenario.from_json(scenario.to_json()) == scenario

    def test_hand_built_scenarios_round_trip(self):
        for scenario in (loop_scenario(), clean_scenario()):
            assert FederatedScenario.from_json(scenario.to_json()) == scenario

    def test_json_is_deterministic(self):
        scenario = generate_federated_scenario(11)
        assert scenario.to_json() == scenario.to_json()

    def test_unsupported_version_rejected(self):
        payload = generate_federated_scenario(11).to_dict()
        payload["version"] = 999
        with pytest.raises(ValueError):
            FederatedScenario.from_dict(payload)


class TestProjection:
    def test_projection_keeps_registration_order(self):
        scenario = generate_federated_scenario(13, exchanges=2, participants=7)
        for exchange in scenario.exchanges:
            projection = scenario.project(exchange)
            expected = [spec.name
                        for spec in scenario.participants_at(exchange)]
            assert [p.name for p in projection.participants] == expected

    def test_projection_restricts_state_to_the_exchange(self):
        scenario = loop_scenario()
        projection = scenario.project("IXP-A")
        assert [a.participant for a in projection.announcements] == ["West"]
        assert [p.participant for p in projection.policies] == ["East"]

    def test_projection_rejects_unknown_exchange(self):
        with pytest.raises(KeyError):
            loop_scenario().project("IXP-Z")

    def test_projection_ports_match_controller_registration(self):
        scenario = generate_federated_scenario(17, exchanges=2, participants=6)
        federation = scenario.build_controller(with_dataplane=False)
        for exchange in scenario.exchanges:
            projection = scenario.project(exchange)
            member = federation.exchange(exchange)
            for spec in projection.participants:
                handle = member.participant(spec.name)
                assert len(handle.participant.router.ports) == spec.ports


class TestWrapScenario:
    def test_wrap_preserves_structure(self):
        single = generate_scenario(3, participants=4)
        wrapped = wrap_scenario(single)
        assert wrapped.exchanges == ("IXP-A",)
        assert wrapped.participant_names() == tuple(
            p.name for p in single.participants)
        assert wrapped.owners == ()
        assert all(len(spec.exchanges) == 1 for spec in wrapped.participants)

    def test_wrap_projection_is_the_original(self):
        single = generate_scenario(3, participants=4, steps=4)
        projection = wrap_scenario(single).project("IXP-A")
        # Everything except the derived seed survives the round trip.
        assert dataclasses.replace(projection, seed=single.seed) == single


class TestCorpus:
    def test_corpus_is_deterministic_and_deduplicated(self):
        scenario = generate_federated_scenario(19, exchanges=2, participants=6)
        first = generate_federated_corpus(scenario, size=8)
        second = generate_federated_corpus(scenario, size=8)
        assert first == second
        keys = [tuple(sorted((k, str(v)) for k, v in packet.items()))
                for packet in first]
        assert len(keys) == len(set(keys))

    def test_corpus_probes_every_exchange_prefix(self):
        scenario = clean_scenario()
        corpus = generate_federated_corpus(scenario, size=6)
        assert corpus
