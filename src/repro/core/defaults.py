"""Transformation 3: default forwarding along the best BGP route.

Every packet enters the fabric with a destination MAC that encodes where
BGP would send it (Section 4.1/4.2):

* packets for *policy-touched* prefixes carry the **VMAC** of their prefix
  group (the border router learned a virtual next hop); the default rule
  for the group forwards to the group's default next-hop participant;
* packets for *untouched* prefixes carry the **real MAC** of the next-hop
  router port (the route server left the next hop unchanged); one
  MAC-learning rule per physical port forwards them.

Default next hops are shared across ingress participants whenever the
route server would pick the same best route for everyone — only the
exceptions (typically the best route's own announcer, plus participants
excluded by export filters) get per-ingress rules, which keeps the
default table linear in groups + ports instead of groups × participants.

Both rule families forward to the *virtual* port of the next-hop
participant, so that participant's inbound policies still apply before
final delivery. All output is in clause form (:mod:`repro.core.clauses`)
so the compiler's single clause-to-rules path handles policies and
defaults identically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence

from repro.bgp.routeserver import RouteServer
from repro.core.clauses import Clause
from repro.core.fec import PrefixGroup
from repro.core.participant import Participant
from repro.core.vnh import VnhAllocator
from repro.core.vswitch import VirtualTopology
from repro.policy.policies import Conjunction, match
from repro.policy.predicates import match_any_value


def default_next_hop(group: PrefixGroup, participant: str,
                     route_server: RouteServer) -> Optional[str]:
    """The participant's default next hop for a prefix group.

    Computed as the route server's best-route selection for the group's
    representative prefix — sound because grouping guarantees identical
    selection (same ranking, same export behaviour) for every member.
    """
    best = route_server.best_route_for(participant, group.representative)
    return None if best is None else best.learned_from


@dataclass
class DefaultForwarding:
    """The two priority layers of the default-forwarding policy."""

    #: Per-(ingress, group) overrides; must shadow the shared layer.
    exceptions: List[Clause]
    #: Ingress-wildcard per-group clauses plus per-port MAC-learning clauses.
    shared: List[Clause]

    @property
    def clause_count(self) -> int:
        """Total number of default clauses (for table-size accounting)."""
        return len(self.exceptions) + len(self.shared)


def _mac_learning_clauses(participants: Sequence[Participant],
                          topology: VirtualTopology,
                          guard=None) -> Iterable[Clause]:
    """One clause per physical port: real next-hop MAC → owner's vswitch."""
    for participant in participants:
        if participant.is_remote:
            continue
        for port in participant.router.ports:
            predicate = match(dstmac=port.mac)
            if guard is not None:
                predicate = Conjunction((guard, predicate))
            yield Clause(predicate=predicate,
                         target=topology.vport(participant.name))


def build_default_forwarding(participants: Sequence[Participant],
                             groups: Sequence[PrefixGroup],
                             allocator: VnhAllocator,
                             topology: VirtualTopology,
                             route_server: RouteServer) -> DefaultForwarding:
    """Build the shared default-forwarding clauses for the current state."""
    exceptions: List[Clause] = []
    shared: List[Clause] = []
    physical = [p for p in participants if not p.is_remote]

    for group in groups:
        vmac = allocator.vmac_for_group(group.group_id)
        ranking = group.ranked_announcers
        common = ranking[0] if ranking else None
        if common is not None:
            shared.append(Clause(predicate=match(dstmac=vmac),
                                 target=topology.vport(common)))
        # Participants whose best differs from the shared choice: always
        # the common announcer itself; everyone when it restricts exports.
        if common is None:
            candidates: Iterable[Participant] = ()
        elif route_server.has_export_restrictions(common):
            candidates = physical
        else:
            candidates = [p for p in physical if p.name == common]
        for participant in candidates:
            specific = default_next_hop(group, participant.name, route_server)
            if specific == common:
                continue
            predicate = Conjunction((
                match_any_value("port", participant.switch_ports),
                match(dstmac=vmac)))
            if specific is None:
                exceptions.append(Clause(predicate=predicate, drops=True))
            else:
                exceptions.append(Clause(
                    predicate=predicate, target=topology.vport(specific)))

    shared.extend(_mac_learning_clauses(physical, topology))
    return DefaultForwarding(exceptions=exceptions, shared=shared)


def build_participant_defaults(participant: Participant,
                               participants: Sequence[Participant],
                               groups: Sequence[PrefixGroup],
                               allocator: VnhAllocator,
                               topology: VirtualTopology,
                               route_server: RouteServer) -> List[Clause]:
    """One participant's fully ingress-guarded default clauses.

    This is the paper's literal ``defA`` construction (Section 4.1): every
    clause matches the participant's own ports, so the naive composition
    path can parallel-compose participants without cross-talk. The price
    is groups × participants total clauses — the redundancy the shared
    layer of :func:`build_default_forwarding` eliminates.
    """
    guard = match_any_value("port", participant.switch_ports)
    clauses: List[Clause] = []
    for group in groups:
        vmac = allocator.vmac_for_group(group.group_id)
        next_hop = default_next_hop(group, participant.name, route_server)
        predicate = Conjunction((guard, match(dstmac=vmac)))
        if next_hop is None:
            clauses.append(Clause(predicate=predicate, drops=True))
        else:
            clauses.append(Clause(predicate=predicate,
                                  target=topology.vport(next_hop)))
    clauses.extend(_mac_learning_clauses(
        [p for p in participants if not p.is_remote], topology, guard=guard))
    return clauses
