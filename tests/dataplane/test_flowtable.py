"""Tests for the priority flow table."""

from repro.net.packet import Packet
from repro.policy.classifier import Action
from repro.policy.flowrules import FlowRule
from repro.policy.headerspace import WILDCARD, HeaderSpace
from repro.policy.policies import fwd, match
from repro.dataplane.flowtable import FlowTable


def rule(priority, actions=(), **constraints):
    return FlowRule(priority=priority, match=HeaderSpace(**constraints), actions=actions)


class TestInstallation:
    def test_install_orders_by_priority(self):
        table = FlowTable()
        table.install(rule(1))
        table.install(rule(5, dstport=80))
        table.install(rule(3, dstport=443))
        assert [r.priority for r in table.rules] == [5, 3, 1]

    def test_equal_priority_keeps_insertion_order(self):
        table = FlowTable()
        first = rule(5, (Action(port=1),), dstport=80)
        second = rule(5, (Action(port=2),), dstport=80)
        table.install(first)
        table.install(second)
        assert table.rules == (first, second)

    def test_install_classifier(self):
        table = FlowTable()
        installed = table.install_classifier((match(dstport=80) >> fwd(2)).compile())
        assert installed == len(table)

    def test_replace_with_swaps_table(self):
        table = FlowTable()
        table.install(rule(9))
        table.replace_with(fwd(2).compile())
        assert all(r.actions == (Action(port=2),) for r in table.rules)

    def test_remove_where(self):
        table = FlowTable()
        table.install(rule(5, (Action(port=1),)))
        table.install(rule(9, (Action(port=2),)))
        removed = table.remove_where(lambda r: r.priority > 6)
        assert removed == 1
        assert len(table) == 1

    def test_generation_bumps_on_mutation(self):
        table = FlowTable()
        start = table.generation
        table.install(rule(1))
        table.clear()
        assert table.generation == start + 2


class TestProcessing:
    def test_first_match_by_priority(self):
        table = FlowTable()
        table.install(rule(1, (Action(port=9),)))
        table.install(rule(5, (Action(port=2),), dstport=80))
        assert table.process(Packet(port=1, dstport=80)) == (Packet(port=2, dstport=80),)
        assert table.process(Packet(port=1, dstport=22)) == (Packet(port=9, dstport=22),)

    def test_table_miss_drops(self):
        table = FlowTable()
        table.install(rule(5, (Action(port=2),), dstport=80))
        assert table.process(Packet(port=1, dstport=22)) == ()

    def test_drop_rule(self):
        table = FlowTable()
        table.install(rule(5, (), dstport=80))
        assert table.process(Packet(port=1, dstport=80)) == ()

    def test_counters(self):
        table = FlowTable()
        web = rule(5, (Action(port=2),), dstport=80)
        table.install(web)
        table.process(Packet(port=1, dstport=80))
        table.process(Packet(port=1, dstport=80))
        assert table.packets_matched(web) == 2

    def test_lookup_returns_none_on_miss(self):
        assert FlowTable().lookup(Packet(port=1)) is None

    def test_render_contains_priorities(self):
        table = FlowTable()
        table.install(rule(5, (Action(port=2),), dstport=80))
        assert "priority=5" in table.render()
