"""BGP path attributes carried with every announcement."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import FrozenSet, Tuple

from repro.bgp.asn import AsPath
from repro.exceptions import BgpError
from repro.net.addresses import IPv4Address

#: Default LOCAL_PREF when a neighbour does not set one (RFC 4271 suggests 100).
DEFAULT_LOCAL_PREF = 100


class Origin(enum.IntEnum):
    """The ORIGIN attribute; lower is preferred by the decision process."""

    IGP = 0
    EGP = 1
    INCOMPLETE = 2


#: A BGP community, conventionally written ``asn:value``.
Community = Tuple[int, int]


@dataclass(frozen=True)
class RouteAttributes:
    """The attribute bundle of one BGP route.

    Immutable — derive modified copies with the ``with_*`` helpers, which
    mirror how a route server rewrites attributes on re-advertisement.
    """

    next_hop: IPv4Address
    as_path: AsPath
    origin: Origin = Origin.IGP
    med: int = 0
    local_pref: int = DEFAULT_LOCAL_PREF
    communities: FrozenSet[Community] = field(default_factory=frozenset)

    def __post_init__(self) -> None:
        if not isinstance(self.next_hop, IPv4Address):
            object.__setattr__(self, "next_hop", IPv4Address(self.next_hop))
        if self.med < 0:
            raise BgpError(f"MED must be non-negative, got {self.med}")
        if self.local_pref < 0:
            raise BgpError(f"LOCAL_PREF must be non-negative, got {self.local_pref}")

    def with_next_hop(self, next_hop: IPv4Address) -> "RouteAttributes":
        """A copy with the NEXT_HOP rewritten (used for VNH assignment)."""
        return replace(self, next_hop=IPv4Address(next_hop))

    def with_prepended(self, asn: int, count: int = 1) -> "RouteAttributes":
        """A copy with ``asn`` prepended to the AS path."""
        return replace(self, as_path=self.as_path.prepend(asn, count))

    def with_local_pref(self, local_pref: int) -> "RouteAttributes":
        """A copy with a different LOCAL_PREF."""
        return replace(self, local_pref=local_pref)

    def with_communities(self, communities: FrozenSet[Community]) -> "RouteAttributes":
        """A copy carrying a different community set."""
        return replace(self, communities=frozenset(communities))

    def has_community(self, community: Community) -> bool:
        """True if the route carries ``community``."""
        return community in self.communities

    def __repr__(self) -> str:
        return (f"RouteAttributes(nh={self.next_hop}, path=[{self.as_path}], "
                f"lp={self.local_pref}, med={self.med}, origin={self.origin.name})")
