"""Uniform seeding for every workload generator.

All generators in :mod:`repro.workloads` (and the fuzzing scenarios in
:mod:`repro.verification`) accept a ``seed`` that is either a plain
``int`` or an already-constructed :class:`random.Random`. Integers are
the replayable form — the same integer always yields the same output,
across processes and platforms — while passing a ``Random`` instance
lets callers chain several generators off one master stream.

:func:`make_rng` is the single conversion point. Generators that
historically XOR-ed a salt into their integer seeds (so that, e.g., the
trace generator and the traffic generator fed the same seed do not walk
in lockstep) keep those exact salts, preserving historical outputs for
integer seeds.

None of the generators touch the global :mod:`random` state in either
direction: reseeding ``random`` never changes their output, and running
them never perturbs unrelated code.
"""

from __future__ import annotations

import random
from typing import Optional, Union

#: What generators accept as a seed: a replayable integer, a caller-owned
#: stream, or ``None`` for the documented default of ``0``.
SeedLike = Union[int, random.Random, None]


def make_rng(seed: SeedLike, *, salt: int = 0) -> random.Random:
    """A :class:`random.Random` for ``seed``.

    * ``int`` — a fresh ``Random(seed ^ salt)``; the ``salt`` decorrelates
      generators that are routinely fed the same integer.
    * :class:`random.Random` — returned as-is (the salt is ignored; the
      caller owns the stream and its decorrelation).
    * ``None`` — treated as integer ``0``.
    """
    if seed is None:
        seed = 0
    if isinstance(seed, random.Random):
        return seed
    if isinstance(seed, bool) or not isinstance(seed, int):
        raise TypeError(
            f"seed must be an int or random.Random, got {type(seed).__name__}")
    return random.Random(seed ^ salt)


def derive_seed(seed: SeedLike, label: str, *, salt: int = 0) -> int:
    """A stable integer sub-seed for the stream named ``label``.

    Folds ``label`` into ``seed`` with a small deterministic hash (not
    Python's randomised ``hash``), so distinct labels yield decorrelated
    but fully reproducible child seeds. When ``seed`` is a ``Random``
    instance the child seed is drawn from it instead.
    """
    if isinstance(seed, random.Random):
        return seed.getrandbits(63)
    if seed is None:
        seed = 0
    folded = (seed ^ salt) & 0x7FFFFFFFFFFFFFFF
    for char in label:
        folded = (folded * 1_000_003 + ord(char)) & 0x7FFFFFFFFFFFFFFF
    return folded
