"""The flow-level traffic simulator behind the Figure 5 experiments.

The paper's deployment drives three 1 Mbps UDP flows through a Mininet
fabric and plots, per second, how much traffic each path carries while
policies are installed and routes withdrawn. This simulator does the
same against the simulated fabric: each second, every active flow's
representative packet is pushed through its source's border router and
the switch, and the delivery (or drop) is attributed to a series.

Timed actions fire exactly once when the clock passes their timestamp —
the mechanism used to install the application-specific peering policy at
t=565 s and withdraw the route at t=1253 s in Figure 5a.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.controller import SdxController
from repro.dataplane.fabric import Delivery
from repro.experiments.metrics import Series
from repro.net.packet import Packet

#: Labels a delivery for series attribution (default: egress participant).
DeliveryClassifier = Callable[[Delivery], str]

#: The label used for dropped traffic.
DROPPED = "dropped"


@dataclass
class FlowSpec:
    """One constant-rate flow sourced inside a participant's AS."""

    name: str
    source: str
    packet: Packet
    rate_mbps: float = 1.0
    start: float = 0.0
    end: Optional[float] = None

    def active_at(self, time: float) -> bool:
        """True if the flow transmits at ``time``."""
        if time < self.start:
            return False
        return self.end is None or time < self.end


@dataclass
class TimedAction:
    """A controller mutation applied once at a given time."""

    time: float
    label: str
    apply: Callable[[SdxController], None]
    fired: bool = False


class TrafficSimulation:
    """Second-granularity traffic replay against a live controller."""

    def __init__(self, controller: SdxController, flows: Sequence[FlowSpec],
                 actions: Sequence[TimedAction] = (),
                 classify: Optional[DeliveryClassifier] = None,
                 step_seconds: float = 1.0):
        if controller.fabric is None:
            raise ValueError("traffic simulation needs a data-plane controller")
        self.controller = controller
        self.flows = list(flows)
        self.actions = sorted(actions, key=lambda action: action.time)
        self.classify = classify or (lambda delivery: delivery.participant)
        self.step_seconds = step_seconds
        self.event_log: List[Tuple[float, str]] = []

    def run(self, duration: float) -> Dict[str, Series]:
        """Simulate ``duration`` seconds; returns one series per label.

        Every label observed at any point is reported with an explicit 0
        at steps where it carried nothing, so plots show the drops.
        """
        raw: List[Tuple[float, Dict[str, float]]] = []
        labels: List[str] = []
        clock = 0.0
        while clock < duration:
            for action in self.actions:
                if not action.fired and action.time <= clock:
                    action.apply(self.controller)
                    action.fired = True
                    self.event_log.append((clock, action.label))
            rates: Dict[str, float] = {}
            for flow in self.flows:
                if not flow.active_at(clock):
                    continue
                deliveries = self.controller.send(flow.source, flow.packet)
                accepted = [d for d in deliveries if d.accepted]
                if not accepted:
                    label = DROPPED
                else:
                    label = self.classify(accepted[0])
                rates[label] = rates.get(label, 0.0) + flow.rate_mbps
                if label not in labels:
                    labels.append(label)
            raw.append((clock, rates))
            clock += self.step_seconds
        series = {label: Series(label=label) for label in labels}
        for time_point, rates in raw:
            for label in labels:
                series[label].add(time_point, rates.get(label, 0.0))
        return series
