"""Tests for the policy-interaction analysis tooling."""

import pytest

from repro.core.analysis import analyze_sdx, find_clause_overlaps
from repro.policy.policies import drop, fwd, match

from tests.core.scenarios import figure1_controller
from tests.core.test_participant import physical


class TestFindClauseOverlaps:
    def test_disjoint_clauses_no_overlap(self):
        participant = physical()
        participant.add_outbound((match(dstport=80) >> fwd("B"))
                                 + (match(dstport=443) >> fwd("C")))
        assert find_clause_overlaps(participant) == []

    def test_overlapping_clauses_detected_with_witness(self):
        participant = physical()
        participant.add_outbound(match(dstport=80) >> fwd("B"))
        participant.add_outbound(match(srcip="10.0.0.0/8") >> fwd("C"))
        overlaps = find_clause_overlaps(participant)
        assert len(overlaps) == 1
        overlap = overlaps[0]
        assert (overlap.winner_index, overlap.loser_index) == (0, 1)
        assert overlap.exact
        # The witness genuinely matches both clauses.
        clauses = participant.outbound_clauses()
        assert clauses[0].predicate.holds(overlap.witness)
        assert clauses[1].predicate.holds(overlap.witness)
        assert "shadows" in overlap.describe()

    def test_nested_prefix_overlap(self):
        participant = physical()
        participant.add_outbound(match(dstip="20.0.0.0/8") >> fwd("B"))
        participant.add_outbound(match(dstip="20.1.0.0/16") >> fwd("C"))
        overlaps = find_clause_overlaps(participant)
        assert len(overlaps) == 1

    def test_drop_clause_participates(self):
        participant = physical()
        participant.add_outbound(match(dstport=80) >> fwd("B"))
        participant.add_outbound(match(dstport=80) >> drop)
        assert len(find_clause_overlaps(participant)) == 1

    def test_negation_reported_as_possible(self):
        participant = physical()
        participant.add_outbound((match(dstport=80) & ~match(srcport=22))
                                 >> fwd("B"))
        participant.add_outbound(match(dstport=80) >> fwd("C"))
        overlaps = find_clause_overlaps(participant)
        assert len(overlaps) == 1
        assert not overlaps[0].exact

    def test_inbound_direction(self):
        participant = physical(ports=(1, 2))
        participant.add_inbound(match(srcip="0.0.0.0/1") >> fwd(1))
        participant.add_inbound(match(srcip="0.0.0.0/2") >> fwd(2))
        overlaps = find_clause_overlaps(participant, "in")
        assert len(overlaps) == 1
        assert overlaps[0].direction == "in"

    def test_bad_direction_rejected(self):
        with pytest.raises(ValueError):
            find_clause_overlaps(physical(), "sideways")


class TestAnalyzeSdx:
    def test_figure1_report(self):
        sdx, *_ = figure1_controller()
        sdx.start()
        report = analyze_sdx(sdx)
        names = [r.name for r in report.participants]
        assert names == ["A", "B"]  # only policy holders appear
        a_report = report.participants[0]
        assert a_report.outbound_clauses == 2
        assert a_report.targets == ("B", "C")
        assert a_report.eligible_prefixes["B"] == 3   # p1..p3
        assert a_report.eligible_prefixes["C"] == 4   # p1..p4
        assert report.total_overlaps == 0
        rendered = report.render()
        assert "A: 2 outbound" in rendered
        assert "eligible via B: 3 prefixes" in rendered

    def test_overlap_surfaces_in_report(self):
        sdx, a, *_ = figure1_controller()
        sdx.start()
        a.add_outbound(match(srcip="10.0.0.0/8") >> fwd("C"))
        report = analyze_sdx(sdx)
        assert report.total_overlaps >= 1
        assert "!" in report.render()

    def test_empty_exchange(self):
        sdx, *_ = figure1_controller(with_policies=False)
        report = analyze_sdx(sdx)
        assert report.participants == []
        assert report.render() == "(no policies installed)"
