"""Clause-form normalisation of participant policies.

Every SDX policy in the paper is a sum of guarded clauses::

    (match(dstport=80) >> fwd(B)) + (match(dstport=443) >> fwd(C))

Normalising to that form before compilation buys two things:

* **Exact default fall-through.** The paper combines a policy with its
  BGP defaults via ``if_(matched, policy, default)``; a clause's match
  predicate *is* the "matched" condition, so traffic failing the
  predicate (or the BGP eligibility guard) falls through to the default
  layer precisely, and an explicit ``match(...) >> drop`` clause still
  shadows it.
* **Cheap composition.** Clauses compile to small classifiers that stack
  by priority, with no cross products between a participant's own
  clauses.

Supported surface forms: parallel sums distribute; sequential chains are
``predicates… >> modifications… >> (fwd | drop)``; ``match`` predicates
may use the full predicate algebra (``&``, ``|``, ``~``,
``match_any_prefix``). A bare ``drop`` or ``identity`` summand is inert,
matching parallel-composition semantics. Matching *after* a modification
is rejected (write the post-state into the predicate instead).

Overlapping clauses of one participant resolve by priority (earlier
clause wins) rather than Pyretic's multicast union — the paper's
workloads assume unicast, mutually disjoint clauses, and the controller
keeps that behaviour predictable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.exceptions import PolicyError
from repro.policy.policies import (
    Drop,
    Forward,
    Identity,
    Modify,
    Parallel,
    Policy,
    PortRef,
    Predicate,
    Sequential,
    identity,
)


@dataclass(frozen=True)
class Clause:
    """One normalised policy clause: predicate, rewrites, disposition."""

    predicate: Predicate
    modifications: Tuple[Tuple[str, Any], ...] = ()
    target: Optional[PortRef] = None
    drops: bool = False

    @property
    def has_action(self) -> bool:
        """True if the clause rewrites, forwards, or drops."""
        return bool(self.modifications) or self.target is not None or self.drops

    def describe(self) -> str:
        """A compact human-readable rendering."""
        parts = [repr(self.predicate)]
        for name, value in self.modifications:
            parts.append(f"mod({name}={value!s})")
        if self.drops:
            parts.append("drop")
        elif self.target is not None:
            parts.append(f"fwd({self.target!r})")
        return " >> ".join(parts)


def clause_dstip(predicate: "Predicate"):
    """The destination prefix a predicate pins down, if determinable.

    Returns the intersection of every positive ``dstip`` constraint in a
    conjunction, or ``None`` when the predicate does not constrain
    ``dstip`` conjunctively (disjunctions and negations give up — callers
    must then assume the whole address space). The compiler uses this to
    emit eligibility guards only for prefix groups the clause can reach.
    """
    from repro.policy.policies import Conjunction, Match

    if isinstance(predicate, Match):
        return predicate.space.get("dstip")
    if isinstance(predicate, Conjunction):
        found = None
        for part in predicate.parts:
            constraint = clause_dstip(part)
            if constraint is None:
                continue
            if found is None:
                found = constraint
            else:
                merged = found.intersection(constraint)
                if merged is None:
                    return constraint  # unsatisfiable; any answer is safe
                found = merged
        return found
    return None


def normalize_policy(policy: Policy) -> List[Clause]:
    """Flatten a policy tree into an ordered list of clauses.

    Raises :class:`~repro.exceptions.PolicyError` for shapes outside the
    supported fragment (see module docstring).
    """
    return _normalize(policy)


def _normalize(policy: Policy) -> List[Clause]:
    if isinstance(policy, Parallel):
        clauses: List[Clause] = []
        for part in policy.parts:
            clauses.extend(_normalize(part))
        return clauses
    if isinstance(policy, Sequential):
        return _normalize_chain(list(policy.parts))
    return _normalize_chain([policy])


def _normalize_chain(parts: List[Policy]) -> List[Clause]:
    # Distribute over the first Parallel, keeping surrounding context.
    for index, part in enumerate(parts):
        if isinstance(part, Parallel):
            clauses: List[Clause] = []
            for branch in part.parts:
                expanded = parts[:index] + [branch] + parts[index + 1:]
                clauses.extend(_normalize_chain(expanded))
            return clauses
        if isinstance(part, Sequential):
            flattened = parts[:index] + list(part.parts) + parts[index + 1:]
            return _normalize_chain(flattened)

    predicates: List[Predicate] = []
    modifications: Dict[str, Any] = {}
    target: Optional[PortRef] = None
    drops = False
    seen_action = False

    for part in parts:
        if isinstance(part, (Identity,)):
            continue
        if isinstance(part, Drop):
            drops = True
            seen_action = True
            continue
        if isinstance(part, Predicate):
            if seen_action:
                raise PolicyError(
                    f"match after a modification/forward is unsupported: "
                    f"{part!r}; fold the condition into the leading predicate")
            if drops:
                raise PolicyError("nothing may follow drop in a clause")
            predicates.append(part)
            continue
        if isinstance(part, Modify):
            if drops:
                raise PolicyError("nothing may follow drop in a clause")
            seen_action = True
            modifications.update(part.action)
            continue
        if isinstance(part, Forward):
            if drops:
                raise PolicyError("nothing may follow drop in a clause")
            if target is not None:
                raise PolicyError(
                    f"clause has two forwarding targets ({target!r} and "
                    f"{part.port!r}); SDX clauses are unicast")
            seen_action = True
            target = part.port
            continue
        raise PolicyError(f"unsupported policy element in clause: {part!r}")

    if drops and (modifications or target is not None):
        raise PolicyError("a dropping clause cannot also modify or forward")

    if not predicates:
        predicate: Predicate = identity
    elif len(predicates) == 1:
        predicate = predicates[0]
    else:
        from repro.policy.policies import Conjunction
        predicate = Conjunction(tuple(predicates))

    clause = Clause(
        predicate=predicate,
        modifications=tuple(sorted(modifications.items())),
        target=target,
        drops=drops)
    if not clause.has_action and isinstance(predicate, Identity):
        # `identity` or an empty chain: inert under parallel composition.
        return []
    if clause.drops and isinstance(predicate, Identity):
        # A bare `drop` summand contributes nothing under parallel
        # composition; explicit blocking must carry a predicate.
        return []
    return [clause]
