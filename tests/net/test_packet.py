"""Unit tests for the located-packet model."""

import pytest

from repro.exceptions import FieldError
from repro.net.addresses import IPv4Address
from repro.net.mac import MacAddress
from repro.net.packet import (
    ETHTYPE_IPV4,
    PROTO_TCP,
    Packet,
    check_field,
    coerce_field_value,
)


class TestFieldRegistry:
    def test_check_field_accepts_known(self):
        assert check_field("dstport") == "dstport"

    def test_check_field_rejects_unknown(self):
        with pytest.raises(FieldError):
            check_field("vlan")

    def test_coerce_ip_fields(self):
        assert coerce_field_value("srcip", "10.0.0.1") == IPv4Address("10.0.0.1")

    def test_coerce_mac_fields(self):
        value = coerce_field_value("dstmac", "00:11:22:33:44:55")
        assert value == MacAddress("00:11:22:33:44:55")

    def test_coerce_int_fields(self):
        assert coerce_field_value("dstport", 80) == 80

    def test_coerce_rejects_bool_and_text(self):
        with pytest.raises(FieldError):
            coerce_field_value("dstport", True)
        with pytest.raises(FieldError):
            coerce_field_value("dstport", "80")

    def test_coerce_none_passes_through(self):
        assert coerce_field_value("dstport", None) is None


class TestPacket:
    def test_reads_fields(self):
        pkt = Packet(port=1, dstport=80, ethtype=ETHTYPE_IPV4, protocol=PROTO_TCP)
        assert pkt["dstport"] == 80
        assert pkt.port == 1

    def test_unknown_field_rejected_at_construction(self):
        with pytest.raises(FieldError):
            Packet(vlan=10)

    def test_missing_field_raises_on_index(self):
        with pytest.raises(FieldError):
            Packet(port=1)["dstport"]

    def test_get_returns_default(self):
        assert Packet(port=1).get("dstport") is None
        assert Packet(port=1).get("dstport", 0) == 0

    def test_get_rejects_unknown_field(self):
        with pytest.raises(FieldError):
            Packet(port=1).get("vlan")

    def test_none_fields_are_unset(self):
        pkt = Packet(port=1, dstport=None)
        assert "dstport" not in pkt

    def test_modify_returns_new_packet(self):
        original = Packet(port=1, dstport=80)
        moved = original.modify(port=2)
        assert moved["port"] == 2
        assert original["port"] == 1

    def test_modify_with_none_removes_field(self):
        pkt = Packet(port=1, dstport=80).modify(dstport=None)
        assert "dstport" not in pkt

    def test_at_port(self):
        assert Packet(port=1).at_port(7).port == 7

    def test_coerces_address_fields(self):
        pkt = Packet(srcip="10.0.0.1", dstmac="00:11:22:33:44:55")
        assert isinstance(pkt["srcip"], IPv4Address)
        assert isinstance(pkt["dstmac"], MacAddress)

    def test_equality_and_hash(self):
        left = Packet(port=1, srcip="10.0.0.1")
        right = Packet(srcip="10.0.0.1", port=1)
        assert left == right
        assert hash(left) == hash(right)
        assert len({left, right}) == 1

    def test_mapping_interface(self):
        pkt = Packet(port=1, dstport=80)
        assert set(pkt) == {"port", "dstport"}
        assert len(pkt) == 2

    def test_repr_is_sorted_and_stable(self):
        pkt = Packet(srcport=1234, dstport=80)
        assert repr(pkt) == "Packet(dstport=80, srcport=1234)"
