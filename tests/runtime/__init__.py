"""Tests for the control-plane runtime package."""
