"""The coalescing update queue feeding the southbound engine.

BGP bursts make the incremental engine emit several deltas for the same
rule keys back to back (a prefix flaps, its ephemeral rules are added,
replaced, then reclaimed). Sending each mod verbatim wastes switch
FlowMod budget, so the queue keeps *one pending mod per rule key* and
algebraically merges every new mod into it:

==============  ===========  ================================
pending         incoming     result
==============  ===========  ================================
ADD             MODIFY       ADD (new actions — not yet installed)
ADD             DELETE       *nothing* (the rule never hits the switch)
MODIFY          MODIFY       MODIFY (latest actions win)
MODIFY          DELETE       DELETE
DELETE          ADD/MODIFY   MODIFY (remove + reinstall ≡ rewrite)
any             same op      latest wins
==============  ===========  ================================

The queue never reorders across *keys*; the engine's two-phase scheduler
owns ordering at flush time. ``max_pending`` bounds queue growth — once
exceeded, :attr:`UpdateQueue.needs_flush` turns true and the engine
flushes synchronously, which is how backpressure manifests under bursts.
"""

from __future__ import annotations

from typing import Dict, List

from repro.southbound.diff import FlowMod, FlowModOp, RuleKey


class UpdateQueue:
    """Pending FlowMods, coalesced per rule key, in arrival order."""

    def __init__(self, max_pending: int = 4096):
        if max_pending < 1:
            raise ValueError("max_pending must be positive")
        self.max_pending = max_pending
        self._pending: Dict[RuleKey, FlowMod] = {}
        self.enqueued = 0
        self.coalesced = 0

    def __len__(self) -> int:
        return len(self._pending)

    @property
    def needs_flush(self) -> bool:
        """True once the pending set exceeds ``max_pending`` (backpressure)."""
        return len(self._pending) >= self.max_pending

    def enqueue(self, mod: FlowMod) -> None:
        """Add one mod, merging with any pending mod for the same key."""
        self.enqueued += 1
        key = mod.key
        pending = self._pending.get(key)
        if pending is None:
            self._pending[key] = mod
            return
        self.coalesced += 1
        merged = self._merge(pending, mod)
        if merged is None:
            # ADD followed by DELETE: the rule never reaches the switch,
            # so *both* mods vanish (one extra send saved).
            self.coalesced += 1
            del self._pending[key]
        else:
            self._pending[key] = merged

    def enqueue_many(self, mods) -> None:
        """Enqueue an iterable of mods in order."""
        for mod in mods:
            self.enqueue(mod)

    @staticmethod
    def _merge(pending: FlowMod, incoming: FlowMod) -> "FlowMod | None":
        """The single mod equivalent to ``pending`` then ``incoming``."""
        if pending.op is FlowModOp.ADD:
            if incoming.op is FlowModOp.DELETE:
                return None
            # ADD then ADD/MODIFY: still an add, with the latest actions.
            return FlowMod(FlowModOp.ADD, incoming.priority, incoming.match,
                           incoming.actions)
        if pending.op is FlowModOp.MODIFY:
            if incoming.op is FlowModOp.DELETE:
                return incoming
            return FlowMod(FlowModOp.MODIFY, incoming.priority, incoming.match,
                           incoming.actions)
        # pending DELETE
        if incoming.op is FlowModOp.DELETE:
            return incoming
        # DELETE then ADD/MODIFY: the key stays installed with new actions.
        return FlowMod(FlowModOp.MODIFY, incoming.priority, incoming.match,
                       incoming.actions)

    def pending_mods(self) -> List[FlowMod]:
        """The pending mods (first-enqueued order), without draining."""
        return list(self._pending.values())

    def drain(self) -> List[FlowMod]:
        """Remove and return every pending mod (first-enqueued order)."""
        mods = list(self._pending.values())
        self._pending.clear()
        return mods

    def __repr__(self) -> str:
        return (f"UpdateQueue({len(self._pending)} pending, "
                f"{self.coalesced} coalesced)")
