"""Lightweight tracing spans threaded through the SDX update path.

A span marks one timed stage of the pipeline::

    with telemetry.span("compile.fec", prefixes=1500):
        groups = compute_prefix_groups(...)

Spans nest via a per-thread stack, so one BGP burst produces a connected
tree — ``bgp.ingest`` → ``bgp.decision`` / ``controller.update`` →
``fastpath.prefix`` → ``vnh.assign`` / ``compile.fastpath`` /
``southbound.push`` → ``flowtable.apply`` — that can be followed end to
end by span/parent IDs (the JSON export and ``repro trace`` render it).

Cost model: a *disabled* tracer returns a shared no-op handle (one
attribute read and a truth test per instrumentation point); an enabled
tracer pays two ``perf_counter()`` calls and one ring-buffer append per
span. Finished spans live in a bounded ring buffer — when it overflows,
the oldest span is evicted and the ``sdx_trace_spans_dropped_total``
counter records the loss instead of the process growing without bound.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

from repro.telemetry.registry import MetricsRegistry


@dataclass
class Span:
    """One finished (or in-flight) stage of the pipeline."""

    name: str
    span_id: int
    parent_id: Optional[int]
    trace_id: int
    start: float
    end: float = 0.0
    tags: Dict[str, object] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        """Wall-clock seconds the span covered."""
        return max(0.0, self.end - self.start)

    def to_dict(self) -> Dict[str, object]:
        """A JSON-serialisable view of the span."""
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "trace_id": self.trace_id,
            "start": self.start,
            "duration": self.duration,
            "tags": dict(self.tags),
        }

    def __repr__(self) -> str:
        return (f"Span({self.name}, id={self.span_id}, "
                f"parent={self.parent_id}, {self.duration * 1000:.3f} ms)")


class _NullHandle:
    """The no-op span handle a disabled tracer hands out."""

    __slots__ = ()

    def __enter__(self) -> "_NullHandle":
        return self

    def __exit__(self, *exc_info) -> None:
        return None

    def set_tag(self, **tags: object) -> None:
        """Discard tags (tracing is disabled)."""
        return None


_NULL_HANDLE = _NullHandle()


class _SpanHandle:
    """Context manager that opens a span on entry and closes it on exit."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", name: str, tags: Dict[str, object]):
        self._tracer = tracer
        self._span = Span(
            name=name, span_id=0, parent_id=None, trace_id=0,
            start=0.0, tags=tags)

    def set_tag(self, **tags: object) -> None:
        """Attach tags to the open span (e.g. a result count)."""
        self._span.tags.update(tags)

    def __enter__(self) -> "_SpanHandle":
        self._tracer._open(self._span)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self._span.tags.setdefault("error", exc_type.__name__)
        self._tracer._close(self._span)
        return None


class Tracer:
    """Produces spans and keeps the bounded buffer of finished ones."""

    def __init__(self, capacity: int = 8192, enabled: bool = True,
                 registry: Optional[MetricsRegistry] = None):
        if capacity < 1:
            raise ValueError("tracer capacity must be positive")
        self.capacity = capacity
        self.enabled = enabled
        self._epoch = time.perf_counter()
        self._ids = itertools.count(1)
        self._local = threading.local()
        self._finished: Deque[Span] = deque()
        self._lock = threading.Lock()
        self._listeners: Tuple[object, ...] = ()
        self.spans_dropped = 0
        self._spans_counter = None
        self._dropped_counter = None
        if registry is not None:
            self._spans_counter = registry.counter(
                "sdx_trace_spans_total", "Spans finished by the tracer")
            self._dropped_counter = registry.counter(
                "sdx_trace_spans_dropped_total",
                "Spans evicted from the full trace buffer")

    # ------------------------------------------------------------------
    # Producing spans
    # ------------------------------------------------------------------

    def span(self, name: str, **tags: object) -> "_SpanHandle | _NullHandle":
        """A context manager timing one ``name`` stage.

        Returns a shared no-op handle when the tracer is disabled, so
        instrumentation points cost one branch in that configuration.
        """
        if not self.enabled:
            return _NULL_HANDLE
        return _SpanHandle(self, name, dict(tags))

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _open(self, span: Span) -> None:
        stack = self._stack()
        span.span_id = next(self._ids)
        if stack:
            span.parent_id = stack[-1].span_id
            span.trace_id = stack[-1].trace_id
        else:
            span.parent_id = None
            span.trace_id = span.span_id
        for listener in self._listeners:
            opened = getattr(listener, "span_opened", None)
            if opened is not None:
                opened(span)
        span.start = time.perf_counter() - self._epoch
        stack.append(span)

    def _close(self, span: Span) -> None:
        span.end = time.perf_counter() - self._epoch
        for listener in self._listeners:
            closed = getattr(listener, "span_closed", None)
            if closed is not None:
                closed(span)
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        else:  # pragma: no cover - misnested exit; recover conservatively
            while stack and stack[-1] is not span:
                stack.pop()
            if stack:
                stack.pop()
        with self._lock:
            if len(self._finished) >= self.capacity:
                self._finished.popleft()
                self.spans_dropped += 1
                if self._dropped_counter is not None:
                    self._dropped_counter.inc()
            self._finished.append(span)
        if self._spans_counter is not None:
            self._spans_counter.inc()

    @property
    def current_span(self) -> Optional[Span]:
        """The innermost open span on this thread, if any."""
        stack = getattr(self._local, "stack", None)
        return stack[-1] if stack else None

    # ------------------------------------------------------------------
    # Listeners
    # ------------------------------------------------------------------

    def add_listener(self, listener: object) -> None:
        """Attach a span lifecycle listener.

        A listener may define ``span_opened(span)`` (called just before
        the span's clock starts, with ids/parents assigned) and/or
        ``span_closed(span)`` (called right after the clock stops,
        before the span enters the finished buffer). The phase profiler
        rides these hooks to snapshot memory at span boundaries without
        the tracer knowing about :mod:`tracemalloc`.
        """
        if listener not in self._listeners:
            self._listeners = self._listeners + (listener,)

    def remove_listener(self, listener: object) -> None:
        """Detach a listener; unknown listeners are ignored."""
        self._listeners = tuple(
            existing for existing in self._listeners
            if existing is not listener)

    # ------------------------------------------------------------------
    # Reading spans back
    # ------------------------------------------------------------------

    def finished(self) -> Tuple[Span, ...]:
        """Every buffered finished span, oldest first."""
        with self._lock:
            return tuple(self._finished)

    def clear(self) -> None:
        """Drop buffered spans (loss counters are left alone)."""
        with self._lock:
            self._finished.clear()

    def span_tree(self) -> List[Dict[str, object]]:
        """The buffered spans as a forest of nested dicts.

        Children appear under their parent's ``"children"`` key in
        start order; spans whose parent was evicted from the buffer
        surface as roots so the forest always accounts for every span.
        """
        spans = self.finished()
        nodes = {span.span_id: {**span.to_dict(), "children": []}
                 for span in spans}
        roots: List[Dict[str, object]] = []
        for span in sorted(spans, key=lambda s: s.start):
            node = nodes[span.span_id]
            parent = (nodes.get(span.parent_id)
                      if span.parent_id is not None else None)
            if parent is not None:
                parent["children"].append(node)
            else:
                roots.append(node)
        return roots

    def render(self, max_spans: int = 200) -> str:
        """The span forest as an indented plain-text tree."""
        lines: List[str] = []

        def walk(node: Dict[str, object], depth: int) -> None:
            if len(lines) >= max_spans:
                return
            tags = node["tags"]
            extra = ("  " + " ".join(f"{k}={v}" for k, v in tags.items())
                     if tags else "")
            lines.append(
                f"{'  ' * depth}{node['name']}  "
                f"[{node['duration'] * 1000:.3f} ms]{extra}")
            for child in node["children"]:
                walk(child, depth + 1)

        for root in self.span_tree():
            walk(root, 0)
        if not lines:
            return "(no spans recorded)"
        if self.spans_dropped:
            lines.append(f"... ({self.spans_dropped} spans dropped "
                         f"from the buffer)")
        return "\n".join(lines)

    def __repr__(self) -> str:
        state = "enabled" if self.enabled else "disabled"
        return (f"Tracer({state}, {len(self._finished)} buffered, "
                f"{self.spans_dropped} dropped)")
