"""BGP substrate: messages, RIBs, decision process, and a route server.

The SDX integrates a BGP route server (Section 3.2): participants peer
with it exactly as they would with a conventional IXP route server, and
the SDX controller reads its state to (a) restrict participant policies to
BGP-advertised paths and (b) compute default forwarding. This subpackage
implements everything that requires — from wire-level update messages up
to the multi-participant route server with per-peer export control and
next-hop rewriting hooks.
"""

from repro.bgp.asn import AsPath, AsPathPattern
from repro.bgp.attributes import Origin, RouteAttributes
from repro.bgp.messages import Announcement, Update, Withdrawal
from repro.bgp.rib import AdjRibIn, PrefixTrie, RibView, RouteEntry
from repro.bgp.decision import best_route
from repro.bgp.session import BgpSession, SessionState
from repro.bgp.routeserver import BestRouteChange, RouteServer

__all__ = [
    "AdjRibIn",
    "Announcement",
    "AsPath",
    "AsPathPattern",
    "BestRouteChange",
    "BgpSession",
    "Origin",
    "PrefixTrie",
    "RibView",
    "RouteAttributes",
    "RouteEntry",
    "RouteServer",
    "SessionState",
    "Update",
    "Withdrawal",
    "best_route",
]
