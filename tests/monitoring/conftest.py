"""Shared fixtures for the monitoring tests.

A deliberately tiny exchange — one sender, two egress participants each
announcing one /8 — so every byte a test sends has an unambiguous FEC,
participant, and egress port to be attributed to.
"""

import pytest

from repro.bgp.asn import AsPath
from repro.core.controller import SdxController
from repro.net.addresses import IPv4Prefix
from repro.net.packet import Packet
from repro.policy.policies import fwd, match

EAST_PREFIX = IPv4Prefix("40.0.0.0/8")
WEST_PREFIX = IPv4Prefix("50.0.0.0/8")


def make_exchange():
    sdx = SdxController()
    sender = sdx.add_participant("Sender", 64500)
    sdx.add_participant("East", 64501)
    sdx.add_participant("West", 64502)
    sdx.announce_route("East", EAST_PREFIX, AsPath([64501, 100]))
    sdx.announce_route("West", WEST_PREFIX, AsPath([64502, 200]))
    # Per-prefix outbound policies give every prefix a FEC group and
    # keep the compiled rules' dstip constraints — the same baseline
    # shape the heavy-hitter steering app installs.
    sender.add_outbound(match(dstip=EAST_PREFIX) >> fwd("East"))
    sender.add_outbound(match(dstip=WEST_PREFIX) >> fwd("West"))
    sdx.start()
    return sdx


def send_bytes(sdx, prefix, size, *, srcport=1234):
    """Push ``size`` bytes toward ``prefix``'s first host; must deliver."""
    packet = Packet(dstip=prefix.first_address + 1, srcip="10.0.0.1",
                    dstport=80, srcport=srcport, protocol=6)
    deliveries = sdx.send("Sender", packet, size_bytes=size)
    assert any(delivery.accepted for delivery in deliveries)


@pytest.fixture
def sdx():
    return make_exchange()
