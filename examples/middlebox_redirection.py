#!/usr/bin/env python3
"""Middlebox redirection: steering suspect traffic through a scrubber.

When measurements suggest a DoS attack, an ISP today "hijacks" the
offending traffic with internal BGP tricks, pulling far more traffic than
necessary (Section 2). At an SDX the ISP redirects *exactly* the targeted
subset — here, UDP toward the victim prefix — through a scrubbing
middlebox, leaving everything else on its BGP path. The policy also uses
the AS-path RIB filter from Section 3.2 to group prefixes by origin.

Run with::

    python examples/middlebox_redirection.py
"""

from repro import SdxController, fwd, match
from repro.bgp.asn import AsPath
from repro.core.dynamic import rib_match
from repro.net.addresses import IPv4Prefix
from repro.net.packet import Packet


def build() -> SdxController:
    """The example exchange with the live redirection policy installed."""
    sdx = SdxController()
    isp = sdx.add_participant("ISP", 64500)
    sdx.add_participant("Victim", 64510)
    sdx.add_participant("Scrubber", 64520)

    target = IPv4Prefix("80.0.0.0/8")
    sdx.announce_route("Victim", target, AsPath([64510, 33010]))
    # The scrubber advertises the victim's space too (it tunnels cleaned
    # traffic onward), making it a BGP-eligible next hop.
    sdx.announce_route("Scrubber", target, AsPath([64520, 64510, 33010]))

    # Group every prefix originated by the victim's customer AS 33010
    # with a *live* AS-path filter: the set re-resolves on every
    # recompilation, so newly announced victim prefixes join the
    # redirection automatically (a snapshot via isp.filter_rib would not).
    # Redirect only UDP toward that space through the scrubber.
    isp.add_outbound(
        (rib_match("dstip", "as_path", r".*33010$") & match(protocol=17))
        >> fwd("Scrubber"))
    return sdx


def main() -> None:
    sdx = build()
    isp = sdx.participant("ISP")
    sdx.start()

    print(f"prefixes currently originated by AS 33010: "
          f"{[str(p) for p in isp.filter_rib('as_path', r'.*33010$')]}")

    attack = Packet(dstip="80.0.0.1", dstport=53, srcip="6.6.6.6", protocol=17)
    normal = Packet(dstip="80.0.0.1", dstport=443, srcip="9.9.9.9", protocol=6)
    print(f"UDP flood traffic egresses via: {sdx.egress_of('ISP', attack)}")
    print(f"normal TCP traffic egresses via: {sdx.egress_of('ISP', normal)}")

    print()
    print("attack subsides; removing the redirection ...")
    isp.clear_policies()
    print(f"UDP traffic egresses via: {sdx.egress_of('ISP', attack)}")


if __name__ == "__main__":
    main()
