"""Synthetic evaluation inputs calibrated to the paper's Section 6.

The authors drove their evaluation with RIPE RIS data from the three
largest IXPs (Table 1) and a policy generator parameterised by AS role
(Section 6.1). Neither the traces nor the exact generator are public, so
this package regenerates statistically equivalent inputs:

- :mod:`repro.workloads.datasets` — the Table 1 profiles (AMS-IX, DE-CIX,
  LINX) as data, with scaling support;
- :mod:`repro.workloads.routing` — prefix pools and AS-path synthesis;
- :mod:`repro.workloads.topology` — heavy-tailed synthetic IXPs ("1% of
  ASes announce >50% of prefixes");
- :mod:`repro.workloads.policies` — the eyeball/transit/content policy
  mix of Section 6.1;
- :mod:`repro.workloads.updates` — bursty BGP update traces matching the
  Section 4.3 measurements (75% of bursts ≤ 3 prefixes, inter-arrivals
  ≥ 10 s 75% of the time, 10-14% of prefixes ever updated).

Everything is seeded and deterministic.
"""

from repro.workloads.churn import (
    FAULT_KINDS,
    ChaosFault,
    ChaosSchedule,
    generate_chaos_schedule,
    generate_withdrawal_flood,
)
from repro.workloads.datasets import AMS_IX, DE_CIX, LINX, IxpProfile
from repro.workloads.routing import PrefixPool, synthesize_as_path
from repro.workloads.topology import ParticipantSpec, SyntheticIxp, generate_ixp
from repro.workloads.policies import PolicyAssignment, generate_policies
from repro.workloads.updates import (
    TraceEvent,
    TraceStats,
    generate_burst_trace,
    generate_trace,
)

__all__ = [
    "AMS_IX",
    "ChaosFault",
    "ChaosSchedule",
    "DE_CIX",
    "FAULT_KINDS",
    "IxpProfile",
    "LINX",
    "ParticipantSpec",
    "PolicyAssignment",
    "PrefixPool",
    "SyntheticIxp",
    "TraceEvent",
    "TraceStats",
    "generate_chaos_schedule",
    "generate_ixp",
    "generate_policies",
    "generate_withdrawal_flood",
    "generate_burst_trace",
    "generate_trace",
    "synthesize_as_path",
]
