"""The benchmark baseline store and regression comparison engine.

Baselines live under ``benchmarks/baselines/<family>-<mode>.json`` as
schema-versioned JSON: an environment fingerprint (python version, CPU
count, hostname hash, bench scale) plus one entry per metric with its
recorded value, tolerance band, and direction. ``repro bench compare``
re-runs the family and diffs each measured metric against its band:

- ``lower`` (latencies, compile seconds): regression when measured
  exceeds ``value * (1 + tolerance)``;
- ``higher`` (throughput, hit fractions): regression when measured
  falls below ``value * (1 - tolerance)``;
- ``near`` (rule counts, group counts — machine-independent): failure
  when the measured value leaves the band in *either* direction, since
  a count that shrank usually means the workload changed, not that the
  code got faster.

Timing comparisons are noise-aware twice over: families report the
median of N runs (see :mod:`repro.profiling.families`), and when the
measuring environment's fingerprint differs from the recording one,
timing tolerances are widened by ``ENV_RELAX_FACTOR`` — a baseline
recorded on one machine should gate a different machine loosely, and
the same machine tightly.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import platform
import socket
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

#: Version of the on-disk baseline/results envelope.
SCHEMA_VERSION = 1

#: Multiplier applied to timing tolerances when the measuring
#: environment differs from the recording one (python minor version or
#: CPU count — hostname alone is informational).
ENV_RELAX_FACTOR = 2.0

#: Default repo-relative location of committed baselines.
DEFAULT_BASELINE_DIR = pathlib.Path("benchmarks") / "baselines"

#: Metric directions the comparison engine understands.
DIRECTIONS = ("lower", "higher", "near")


def environment_fingerprint() -> Dict[str, object]:
    """The environment a measurement was taken in.

    The hostname is hashed — fingerprints land in committed JSON and CI
    artifacts, and the comparison only needs equality, not identity.
    """
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "cpu_count": os.cpu_count() or 1,
        "hostname_hash": hashlib.sha256(
            socket.gethostname().encode()).hexdigest()[:12],
        "bench_scale": float(os.environ.get("SDX_BENCH_SCALE", "1")),
    }


def environments_match(recorded: Dict[str, object],
                       current: Dict[str, object]) -> bool:
    """Whether two fingerprints agree on the load-bearing fields.

    Python minor version, implementation, CPU count, and bench scale
    shift absolute timings; the hostname hash is deliberately excluded
    (same container image on a different host measures the same).
    """
    def minor(version: object) -> str:
        return ".".join(str(version).split(".")[:2])

    return (minor(recorded.get("python")) == minor(current.get("python"))
            and recorded.get("implementation") == current.get("implementation")
            and recorded.get("cpu_count") == current.get("cpu_count")
            and recorded.get("bench_scale") == current.get("bench_scale"))


@dataclass(frozen=True)
class MetricSpec:
    """How one benchmark metric is recorded and gated.

    ``tolerance`` is a fraction (0.6 = ±60%); ``direction`` is one of
    :data:`DIRECTIONS`. ``timing`` marks wall-clock-derived metrics,
    which get the environment relaxation on fingerprint mismatch —
    counts and ratios don't, because they're machine-independent.
    """

    tolerance: float
    direction: str = "lower"
    timing: bool = True

    def __post_init__(self) -> None:
        if self.direction not in DIRECTIONS:
            raise ValueError(f"unknown direction {self.direction!r}")
        if self.tolerance < 0:
            raise ValueError("tolerance must be non-negative")


@dataclass
class Baseline:
    """One family's recorded metrics plus recording environment."""

    family: str
    mode: str
    samples: int
    environment: Dict[str, object]
    metrics: Dict[str, Dict[str, object]]
    schema: int = SCHEMA_VERSION

    def to_dict(self) -> Dict[str, object]:
        """The on-disk JSON document."""
        return {
            "schema": self.schema,
            "family": self.family,
            "mode": self.mode,
            "samples": self.samples,
            "environment": dict(self.environment),
            "metrics": {name: dict(entry)
                        for name, entry in sorted(self.metrics.items())},
        }

    @classmethod
    def from_measurement(cls, family: str, mode: str, samples: int,
                         values: Dict[str, float],
                         specs: Dict[str, "MetricSpec"]) -> "Baseline":
        """Bundle measured values with their gating specs."""
        metrics = {}
        for name, value in values.items():
            spec = specs[name]
            metrics[name] = {
                "value": value,
                "tolerance": spec.tolerance,
                "direction": spec.direction,
                "timing": spec.timing,
            }
        return cls(family=family, mode=mode, samples=samples,
                   environment=environment_fingerprint(), metrics=metrics)

    @classmethod
    def from_dict(cls, document: Dict[str, object]) -> "Baseline":
        """Parse (and schema-check) an on-disk document."""
        schema = document.get("schema")
        if schema != SCHEMA_VERSION:
            raise ValueError(
                f"unsupported baseline schema {schema!r} "
                f"(this build reads schema {SCHEMA_VERSION})")
        return cls(
            family=str(document["family"]),
            mode=str(document["mode"]),
            samples=int(document.get("samples", 1)),
            environment=dict(document.get("environment", {})),
            metrics={str(name): dict(entry)
                     for name, entry in dict(document["metrics"]).items()},
            schema=int(schema))


def baseline_path(family: str, mode: str,
                  directory: Optional[pathlib.Path] = None) -> pathlib.Path:
    """Where a family/mode baseline lives on disk."""
    base = directory if directory is not None else DEFAULT_BASELINE_DIR
    return pathlib.Path(base) / f"{family}-{mode}.json"


def save_baseline(baseline: Baseline,
                  directory: Optional[pathlib.Path] = None) -> pathlib.Path:
    """Write a baseline document; returns the path written."""
    path = baseline_path(baseline.family, baseline.mode, directory)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(baseline.to_dict(), indent=2,
                               sort_keys=True) + "\n")
    return path


def load_baseline(family: str, mode: str,
                  directory: Optional[pathlib.Path] = None) -> Baseline:
    """Read a family/mode baseline; raises ``FileNotFoundError``."""
    path = baseline_path(family, mode, directory)
    return Baseline.from_dict(json.loads(path.read_text()))


@dataclass
class MetricComparison:
    """One metric's verdict against its baseline band."""

    metric: str
    baseline: float
    measured: float
    tolerance: float
    direction: str
    status: str          # ok | regression | improved | missing
    relaxed: bool = False

    @property
    def delta_fraction(self) -> float:
        """Relative change vs the baseline (0 when the baseline is 0)."""
        if self.baseline == 0:
            return 0.0
        return (self.measured - self.baseline) / self.baseline

    def describe(self) -> str:
        """One rendered comparison row."""
        relax = " (env-relaxed)" if self.relaxed else ""
        return (f"{self.status.upper():<10} {self.metric:<28} "
                f"base={self.baseline:.6g} measured={self.measured:.6g} "
                f"delta={self.delta_fraction:+.1%} "
                f"tol=±{self.tolerance:.0%} [{self.direction}]{relax}")


@dataclass
class ComparisonReport:
    """Every metric verdict for one family comparison."""

    family: str
    mode: str
    environment_matches: bool
    rows: List[MetricComparison] = field(default_factory=list)

    @property
    def regressions(self) -> List[MetricComparison]:
        """Rows that fail the gate."""
        return [row for row in self.rows
                if row.status in ("regression", "missing")]

    @property
    def ok(self) -> bool:
        """Whether the family passes its perf budget."""
        return not self.regressions

    def to_dict(self) -> Dict[str, object]:
        """A JSON-serialisable view (the CI comparison artifact)."""
        return {
            "schema": SCHEMA_VERSION,
            "family": self.family,
            "mode": self.mode,
            "ok": self.ok,
            "environment_matches": self.environment_matches,
            "metrics": [
                {
                    "metric": row.metric,
                    "baseline": row.baseline,
                    "measured": row.measured,
                    "delta_fraction": row.delta_fraction,
                    "tolerance": row.tolerance,
                    "direction": row.direction,
                    "status": row.status,
                    "relaxed": row.relaxed,
                }
                for row in self.rows
            ],
        }

    def render(self) -> str:
        """The comparison as plain text, regressions first."""
        header = (f"== {self.family} [{self.mode}] "
                  f"{'OK' if self.ok else 'REGRESSION'}"
                  + ("" if self.environment_matches
                     else " (environment differs from baseline; "
                          "timing tolerances relaxed)"))
        ordered = sorted(
            self.rows, key=lambda row: (row.status not in
                                        ("regression", "missing"),
                                        row.metric))
        return "\n".join([header] + [f"  {row.describe()}"
                                     for row in ordered])


def _band(value: float, tolerance: float) -> Tuple[float, float]:
    spread = abs(value) * tolerance
    return value - spread, value + spread


def compare_metrics(baseline: Baseline,
                    measured: Dict[str, float]) -> ComparisonReport:
    """Diff measured metrics against a baseline's tolerance bands.

    Metrics present in the baseline but absent from the measurement are
    reported as ``missing`` (and fail the gate — a silently vanished
    metric must not read as a pass). Extra measured metrics are ignored:
    they'll enter the gate when the baseline is re-recorded.
    """
    current_env = environment_fingerprint()
    env_ok = environments_match(baseline.environment, current_env)
    report = ComparisonReport(family=baseline.family, mode=baseline.mode,
                              environment_matches=env_ok)

    for name in sorted(baseline.metrics):
        entry = baseline.metrics[name]
        base_value = float(entry["value"])
        tolerance = float(entry.get("tolerance", 0.0))
        direction = str(entry.get("direction", "lower"))
        timing = bool(entry.get("timing", True))
        relaxed = timing and not env_ok
        if relaxed:
            tolerance *= ENV_RELAX_FACTOR

        if name not in measured:
            report.rows.append(MetricComparison(
                metric=name, baseline=base_value, measured=float("nan"),
                tolerance=tolerance, direction=direction,
                status="missing", relaxed=relaxed))
            continue

        value = float(measured[name])
        low, high = _band(base_value, tolerance)
        if direction == "lower":
            status = ("regression" if value > high
                      else "improved" if value < low else "ok")
        elif direction == "higher":
            status = ("regression" if value < low
                      else "improved" if value > high else "ok")
        else:  # near
            status = "ok" if low <= value <= high else "regression"
        report.rows.append(MetricComparison(
            metric=name, baseline=base_value, measured=value,
            tolerance=tolerance, direction=direction, status=status,
            relaxed=relaxed))
    return report
