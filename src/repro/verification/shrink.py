"""Trace shrinking: reduce a failing scenario to a minimal prefix.

Two deterministic passes over the update trace:

1. **truncate** — a failure observed after step *k* cannot depend on
   later steps, so the trace is cut to its first *k + 1* events;
2. **greedy removal** — repeatedly try deleting each remaining event
   (scanning from the end, ddmin-style one-at-a-time); a deletion is
   kept whenever the scenario still fails. Iterate to a fixpoint.

The shrunk scenario is a plain :class:`~repro.verification.scenario
.Scenario` — same seed, same exchange, shorter trace — so it serialises
into a failure artifact and replays through the same oracle.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Optional, Tuple

from repro.verification.oracle import DifferentialOracle, OracleFailure
from repro.verification.scenario import Scenario

#: A runner: executes a scenario, returns its first failure (or None).
OracleRunner = Callable[[Scenario], Optional[OracleFailure]]


def default_runner(scenario: Scenario) -> Optional[OracleFailure]:
    """Run a scenario through a default-configured oracle."""
    return DifferentialOracle(scenario).run()


def shrink_scenario(scenario: Scenario,
                    failure: Optional[OracleFailure] = None, *,
                    runner: OracleRunner = default_runner,
                    max_runs: int = 200
                    ) -> Tuple[Scenario, OracleFailure, int]:
    """Minimise a failing scenario's trace.

    Returns ``(shrunk scenario, the failure it reproduces, oracle runs
    spent)``. ``failure`` is the already-observed failure, if the caller
    has one (saves the initial confirmation run). Raises ``ValueError``
    when the scenario does not fail at all. ``max_runs`` bounds the
    total oracle executions, so pathological traces cannot stall a fuzz
    session — shrinking stops early with whatever reduction it has.
    """
    runs = 0
    if failure is None:
        failure = runner(scenario)
        runs += 1
        if failure is None:
            raise ValueError("scenario does not fail; nothing to shrink")

    # Pass 1: truncate to the failing prefix.
    if 0 <= failure.step + 1 < len(scenario.trace):
        candidate = replace(scenario,
                            trace=scenario.trace[:failure.step + 1])
        confirmed = runner(candidate)
        runs += 1
        if confirmed is not None:
            scenario, failure = candidate, confirmed

    # Pass 2: greedy one-at-a-time removal, end first, to fixpoint.
    changed = True
    while changed and runs < max_runs:
        changed = False
        for index in reversed(range(len(scenario.trace))):
            if runs >= max_runs:
                break
            candidate = replace(
                scenario,
                trace=(scenario.trace[:index]
                       + scenario.trace[index + 1:]))
            result = runner(candidate)
            runs += 1
            if result is not None:
                scenario, failure = candidate, result
                changed = True
    return scenario, failure, runs
