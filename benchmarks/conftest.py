"""Shared helpers for the benchmark suite.

Every benchmark regenerates one table or figure from the paper's
evaluation. Because ``pytest-benchmark`` captures stdout, each benchmark
also writes its rendered rows/series to ``benchmarks/results/<name>.txt``
so the regenerated numbers are inspectable after a run; run with ``-s``
to see them inline.
"""

from __future__ import annotations

import json
import os
import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Multiplier on benchmark workload sizes; set SDX_BENCH_SCALE=5 to run
#: the sweeps five times larger (closer to the paper's scale).
BENCH_SCALE = float(os.environ.get("SDX_BENCH_SCALE", "1"))


def scaled(value: int) -> int:
    """A workload size adjusted by ``SDX_BENCH_SCALE``."""
    return max(1, round(value * BENCH_SCALE))


def publish(name: str, text: str) -> None:
    """Print a result block and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print(f"\n===== {name} =====")
    print(text)


def publish_json(name: str, payload) -> None:
    """Persist a machine-readable twin of a rendered result.

    Writes ``benchmarks/results/<name>.json`` with deterministic
    formatting (sorted keys, trailing newline) so CI can diff and
    archive the regenerated numbers. The payload rides in a
    schema-versioned envelope with the environment fingerprint from
    :mod:`repro.profiling.baselines`, so archived results from
    different machines and different code versions stay comparable
    (``repro bench results`` summarizes them).
    """
    from repro.profiling.baselines import (
        SCHEMA_VERSION,
        environment_fingerprint,
    )

    RESULTS_DIR.mkdir(exist_ok=True)
    document = {
        "schema": SCHEMA_VERSION,
        "name": name,
        "environment": environment_fingerprint(),
        "data": payload,
    }
    (RESULTS_DIR / f"{name}.json").write_text(
        json.dumps(document, indent=2, sort_keys=True) + "\n")
