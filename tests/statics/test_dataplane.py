"""The dataplane verifier: atoms, partitions, SDX010-SDX014, gating.

Spatial checks are exercised on small hand-built tables where the right
answer is obvious, then the incremental path is held to byte-identity
with a fresh whole-table analysis on a real compiled workload (the same
contract the fuzz harness enforces at scale).
"""

import pytest

from repro.core.controller import SdxController
from repro.core.vnh import vmac_for_fec
from repro.dataplane.flowtable import FlowTable
from repro.dataplane.multiswitch import SdxTopology
from repro.exceptions import StaticDataplaneError
from repro.net.addresses import IPv4Prefix
from repro.net.mac import MacAddress
from repro.net.packet import Packet
from repro.policy.classifier import Action, Classifier, Rule
from repro.policy.flowrules import FlowRule
from repro.policy.headerspace import HeaderSpace
from repro.southbound.diff import FlowMod
from repro.statics.dataplane import (
    ClassBudgetExceeded,
    CommittedSpace,
    DataplaneVerifier,
    Subpartition,
    analyze_controller_dataplane,
    analyze_flowtable,
    committed_spaces_from_controller,
)
from repro.statics.diagnostics import Severity
from repro.workloads.policies import generate_policies, install_assignments
from repro.workloads.topology import generate_ixp


def rule(priority, actions=(), **constraints):
    return FlowRule(priority=priority, match=HeaderSpace(**constraints),
                    actions=actions)


def table_of(*rules):
    table = FlowTable()
    for entry in rules:
        table.install(entry)
    return table


def diags(report, check_id):
    return [d for d in report.diagnostics if d.check_id == check_id]


FWD1 = (Action(port=1),)
FWD2 = (Action(port=2),)


class TestSubpartition:
    def test_exact_field_splits_into_values_plus_remainder(self):
        part = Subpartition(HeaderSpace(), [rule(2, FWD1, dstport=80),
                                            rule(1, FWD1, dstport=443)])
        reps = sorted(c.representative.get("dstport") for c in part.classes)
        assert len(part.classes) == 3
        assert 80 in reps and 443 in reps

    def test_nested_prefixes_split_into_rings(self):
        part = Subpartition(
            HeaderSpace(),
            [rule(2, FWD1, dstip=IPv4Prefix("10.0.0.0/8")),
             rule(1, FWD1, dstip=IPv4Prefix("10.0.0.0/24"))])
        # /24, the /8 minus the /24, and everything else.
        assert len(part.classes) == 3

    def test_classify_agrees_with_representatives(self):
        part = Subpartition(HeaderSpace(),
                            [rule(2, FWD1, dstip=IPv4Prefix("10.0.0.0/8")),
                             rule(1, FWD1, dstport=80)])
        for cls in part.classes:
            assert part.classify(cls.representative) == cls.key

    def test_classify_outside_base_is_none(self):
        part = Subpartition(HeaderSpace(dstport=80), [rule(1, FWD1)])
        assert part.classify(Packet(dstport=443)) is None

    def test_base_constraint_pins_unsplit_fields(self):
        part = Subpartition(HeaderSpace(srcport=53),
                            [rule(1, FWD1, dstport=80)])
        assert all(c.representative.get("srcport") == 53
                   for c in part.classes)

    def test_budget_exceeded_raises(self):
        busy = [rule(i, FWD1, dstport=1000 + i, srcport=2000 + i)
                for i in range(8)]
        with pytest.raises(ClassBudgetExceeded):
            Subpartition(HeaderSpace(), busy, budget=16)

    def test_port_domain_restricts_ingress_atoms(self):
        part = Subpartition(HeaderSpace(), [rule(1, FWD1, port=1)],
                            port_domain=(1, 2, 3))
        ports = {c.representative.get("port") for c in part.classes}
        assert 1 in ports
        assert ports <= {1, 2, 3}


class TestShadowedRule:
    def test_identical_match_lower_priority_is_shadowed(self):
        table = table_of(rule(10, FWD1, dstport=80),
                         rule(5, FWD2, dstport=80))
        report = analyze_flowtable(table)
        found = diags(report, "SDX010")
        assert len(found) == 1
        assert found[0].severity is Severity.WARNING
        assert found[0].location.clause_index == 5

    def test_union_shadow_is_detected(self):
        table = table_of(
            rule(10, FWD1, dstip=IPv4Prefix("10.0.0.0/9")),
            rule(9, FWD1, dstip=IPv4Prefix("10.128.0.0/9")),
            rule(5, FWD2, dstip=IPv4Prefix("10.0.0.0/8")))
        found = diags(analyze_flowtable(table), "SDX010")
        assert [d.location.clause_index for d in found] == [5]

    def test_partial_overlap_is_not_shadowed(self):
        table = table_of(rule(10, FWD1, dstip=IPv4Prefix("10.0.0.0/9")),
                         rule(5, FWD2, dstip=IPv4Prefix("10.0.0.0/8")))
        assert not diags(analyze_flowtable(table), "SDX010")

    def test_witness_is_stolen_by_a_higher_rule(self):
        table = table_of(rule(10, FWD1, dstport=80),
                         rule(5, FWD2, dstport=80))
        diag = diags(analyze_flowtable(table), "SDX010")[0]
        assert diag.witness is not None
        winner = table.lookup(diag.witness)
        assert winner is not None and winner.priority == 10


class TestCommittedMiss:
    VMAC = vmac_for_fec(7)
    SPACE = CommittedSpace(
        label="test", space=HeaderSpace(dstmac=VMAC,
                                        dstip=IPv4Prefix("10.0.0.0/24")),
        ports=(1, 2))

    def test_uncovered_committed_space_is_an_error(self):
        report = analyze_flowtable(table_of(), committed_spaces=[self.SPACE])
        found = diags(report, "SDX011")
        assert len(found) == 1
        assert found[0].severity is Severity.ERROR
        assert found[0].witness is not None

    def test_covered_committed_space_is_clean(self):
        table = table_of(rule(10, FWD1, dstmac=self.VMAC))
        report = analyze_flowtable(table, committed_spaces=[self.SPACE])
        assert not diags(report, "SDX011")

    def test_wildcard_drop_counts_as_eaten(self):
        table = table_of(rule(0))
        report = analyze_flowtable(table, committed_spaces=[self.SPACE])
        assert len(diags(report, "SDX011")) == 1

    def test_specific_drop_is_a_decision_not_a_miss(self):
        table = table_of(rule(10, (), dstmac=self.VMAC))
        report = analyze_flowtable(table, committed_spaces=[self.SPACE])
        assert not diags(report, "SDX011")

    def test_witness_falls_to_the_miss(self):
        diag = diags(analyze_flowtable(table_of(rule(0)),
                                       committed_spaces=[self.SPACE]),
                     "SDX011")[0]
        table = table_of(rule(0))
        winner = table.lookup(diag.witness)
        assert winner is None or (winner.is_drop and winner.match.is_wildcard)


class TestDeadVmac:
    LIVE = vmac_for_fec(1)
    DEAD = vmac_for_fec(999)

    def index(self):
        return {self.LIVE: "10.0.0.0/24"}

    def test_rewrite_to_dead_vmac_is_an_error(self):
        table = table_of(FlowRule(
            10, HeaderSpace(dstport=80),
            (Action(dstmac=self.DEAD, port=1),)))
        found = diags(analyze_flowtable(table, vmac_index=self.index()),
                      "SDX012")
        assert len(found) == 1
        assert found[0].severity is Severity.ERROR

    def test_rewrite_to_live_vmac_is_clean(self):
        table = table_of(FlowRule(
            10, HeaderSpace(dstport=80),
            (Action(dstmac=self.LIVE, port=1),)))
        assert not diags(analyze_flowtable(table, vmac_index=self.index()),
                         "SDX012")

    def test_match_on_dead_vmac_is_a_warning(self):
        table = table_of(rule(10, FWD1, dstmac=self.DEAD))
        found = diags(analyze_flowtable(table, vmac_index=self.index()),
                      "SDX012")
        assert len(found) == 1
        assert found[0].severity is Severity.WARNING

    def test_real_mac_rewrite_is_ignored(self):
        table = table_of(FlowRule(
            10, HeaderSpace(dstport=80),
            (Action(dstmac=MacAddress("02:00:00:00:00:05"), port=1),)))
        assert not diags(analyze_flowtable(table, vmac_index=self.index()),
                         "SDX012")

    def test_shadowed_rule_is_not_double_reported(self):
        # The blackhole rewrite sits on a rule that can never win: the
        # shadow verdict wins and the rewrite is not reported.
        table = table_of(
            rule(10, FWD1, dstport=80),
            FlowRule(5, HeaderSpace(dstport=80),
                     (Action(dstmac=self.DEAD, port=1),)))
        report = analyze_flowtable(table, vmac_index=self.index())
        assert len(diags(report, "SDX010")) == 1
        assert not diags(report, "SDX012")


class TestFabricLoop:
    MAC = MacAddress("02:00:00:00:00:42")

    def looped_fabric(self):
        topology = SdxTopology()
        topology.add_switch("s1")
        topology.add_switch("s2")
        topology.assign_port(1, "s1")
        topology.add_link("s1", 100, "s2", 101)
        tables = {
            "s1": Classifier([Rule(HeaderSpace(dstmac=self.MAC),
                                   (Action(port=100),))]),
            "s2": Classifier([Rule(HeaderSpace(dstmac=self.MAC),
                                   (Action(port=101),))]),
        }
        return topology, tables

    def test_mutual_trunk_forwarding_is_a_loop(self):
        topology, tables = self.looped_fabric()
        report = analyze_flowtable(table_of(), topology=topology,
                                   tables=tables)
        found = diags(report, "SDX013")
        assert len(found) == 1
        assert found[0].severity is Severity.ERROR
        assert "s1" in found[0].message and "s2" in found[0].message

    def test_loop_packet_overruns_the_real_fabric(self):
        from repro.dataplane.multiswitch import MultiSwitchDataPlane
        from repro.exceptions import FabricError

        topology, tables = self.looped_fabric()
        plane = MultiSwitchDataPlane(topology, tables, max_hops=8)
        with pytest.raises(FabricError, match="loop"):
            plane.process(Packet(port=1, dstmac=self.MAC))

    def test_terminating_forwarding_is_clean(self):
        topology, tables = self.looped_fabric()
        tables["s2"] = Classifier([Rule(HeaderSpace(dstmac=self.MAC),
                                        (Action(port=7),))])
        report = analyze_flowtable(table_of(), topology=topology,
                                   tables=tables)
        assert not diags(report, "SDX013")


class TestPhaseOrdering:
    def test_install_after_delete_is_flagged(self):
        verifier = DataplaneVerifier(table_of(), mode="off")
        mods = [FlowMod.delete(rule(5, FWD1, dstport=80)),
                FlowMod.add(rule(7, FWD2, dstport=443))]
        report = verifier.verify_delta(mods)
        found = diags(report, "SDX014")
        assert len(found) == 1
        assert found[0].severity is Severity.ERROR

    def test_two_phase_order_is_clean(self):
        verifier = DataplaneVerifier(table_of(), mode="off")
        mods = [FlowMod.add(rule(7, FWD2, dstport=443)),
                FlowMod.delete(rule(5, FWD1, dstport=80))]
        assert not diags(verifier.verify_delta(mods), "SDX014")

    def test_window_findings_are_not_cached(self):
        verifier = DataplaneVerifier(table_of(), mode="off")
        mods = [FlowMod.delete(rule(5, FWD1, dstport=80)),
                FlowMod.add(rule(7, FWD2, dstport=443))]
        assert diags(verifier.verify_delta(mods), "SDX014")
        assert not diags(verifier.state_report(), "SDX014")


def workload_controller(seed=0, mode="warn"):
    ixp = generate_ixp(8, 16, seed=seed)
    controller = ixp.build_controller(dataplane_statics_mode=mode)
    install_assignments(controller, generate_policies(ixp, seed=seed + 1))
    controller.start()
    return controller


class TestIncrementalEqualsFull:
    def assert_identical(self, controller):
        incremental = controller.dataplane_verifier.state_report()
        fresh = analyze_controller_dataplane(controller)
        assert incremental.to_json() == fresh.to_json()

    def test_identical_after_start(self):
        self.assert_identical(workload_controller())

    def test_identical_after_fast_path_churn(self):
        from repro.workloads.topology import generate_ixp
        from repro.workloads.updates import generate_trace

        ixp = generate_ixp(8, 16, seed=3)
        controller = ixp.build_controller(dataplane_statics_mode="warn")
        install_assignments(controller,
                            generate_policies(ixp, seed=4))
        controller.start()
        for event in generate_trace(ixp, seed=5, max_updates=30):
            controller.submit_update(event.update)
        self.assert_identical(controller)

    def test_identical_after_background_recompilation(self):
        controller = workload_controller(seed=7)
        controller.run_background_recompilation()
        self.assert_identical(controller)

    def test_committed_spaces_cover_policy_prefixes_only(self):
        controller = workload_controller()
        spaces = committed_spaces_from_controller(controller)
        index = controller.allocator.vmac_index()
        assert all(space.space.get("dstmac") in index for space in spaces)


class TestGating:
    def blackhole_rule(self):
        return FlowRule(
            900_000, HeaderSpace(dstip=IPv4Prefix("99.99.0.0/16")),
            (Action(dstmac=vmac_for_fec(999_999), port=1),))

    def test_warn_mode_installs_and_reports(self):
        controller = workload_controller(mode="warn")
        controller.southbound.push_rules([self.blackhole_rule()])
        report = controller.dataplane_verifier.state_report()
        assert diags(report, "SDX012")

    def test_strict_mode_rejects_and_rolls_back(self):
        controller = workload_controller(mode="strict")
        before = controller.table.render()
        with pytest.raises(StaticDataplaneError) as excinfo:
            controller.southbound.push_rules([self.blackhole_rule()])
        assert excinfo.value.report is not None
        assert controller.table.render() == before
        # The cache is restored too: state still renders clean.
        report = controller.dataplane_verifier.state_report()
        assert not any(d.severity is Severity.ERROR
                       for d in report.diagnostics)

    def test_strict_mode_passes_clean_updates(self):
        from repro.workloads.topology import generate_ixp
        from repro.workloads.updates import generate_trace

        ixp = generate_ixp(6, 12, seed=11)
        controller = ixp.build_controller(dataplane_statics_mode="strict")
        install_assignments(controller, generate_policies(ixp, seed=12))
        controller.start()
        for event in generate_trace(ixp, seed=13, max_updates=20):
            controller.submit_update(event.update)

    def test_bad_mode_rejected(self):
        with pytest.raises(ValueError):
            SdxController(dataplane_statics_mode="bogus")
        with pytest.raises(ValueError):
            DataplaneVerifier(table_of(), mode="bogus")

    def test_lint_dataplane_enforce_raises_on_errors(self):
        controller = workload_controller(mode="off")
        assert controller.dataplane_verifier is None
        controller.southbound.push_rules([self.blackhole_rule()])
        with pytest.raises(StaticDataplaneError):
            controller.lint_dataplane(enforce=True)


class TestTelemetry:
    def test_counters_and_spans_are_recorded(self):
        controller = workload_controller(mode="warn")
        rendered = controller.telemetry.registry.render()
        assert "sdx_statics_dataplane_runs_total" in rendered
        assert "sdx_statics_dataplane_classes_total" in rendered
        assert "sdx_statics_dataplane_batches_total" in rendered

    def test_incremental_reuses_cached_classes(self):
        controller = workload_controller(mode="warn")
        registry = controller.telemetry.registry
        reused = registry.counter(
            "sdx_statics_dataplane_classes_reused_total",
            "Cached equivalence classes reused by incremental verification")
        controller.southbound.push_rules(
            [rule(900_001, FWD1,
                  dstmac=MacAddress("02:00:00:00:00:77"), dstport=65_000)])
        assert reused.value > 0
