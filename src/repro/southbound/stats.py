"""Counters and latency histograms for the southbound engine.

Everything the Figure 9/10 update-cost benchmarks need to report the
delta engine's behaviour: FlowMods sent per kind, coalescing savings,
batch sizes, per-batch apply latency, and how many rules each sync left
untouched (the counter-preserving majority). Distributions are exposed as
:class:`~repro.experiments.metrics.Cdf` so they plug straight into the
existing rendering machinery.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List


@dataclass
class SouthboundStats:
    """Cumulative southbound-engine measurements."""

    #: FlowMods sent to the table, by kind.
    adds_sent: int = 0
    modifies_sent: int = 0
    deletes_sent: int = 0
    #: Mods absorbed by per-key coalescing before they reached the switch.
    mods_coalesced: int = 0
    #: Classifier syncs processed (one per recompile swap).
    syncs: int = 0
    #: Rules a sync left untouched (counters preserved), cumulative.
    rules_unchanged: int = 0
    #: Batches applied and flushes forced by queue backpressure.
    batches_applied: int = 0
    backpressure_flushes: int = 0
    #: Size of every batch applied, in order.
    batch_sizes: List[int] = field(default_factory=list)
    #: Wall-clock seconds each batch took to apply, in order.
    apply_seconds: List[float] = field(default_factory=list)

    @property
    def mods_sent(self) -> int:
        """Total FlowMods actually applied to the table."""
        return self.adds_sent + self.modifies_sent + self.deletes_sent

    def record_batch(self, size: int, seconds: float) -> None:
        """Account one applied batch."""
        self.batches_applied += 1
        self.batch_sizes.append(size)
        self.apply_seconds.append(seconds)

    def batch_size_cdf(self):
        """Distribution of batch sizes (a :class:`~repro.experiments.metrics.Cdf`)."""
        from repro.experiments.metrics import Cdf
        return Cdf(self.batch_sizes)

    def apply_time_cdf(self):
        """Distribution of per-batch apply latencies."""
        from repro.experiments.metrics import Cdf
        return Cdf(self.apply_seconds)

    def snapshot(self) -> Dict[str, int]:
        """The scalar counters as a plain dict (for logs and diffing)."""
        return {
            "adds_sent": self.adds_sent,
            "modifies_sent": self.modifies_sent,
            "deletes_sent": self.deletes_sent,
            "mods_sent": self.mods_sent,
            "mods_coalesced": self.mods_coalesced,
            "syncs": self.syncs,
            "rules_unchanged": self.rules_unchanged,
            "batches_applied": self.batches_applied,
            "backpressure_flushes": self.backpressure_flushes,
        }

    def render(self) -> str:
        """A printable table of counters plus latency quantiles."""
        from repro.experiments.metrics import render_table
        rows = [[name, value] for name, value in self.snapshot().items()]
        if self.apply_seconds:
            latency = self.apply_time_cdf()
            rows.append(["apply ms (median)", f"{latency.median * 1000:.3f}"])
            rows.append(["apply ms (p99)",
                         f"{latency.quantile(0.99) * 1000:.3f}"])
        if self.batch_sizes:
            sizes = self.batch_size_cdf()
            rows.append(["batch size (median)", f"{sizes.median:g}"])
            rows.append(["batch size (max)", f"{max(self.batch_sizes)}"])
        return render_table(["counter", "value"], rows)

    def __repr__(self) -> str:
        return (f"SouthboundStats({self.mods_sent} sent, "
                f"{self.mods_coalesced} coalesced, "
                f"{self.batches_applied} batches)")
