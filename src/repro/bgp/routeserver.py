"""The SDX route server (Section 3.2 / Figure 3, right pipeline).

Participants peer with the route server exactly as at a conventional IXP:
they send UPDATE messages, and the server selects one best route per
prefix *on behalf of each participant* and re-advertises it. Two SDX
extensions sit on top of the conventional behaviour:

* every best-route change is reported to registered listeners (the SDX
  policy compiler subscribes, Section 5.1);
* outgoing announcements pass through a next-hop rewriter hook, which the
  SDX uses to substitute the virtual next-hop (VNH) of the prefix's
  forwarding equivalence class (Section 4.2).

Per-participant views share the per-prefix candidate index rather than
materialising a Loc-RIB per participant, keeping memory linear in the
number of announcements instead of participants × prefixes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.bgp.decision import best_route
from repro.bgp.messages import Announcement, Update, Withdrawal
from repro.bgp.rib import AdjRibIn, RibView, RouteEntry
from repro.bgp.session import BgpSession
from repro.exceptions import BgpError, ParticipantError
from repro.net.addresses import IPv4Address, IPv4Prefix
from repro.telemetry import Telemetry

#: Hook rewriting the next hop of a route re-advertised to a participant.
#: Receives (participant, prefix, chosen route) and returns the next-hop
#: address to place in the announcement.
NextHopRewriter = Callable[[str, IPv4Prefix, RouteEntry], IPv4Address]

#: Listener invoked with the per-participant best-route changes caused by
#: one inbound update.
ChangeListener = Callable[[List["BestRouteChange"]], None]

#: Listener invoked with (update, best-route changes) for *every* processed
#: update, even when no best route changed. The SDX needs this because an
#: announcement can change policy *eligibility* (which next hops may carry
#: a prefix) without moving anyone's best route.
UpdateListener = Callable[["Update", List["BestRouteChange"]], None]


@dataclass(frozen=True)
class BestRouteChange:
    """One participant's best route for one prefix changed."""

    participant: str
    prefix: IPv4Prefix
    old: Optional[RouteEntry]
    new: Optional[RouteEntry]

    def __repr__(self) -> str:
        def render(entry: Optional[RouteEntry]) -> str:
            return "none" if entry is None else f"via {entry.learned_from}"
        return (f"BestRouteChange({self.participant}: {self.prefix} "
                f"{render(self.old)} -> {render(self.new)})")


#: ASN conventionally used in blocking communities ("0:peer-asn").
BLOCK_COMMUNITY_ASN = 0


class RouteServer:
    """A multi-participant BGP route server with SDX hooks.

    Export control operates at two granularities, mirroring operational
    IXP route servers:

    * **per session** via :meth:`set_export_policy` (allow/deny peer
      lists);
    * **per announcement** via BGP communities: ``(0, 0)`` blocks export
      to everyone, ``(0, peer-asn)`` blocks one peer, and the presence of
      any ``(server-asn, x)`` community switches the route to allow-list
      mode where only peers named by ``(server-asn, peer-asn)`` receive
      it.
    """

    def __init__(self, asn: int = 64_496,
                 telemetry: Optional[Telemetry] = None) -> None:
        self.asn = asn
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        registry = self.telemetry.registry
        self._updates_counter = registry.counter(
            "sdx_bgp_updates_total", "BGP UPDATE messages processed")
        self._announcements_counter = registry.counter(
            "sdx_bgp_announcements_total", "Prefix announcements received")
        self._withdrawals_counter = registry.counter(
            "sdx_bgp_withdrawals_total", "Prefix withdrawals received")
        self._changes_counter = registry.counter(
            "sdx_bgp_best_route_changes_total",
            "Per-participant best-route changes produced by the decision process")
        self._readvertised_counter = registry.counter(
            "sdx_bgp_readvertised_total", "UPDATEs re-advertised to participants")
        self._readvertise_skipped_counter = registry.counter(
            "sdx_bgp_readvertise_skipped_total",
            "Re-advertisements dropped because the peer session was down")
        self._session_down_counters = {
            reason: registry.counter(
                "sdx_bgp_session_downs_total",
                "Session teardowns processed by the route server",
                reason=reason)
            for reason in ("reset", "fail")}
        self._implied_withdrawals_counter = registry.counter(
            "sdx_bgp_implied_withdrawals_total",
            "Prefixes flushed by implied withdrawal on session teardown")
        self._unnotified_counter = registry.counter(
            "sdx_bgp_unnotified_updates_total",
            "Updates applied to the Adj-RIB-In without listener "
            "notification (chaos stuck-route injection)")
        self._sessions: Dict[str, BgpSession] = {}
        self._adj_in: Dict[str, AdjRibIn] = {}
        self._announcers: Dict[IPv4Prefix, Set[str]] = {}
        self._export_deny: Dict[str, Set[str]] = {}
        self._export_allow: Dict[str, Optional[Set[str]]] = {}
        self._community_filtering_peers: Set[str] = set()
        self._listeners: List[ChangeListener] = []
        self._update_listeners: List[UpdateListener] = []
        self._next_hop_rewriter: Optional[NextHopRewriter] = None
        self.updates_processed = 0
        #: Monotone counter bumped by every mutation that can change a
        #: ``best_route_for`` / ``route_exported`` answer — RIB writes
        #: (diffed or silent) and export-policy edits. Cheap cache key
        #: for derived views of routing state (the dataplane verifier's
        #: committed-space provider memoizes on it).
        self.state_version = 0
        self._last_down_changes: List[BestRouteChange] = []

    # ------------------------------------------------------------------
    # Peering management
    # ------------------------------------------------------------------

    def add_peer(self, name: str, asn: int, connect: bool = True) -> BgpSession:
        """Create (and by default establish) a session with ``name``."""
        if name in self._sessions:
            raise ParticipantError(f"peer {name!r} already exists")
        session = BgpSession(name, asn, on_update=self._process_update,
                             on_down=self._session_down)
        self._sessions[name] = session
        self._adj_in[name] = AdjRibIn(name)
        if connect:
            session.connect()
        return session

    def remove_peer(self, name: str) -> List[BestRouteChange]:
        """Drop a peer and withdraw everything it announced."""
        session = self._sessions.pop(name, None)
        if session is None:
            raise ParticipantError(f"unknown peer {name!r}")
        adj = self._adj_in[name]
        update = Update(sender=name, withdrawals=tuple(
            Withdrawal(p) for p in adj.prefixes()))
        changes = self._apply_and_diff(name, update)
        del self._adj_in[name]
        self._export_deny.pop(name, None)
        self._export_allow.pop(name, None)
        self._notify(update, changes)
        return changes

    def session(self, name: str) -> BgpSession:
        """The session for peer ``name``."""
        try:
            return self._sessions[name]
        except KeyError:
            raise ParticipantError(f"unknown peer {name!r}") from None

    def peers(self) -> Tuple[str, ...]:
        """Every peer name, sorted."""
        return tuple(sorted(self._sessions))

    def reset_session(self, name: str) -> List[BestRouteChange]:
        """Simulate an administrative session reset: flush + reconnect.

        The session's own teardown synthesizes the implied withdrawal
        (see :meth:`BgpSession.reset`), which :meth:`_session_down`
        pushes through the normal decision/notify pipeline; the session
        then reconnects immediately. The peer must re-announce its
        routes afterwards, exactly as after a real reset.
        """
        session = self.session(name)
        session.reset()
        session.connect()
        return self._last_down_changes

    def fail_peer(self, name: str) -> List[BestRouteChange]:
        """Simulate a session failure: flush the peer's routes, stay DOWN.

        Unlike :meth:`reset_session` the session is *not* reconnected:
        re-advertisements to the peer are skipped (counted in
        ``sdx_bgp_readvertise_skipped_total``) until
        :meth:`recover_peer` brings it back.
        """
        session = self.session(name)
        session.fail()
        return self._last_down_changes

    def recover_peer(self, name: str) -> BgpSession:
        """Re-establish a DOWN (or IDLE) session after a failure.

        The Adj-RIB-In stays empty — BGP has no state transfer across a
        session death — so the caller models the peer-up re-announcement
        storm by submitting the peer's routes again.
        """
        session = self.session(name)
        session.open()
        session.establish()
        return session

    def _session_down(self, update: Update, reason: str) -> None:
        """Apply a teardown's implied withdrawal through the pipeline.

        Wired as every session's ``on_down`` hook, so the flush happens
        no matter who tears the session down (the server's own
        :meth:`reset_session` / :meth:`fail_peer`, or a chaos driver
        poking the session directly).
        """
        self._session_down_counters[reason].inc()
        self._last_down_changes = []
        if not update.withdrawals:
            return
        self._implied_withdrawals_counter.inc(len(update.withdrawals))
        with self.telemetry.span("bgp.session_down", sender=update.sender,
                                 reason=reason):
            self._count_update(update)
            changes = self._apply_and_diff(update.sender, update)
            self._changes_counter.inc(len(changes))
            self.updates_processed += 1
            self._notify(update, changes)
        self._last_down_changes = changes

    # ------------------------------------------------------------------
    # Export policy
    # ------------------------------------------------------------------

    def set_export_policy(self, announcer: str, *,
                          deny: Iterable[str] = (),
                          allow: Optional[Iterable[str]] = None) -> None:
        """Control which peers receive ``announcer``'s routes.

        ``deny`` blacklists receivers; ``allow``, when given, whitelists
        them (deny still wins). The paper's Figure 1b example — AS B not
        exporting p4 to AS A — is modelled at this session granularity.
        """
        if announcer not in self._sessions:
            raise ParticipantError(f"unknown peer {announcer!r}")
        self.state_version += 1
        self._export_deny[announcer] = set(deny)
        self._export_allow[announcer] = None if allow is None else set(allow)

    def has_export_restrictions(self, announcer: str) -> bool:
        """True if ``announcer`` filters which peers receive its routes,
        either per session or via communities on some announcement."""
        if self._export_deny.get(announcer):
            return True
        if self._export_allow.get(announcer) is not None:
            return True
        return announcer in self._community_filtering_peers

    def exports_to(self, announcer: str, receiver: str) -> bool:
        """True if routes from ``announcer`` may reach ``receiver``
        (session-level check; per-route communities apply on top)."""
        if announcer == receiver:
            return False
        if receiver in self._export_deny.get(announcer, ()):  # deny wins
            return False
        allowed = self._export_allow.get(announcer)
        return allowed is None or receiver in allowed

    def export_control_communities(self, attributes) -> frozenset:
        """The communities of a route that affect its export."""
        return frozenset(
            community for community in attributes.communities
            if community[0] in (BLOCK_COMMUNITY_ASN, self.asn))

    def route_exported(self, entry: RouteEntry, receiver: str) -> bool:
        """True if one specific route may be given to ``receiver``.

        Besides session policy and communities, this applies standard
        AS-path loop prevention: a route whose path already contains the
        receiver's AS number is never exported to it (the receiver's
        router would reject it anyway, RFC 4271 §9.1.2).
        """
        if not self.exports_to(entry.learned_from, receiver):
            return False
        receiver_session = self._sessions.get(receiver)
        if receiver_session is None:
            return False  # no session (peer removed), nothing to export to
        receiver_asn = receiver_session.asn
        if entry.attributes.as_path.contains_loop(receiver_asn):
            return False
        communities = entry.attributes.communities
        if not communities:
            return True
        if (BLOCK_COMMUNITY_ASN, 0) in communities:
            return False
        if (BLOCK_COMMUNITY_ASN, receiver_asn) in communities:
            return False
        allow_mode = any(community[0] == self.asn for community in communities)
        if allow_mode:
            return (self.asn, receiver_asn) in communities
        return True

    def _note_community_filters(self, update: Update) -> None:
        for announcement in update.announcements:
            if self.export_control_communities(announcement.attributes):
                self._community_filtering_peers.add(update.sender)
                return

    # ------------------------------------------------------------------
    # Update processing
    # ------------------------------------------------------------------

    def submit(self, update: Update) -> None:
        """Deliver an update through the sender's session."""
        self.session(update.sender).receive(update)

    def submit_many(self, updates: Iterable[Update]) -> int:
        """Deliver a batch of updates in order; returns the count.

        The runtime drains coalesced event batches through here: each
        update still goes through the full per-update decision/notify
        pipeline (batching is a queueing concern, not a semantics one).
        """
        count = 0
        for update in updates:
            self.submit(update)
            count += 1
        return count

    def announce(self, sender: str, prefix: IPv4Prefix, attributes) -> None:
        """Convenience: submit a single announcement."""
        self.submit(Update.announce(sender, prefix, attributes))

    def withdraw(self, sender: str, prefix: IPv4Prefix) -> None:
        """Convenience: submit a single withdrawal."""
        self.submit(Update.withdraw(sender, prefix))

    def bulk_load(self, updates: Iterable[Update]) -> int:
        """Apply many updates without per-change diffing or notification.

        This is the initial-table-transfer path: when a peer first comes
        up it sends its whole table, and diffing every prefix against
        every receiver would be quadratic waste — the SDX controller runs
        one full recompilation afterwards instead (Section 4.3 treats
        initial compilation separately from incremental updates for the
        same reason). Returns the number of updates applied.
        """
        count = 0
        for update in updates:
            session = self.session(update.sender)
            if not session.is_established:
                raise BgpError(f"bulk load from unestablished peer {update.sender!r}")
            session.note_update(update)
            self._apply_silent(update)
            count += 1
        return count

    def _apply_silent(self, update: Update) -> None:
        """Apply one update to the Adj-RIB-In with no diffing or notify.

        Shared by :meth:`bulk_load` (initial table transfer) and
        :meth:`inject_unnotified` (chaos stuck-route injection).
        """
        self.state_version += 1
        self._count_update(update)
        self._note_community_filters(update)
        adj = self._adj_in[update.sender]
        for prefix in adj.apply(update):
            announcers = self._announcers.setdefault(prefix, set())
            if adj.route(prefix) is None:
                announcers.discard(update.sender)
                if not announcers:
                    del self._announcers[prefix]
            else:
                announcers.add(update.sender)
        self.updates_processed += 1

    def inject_unnotified(self, update: Update) -> None:
        """Chaos hook: apply ``update`` without notifying any listener.

        Models a *stuck route* — a best-route change whose notification
        was lost between the route server and the SDX controller. The
        server's RIBs move, but no fast-path compilation and no router
        re-advertisement happen, so the compiled state wedges until an
        explicit flush (a full recompilation, which re-reads route-server
        state) resynchronises it. Counted in
        ``sdx_bgp_unnotified_updates_total``.
        """
        session = self.session(update.sender)
        if not session.is_established:
            raise BgpError(
                f"cannot inject from unestablished peer {update.sender!r}")
        session.note_update(update)
        self._unnotified_counter.inc()
        self._apply_silent(update)

    def _count_update(self, update: Update) -> None:
        """Account one inbound UPDATE's announcements and withdrawals."""
        self._updates_counter.inc()
        self._announcements_counter.inc(len(update.announcements))
        self._withdrawals_counter.inc(len(update.withdrawals))

    def _process_update(self, update: Update) -> None:
        with self.telemetry.span("bgp.ingest", sender=update.sender) as span:
            self._count_update(update)
            with self.telemetry.span("bgp.decision"):
                changes = self._apply_and_diff(update.sender, update)
            self._changes_counter.inc(len(changes))
            span.set_tag(changes=len(changes))
            self.updates_processed += 1
            self._notify(update, changes)

    def _notify(self, update: Update,
                changes: List[BestRouteChange]) -> None:
        if changes:
            for listener in self._listeners:
                listener(changes)
        for listener in self._update_listeners:
            listener(update, changes)

    def _apply_and_diff(self, sender: str, update: Update) -> List[BestRouteChange]:
        """Apply ``update`` to the sender's Adj-RIB-In and report every
        per-participant best-route change it caused."""
        self.state_version += 1
        self._note_community_filters(update)
        adj = self._adj_in[sender]
        receivers = [name for name in self._sessions
                     if self.exports_to(sender, name)]
        touched = set(update.prefixes)
        before: Dict[Tuple[str, IPv4Prefix], Optional[RouteEntry]] = {
            (receiver, prefix): self.best_route_for(receiver, prefix)
            for receiver in receivers
            for prefix in touched
        }
        changed_prefixes = adj.apply(update)
        for prefix in changed_prefixes:
            announcers = self._announcers.setdefault(prefix, set())
            if adj.route(prefix) is None:
                announcers.discard(sender)
                if not announcers:
                    del self._announcers[prefix]
            else:
                announcers.add(sender)
        changes: List[BestRouteChange] = []
        for receiver in receivers:
            for prefix in touched:
                old = before[(receiver, prefix)]
                new = self.best_route_for(receiver, prefix)
                if old != new:
                    changes.append(BestRouteChange(receiver, prefix, old, new))
        return changes

    # ------------------------------------------------------------------
    # Route queries (the SDX controller's read API)
    # ------------------------------------------------------------------

    def candidates_for(self, participant: str,
                       prefix: IPv4Prefix) -> List[RouteEntry]:
        """Routes for ``prefix`` that ``participant`` may use."""
        out: List[RouteEntry] = []
        for announcer in self._announcers.get(prefix, ()):
            entry = self._adj_in[announcer].route(prefix)
            if entry is not None and self.route_exported(entry, participant):
                out.append(entry)
        return out

    def all_routes_for(self, prefix: IPv4Prefix) -> List[RouteEntry]:
        """Every route announced for ``prefix``, regardless of export policy.

        Used by the FEC computation: the preference-ranked announcer list
        determines each participant's default next hop, so prefixes with
        the same ranking share default behaviour everywhere.
        """
        out: List[RouteEntry] = []
        for announcer in self._announcers.get(prefix, ()):
            entry = self._adj_in[announcer].route(prefix)
            if entry is not None:
                out.append(entry)
        return out

    def best_route_for(self, participant: str,
                       prefix: IPv4Prefix) -> Optional[RouteEntry]:
        """The best route the server selects for ``participant``."""
        return best_route(self.candidates_for(participant, prefix))

    def reachable_prefixes(self, participant: str,
                           via: str) -> Tuple[IPv4Prefix, ...]:
        """Prefixes ``participant`` may forward to next-hop ``via``.

        This is the BGP-consistency filter of Section 4.1: only prefixes
        ``via`` announced *and* exports to ``participant`` are eligible.
        """
        if via not in self._adj_in:
            raise ParticipantError(f"unknown peer {via!r}")
        if not self.exports_to(via, participant):
            return ()
        return tuple(sorted(
            entry.prefix for entry in self._adj_in[via].routes()
            if self.route_exported(entry, participant)))

    def is_reachable(self, participant: str, prefix: IPv4Prefix,
                     via: str) -> bool:
        """True if ``participant`` may forward ``prefix`` to next-hop ``via``.

        Constant-time variant of :meth:`reachable_prefixes` for the
        incremental fast path.
        """
        if via not in self._adj_in:
            raise ParticipantError(f"unknown peer {via!r}")
        entry = self._adj_in[via].route(prefix)
        return entry is not None and self.route_exported(entry, participant)

    def announced_by(self, participant: str) -> Tuple[IPv4Prefix, ...]:
        """Prefixes currently announced by ``participant``."""
        return tuple(sorted(self._adj_in[participant].prefixes()))

    def routes_from(self, participant: str) -> Tuple[RouteEntry, ...]:
        """Every route ``participant`` currently announces, sorted."""
        try:
            adj = self._adj_in[participant]
        except KeyError:
            raise ParticipantError(f"unknown peer {participant!r}") from None
        return tuple(sorted(adj.routes(), key=lambda entry: entry.prefix))

    def export_policy(self, announcer: str) -> Tuple[Tuple[str, ...],
                                                     Optional[Tuple[str, ...]]]:
        """The (deny, allow) session-level export policy of ``announcer``."""
        if announcer not in self._sessions:
            raise ParticipantError(f"unknown peer {announcer!r}")
        deny = tuple(sorted(self._export_deny.get(announcer, ())))
        allowed = self._export_allow.get(announcer)
        return deny, None if allowed is None else tuple(sorted(allowed))

    def all_prefixes(self) -> Tuple[IPv4Prefix, ...]:
        """Every prefix announced by anyone, sorted."""
        return tuple(sorted(self._announcers))

    def view_for(self, participant: str) -> RibView:
        """The participant's Loc-RIB view (best route per prefix)."""
        routes: Dict[IPv4Prefix, RouteEntry] = {}
        for prefix in self._announcers:
            best = self.best_route_for(participant, prefix)
            if best is not None:
                routes[prefix] = best
        return RibView(routes)

    # ------------------------------------------------------------------
    # Re-advertisement
    # ------------------------------------------------------------------

    def set_next_hop_rewriter(self, rewriter: Optional[NextHopRewriter]) -> None:
        """Install the VNH rewriting hook used on re-advertisement."""
        self._next_hop_rewriter = rewriter

    def add_listener(self, listener: ChangeListener) -> None:
        """Register for per-participant best-route change notifications."""
        self._listeners.append(listener)

    def add_update_listener(self, listener: UpdateListener) -> None:
        """Register for every processed update (see :data:`UpdateListener`)."""
        self._update_listeners.append(listener)

    def readvertise(self, changes: Sequence[BestRouteChange]) -> List[Update]:
        """Build and send the UPDATEs that propagate ``changes``.

        Each change produces an announcement (or withdrawal) on the
        affected participant's session, with the next hop rewritten by the
        installed hook.
        """
        sent: List[Update] = []
        for change in changes:
            session = self._sessions.get(change.participant)
            if session is None or not session.is_established:
                self._readvertise_skipped_counter.inc()
                continue
            if change.new is None:
                update = Update(sender="route-server",
                                withdrawals=(Withdrawal(change.prefix),))
            else:
                next_hop = change.new.attributes.next_hop
                if self._next_hop_rewriter is not None:
                    next_hop = self._next_hop_rewriter(
                        change.participant, change.prefix, change.new)
                attributes = change.new.attributes.with_next_hop(next_hop)
                update = Update(
                    sender="route-server",
                    announcements=(Announcement(change.prefix, attributes),))
            session.send(update)
            self._readvertised_counter.inc()
            sent.append(update)
        return sent

    def __repr__(self) -> str:
        return (f"RouteServer({len(self._sessions)} peers, "
                f"{len(self._announcers)} prefixes)")
