#!/usr/bin/env python3
"""The Figure 5b deployment experiment: wide-area server load balancing.

A remote AWS tenant — a participant with *no physical port* at the
exchange — originates an anycast prefix at the SDX and rewrites request
destinations to backend instances in the middle of the network, replacing
DNS-based load balancing (Section 2). At t=246 s it installs a policy
shifting one client prefix to instance #2, and traffic splits.

Run with::

    python examples/wide_area_load_balancer.py
"""

import sys

from repro.experiments.harness import run_fig5b
from repro.experiments.metrics import render_series


def build():
    """The Figure 5b exchange in its post-policy steady state.

    Mirrors the harness: a remote AWS tenant (no physical port) with the
    two-instance load-balance policy installed, for static linting.
    """
    from repro import fwd, match, modify
    from repro.bgp.asn import AsPath
    from repro.core.controller import SdxController
    from repro.experiments.harness import (
        ANYCAST, AWS_PREFIX, INSTANCE_1, INSTANCE_2)

    sdx = SdxController()
    sdx.add_participant("A", 65001)   # the clients' ISP
    sdx.add_participant("B", 65002)   # transit toward AWS
    sdx.announce_route("B", AWS_PREFIX, AsPath([65002, 14618]))
    tenant = sdx.add_participant("Tenant", 65099, ports=0)
    sdx.register_ownership(ANYCAST, "Tenant")
    tenant.add_inbound(
        (match(dstip="74.125.1.1") & match(srcip="204.57.0.67"))
        >> modify(dstip=INSTANCE_2) >> fwd("B"))
    tenant.add_inbound(
        match(dstip="74.125.1.1") >> modify(dstip=INSTANCE_1) >> fwd("B"))
    sdx.start()
    tenant.announce(ANYCAST)
    return sdx


def reactive_demo() -> None:
    """The counter-driven variant: offload decided by measurement.

    Figure 5b's policy shift is scripted at t=246 s; the reactive
    version watches per-FEC rates and moves the hottest prefix to an
    alternate egress only when a heavy hitter actually appears —
    :class:`~repro.apps.reactive.HeavyHitterSteering` riding the
    monitoring loop over the canned skewed-traffic scenario.
    """
    from repro.experiments.monitoring import LoopConfig, run_skewed_loop

    result = run_skewed_loop(LoopConfig(duration=20.0, shift_time=5.0))
    print("reactive variant (skewed scenario, surge at t=5s):")
    print(f"  offloaded prefixes: {list(result.offloaded)}")
    print(f"  reaction: {result.reaction_seconds:.1f}s after the surge "
          f"(offload at t={result.offload_at:.1f}s)")
    rates = ", ".join(f"{name}={rate:.1f}"
                      for name, rate in sorted(result.participant_rates.items())
                      if rate > 0.0)
    print(f"  measured egress rates (Mbps): {rates}")


def main() -> None:
    time_scale = 1.0 if "--full" in sys.argv else 0.1
    series, events = run_fig5b(time_scale=time_scale)

    print("Figure 5b: traffic rate per AWS instance (Mbps), two client flows")
    print()
    for when, label in events:
        print(f"  t={when:7.1f}s  event: {label}")
    print()
    print(render_series(
        [series[label] for label in sorted(series)],
        x_label="time(s)", y_label="Mbps", max_rows=25))
    print()

    one = series["AWS instance #1"]
    two = series["AWS instance #2"]
    print("expected shape (paper): both flows hit instance #1 until the")
    print("load-balance policy, then one flow moves to instance #2.")
    print(f"observed: start #1={one.ys()[0]} #2={two.ys()[0]}, "
          f"end #1={one.ys()[-1]} #2={two.ys()[-1]}")
    print()
    reactive_demo()


if __name__ == "__main__":
    main()
