"""Golden test: the exact ordered FlowMod batches of a fixed workload.

Builds one deterministic exchange, captures every southbound batch —
initial compilation, a fast-path update, a withdrawal, and the two-phase
background swap — and compares the rendered mods line-for-line against
``golden/flowmod_batches.txt``. Any change to rule contents, priorities,
batch boundaries, or the add-before-delete swap ordering shows up as a
readable diff.

Regenerate after an intentional change with::

    REPRO_UPDATE_GOLDEN=1 PYTHONPATH=src python -m pytest \
        tests/integration/test_golden_flowmods.py
"""

import os
import pathlib

from repro.bgp.asn import AsPath
from repro.core.controller import SdxController
from repro.net.addresses import IPv4Prefix
from repro.policy.policies import fwd, match

GOLDEN = pathlib.Path(__file__).parent / "golden" / "flowmod_batches.txt"

NAMES = ["A", "B", "C"]
WEB = IPv4Prefix("30.0.0.0/8")
VIDEO = IPv4Prefix("40.0.0.0/8")


def capture_batches() -> str:
    """Drive the fixed workload, rendering every applied batch."""
    sections = []
    batches = []

    def observer(batch):
        batches.append([mod.describe() for mod in batch])

    def flush_section(title):
        lines = [f"== {title} =="]
        for index, batch in enumerate(batches):
            lines.append(f"batch {index} ({len(batch)} mods)")
            lines.extend(f"  {line}" for line in batch)
        batches.clear()
        sections.append("\n".join(lines))

    sdx = SdxController()
    for index, name in enumerate(NAMES):
        sdx.add_participant(name, 65001 + index)
    sdx.announce_route("B", WEB, AsPath([65002, 111]))
    sdx.announce_route("C", VIDEO, AsPath([65003, 222]))
    sdx.participant("A").add_outbound(
        (match(dstport=80) >> fwd("B")) + (match(dstport=443) >> fwd("C")))
    sdx.participant("B").add_inbound(match(protocol=6))

    sdx.southbound.add_observer(observer)
    try:
        sdx.start()
        flush_section("initial compilation")

        # A fast-path event: C starts covering the web prefix with a
        # better (shorter) path, flipping A's best route.
        sdx.announce_route("C", WEB, AsPath([65003]))
        flush_section("fast path: announce C -> 30.0.0.0/8")

        sdx.withdraw_route("B", WEB)
        flush_section("fast path: withdraw B -> 30.0.0.0/8")

        sdx.run_background_recompilation()
        flush_section("background recompilation (two-phase swap)")
    finally:
        sdx.southbound.remove_observer(observer)
    return "\n".join(sections) + "\n"


class TestGoldenFlowMods:
    def test_batches_match_golden(self):
        rendered = capture_batches()
        if os.environ.get("REPRO_UPDATE_GOLDEN"):
            GOLDEN.parent.mkdir(parents=True, exist_ok=True)
            GOLDEN.write_text(rendered, encoding="utf-8")
        assert GOLDEN.exists(), (
            f"{GOLDEN} missing; regenerate with REPRO_UPDATE_GOLDEN=1")
        assert rendered == GOLDEN.read_text(encoding="utf-8"), (
            "southbound FlowMod batches changed; inspect the diff and "
            "regenerate with REPRO_UPDATE_GOLDEN=1 if intentional")

    def test_capture_is_deterministic(self):
        assert capture_batches() == capture_batches()

    def test_swap_orders_installs_before_deletes(self):
        """Structural anchor independent of the snapshot text: within the
        swap section every add/modify precedes every delete."""
        rendered = capture_batches()
        swap = rendered.split("== background recompilation")[1]
        ops = [line.strip().split()[0] for line in swap.splitlines()
               if line.startswith("  ")]
        assert "delete" in ops and ("add" in ops or "modify" in ops)
        last_install = max(i for i, op in enumerate(ops)
                           if op in ("add", "modify"))
        first_delete = min(i for i, op in enumerate(ops) if op == "delete")
        assert last_install < first_delete
