"""Participant border routers: unmodified BGP routers at the exchange.

The SDX's data-plane scaling trick (Section 4.2) rides on what every
BGP-speaking router already does with a route: extract the next-hop IP,
resolve it with ARP, and install a FIB entry that *rewrites the
destination MAC* before emitting the packet. :class:`BorderRouter`
reproduces exactly that pipeline, so when the route server advertises a
virtual next hop and the SDX ARP responder answers with a virtual MAC,
packets arrive at the fabric already tagged with their forwarding
equivalence class — the router's own FIB acting as stage one of the
multi-stage FIB of Figure 2, with zero router modification.

The router also enforces the realism check the paper calls out: a frame
whose destination MAC is not one of the router's interface MACs is
dropped ("Without rewriting, AS B would drop the traffic").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.bgp.messages import Update
from repro.bgp.rib import PrefixTrie
from repro.exceptions import FabricError
from repro.net.addresses import IPv4Address, IPv4Prefix
from repro.net.mac import MacAddress
from repro.net.packet import Packet

#: Resolves an IP address to a MAC (wired to the fabric's ArpService).
Resolver = Callable[[IPv4Address], Optional[MacAddress]]


@dataclass
class RouterPort:
    """One physical interface of a border router at the exchange."""

    mac: MacAddress
    ip: IPv4Address
    switch_port: Optional[int] = None

    def __repr__(self) -> str:
        return f"RouterPort(mac={self.mac}, ip={self.ip}, port={self.switch_port})"


@dataclass(frozen=True)
class FibEntry:
    """A forwarding entry: next hop and the MAC to stamp on packets."""

    next_hop: IPv4Address
    dstmac: MacAddress
    egress_index: int


class BorderRouter:
    """A BGP border router connected to the SDX fabric."""

    def __init__(self, name: str, asn: int, ports: List[RouterPort],
                 resolver: Optional[Resolver] = None):
        if not ports:
            raise FabricError(f"router {name!r} needs at least one port")
        self.name = name
        self.asn = asn
        self.ports = ports
        self._resolver = resolver
        self._rib: PrefixTrie[IPv4Address] = PrefixTrie()
        self._fib: PrefixTrie[FibEntry] = PrefixTrie()
        self._arp_cache: Dict[IPv4Address, MacAddress] = {}
        self._local: PrefixTrie[bool] = PrefixTrie()
        self.received: List[Packet] = []
        self.dropped_foreign_mac = 0
        self.fib_misses = 0

    # ------------------------------------------------------------------
    # Control plane
    # ------------------------------------------------------------------

    def set_resolver(self, resolver: Resolver) -> None:
        """Wire the router to an ARP resolution service."""
        self._resolver = resolver

    def add_local_prefix(self, prefix: IPv4Prefix) -> None:
        """Mark a prefix as reachable inside this router's own AS."""
        self._local.insert(prefix, True)

    def local_prefixes(self) -> Tuple[IPv4Prefix, ...]:
        """Prefixes this AS hosts behind the router."""
        return tuple(sorted(self._local))

    def install_route(self, prefix: IPv4Prefix, next_hop: IPv4Address,
                      egress_index: int = 0) -> None:
        """Accept a route and build its FIB entry (next-hop ARP included)."""
        if not 0 <= egress_index < len(self.ports):
            raise FabricError(f"router {self.name!r}: no port index {egress_index}")
        self._rib.insert(prefix, next_hop)
        dstmac = self._resolve(next_hop)
        if dstmac is None:
            # Unresolvable next hop: keep the route but no FIB entry,
            # as a real router would until ARP succeeds.
            self._fib.remove(prefix)
            return
        self._fib.insert(prefix, FibEntry(next_hop, dstmac, egress_index))

    def withdraw_route(self, prefix: IPv4Prefix) -> None:
        """Remove a route and its FIB entry."""
        self._rib.remove(prefix)
        self._fib.remove(prefix)

    def receive_update(self, update: Update) -> None:
        """Apply a route-server UPDATE to the RIB/FIB."""
        for withdrawal in update.withdrawals:
            self.withdraw_route(withdrawal.prefix)
        for announcement in update.announcements:
            self.install_route(announcement.prefix, announcement.attributes.next_hop)

    def _resolve(self, address: IPv4Address) -> Optional[MacAddress]:
        cached = self._arp_cache.get(address)
        if cached is not None:
            return cached
        if self._resolver is None:
            return None
        mac = self._resolver(address)
        if mac is not None:
            self._arp_cache[address] = mac
        return mac

    def flush_arp(self) -> None:
        """Drop the ARP cache (the SDX gratuitously re-ARPs on VNH moves)."""
        self._arp_cache.clear()

    def refresh_fib(self) -> None:
        """Re-resolve every RIB next hop (after an ARP flush)."""
        for prefix, next_hop in list(self._rib.items()):
            entry = self._fib.exact(prefix)
            egress = entry.egress_index if entry else 0
            self.install_route(prefix, next_hop, egress)

    def route_for(self, address: IPv4Address) -> Optional[IPv4Prefix]:
        """The most specific RIB prefix covering ``address``."""
        found = self._rib.longest_match(address)
        return found[0] if found else None

    @property
    def fib_size(self) -> int:
        """Number of installed FIB entries."""
        return len(self._fib)

    # ------------------------------------------------------------------
    # Data plane
    # ------------------------------------------------------------------

    def emit(self, packet: Packet) -> Optional[Packet]:
        """Forward a packet from inside the AS toward the exchange.

        Performs the longest-prefix FIB match on the destination address,
        stamps source/destination MACs, and locates the packet on the
        egress port. Returns ``None`` on a FIB miss (no route).
        """
        dstip = packet.get("dstip")
        if dstip is None:
            raise FabricError(f"router {self.name!r}: packet without dstip")
        found = self._fib.longest_match(dstip)
        if found is None:
            self.fib_misses += 1
            return None
        entry = found[1]
        port = self.ports[entry.egress_index]
        if port.switch_port is None:
            raise FabricError(f"router {self.name!r}: port not attached to fabric")
        return packet.modify(
            srcmac=port.mac, dstmac=entry.dstmac, port=port.switch_port)

    def receive(self, packet: Packet) -> bool:
        """Accept a frame from the fabric.

        Frames not addressed to one of this router's interface MACs are
        dropped — the check that makes the SDX's destination-MAC rewrite
        on egress mandatory. Returns True if the packet was accepted.
        """
        dstmac = packet.get("dstmac")
        if dstmac is None or all(port.mac != dstmac for port in self.ports):
            self.dropped_foreign_mac += 1
            return False
        self.received.append(packet)
        return True

    def hosts_address(self, address: IPv4Address) -> bool:
        """True if ``address`` belongs to a local prefix of this AS."""
        return self._local.longest_match(address) is not None

    def __repr__(self) -> str:
        return (f"BorderRouter({self.name!r}, AS{self.asn}, "
                f"{len(self.ports)} ports, fib={self.fib_size})")
