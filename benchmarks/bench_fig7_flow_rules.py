"""Figure 7 — number of forwarding rules vs number of prefix groups.

Full compilations of generated IXPs with the Section 6.1 policy mix,
for 100/200/300 participants across a prefix sweep. Expected shape:
flow rules grow roughly linearly with prefix groups (each group operates
on a disjoint slice of flow space), with more participants producing
more rules at comparable group counts.
"""

from conftest import publish, publish_json, scaled

from repro.experiments.harness import run_compilation_sweep
from repro.experiments.metrics import render_table

PARTICIPANTS = (100, 200, 300)
PREFIXES = tuple(scaled(v) for v in (2_000, 5_000, 10_000, 15_000))


def _run():
    return run_compilation_sweep(
        participant_counts=PARTICIPANTS, prefix_counts=PREFIXES)


def test_fig7_flow_rules(benchmark):
    points = benchmark.pedantic(_run, rounds=1, iterations=1)
    publish("fig7_flow_rules", render_table(
        ["participants", "prefixes", "prefix groups", "flow rules"],
        [[p.participants, p.prefixes, p.prefix_groups, p.flow_rules]
         for p in points]))
    publish_json("fig7_flow_rules", [
        {
            "participants": p.participants,
            "prefixes": p.prefixes,
            "prefix_groups": p.prefix_groups,
            "flow_rules": p.flow_rules,
        }
        for p in points
    ])

    by_count = {}
    for point in points:
        by_count.setdefault(point.participants, []).append(point)
    for count, column in by_count.items():
        column.sort(key=lambda p: p.prefix_groups)
        rules = [p.flow_rules for p in column]
        groups = [p.prefix_groups for p in column]
        # Rules grow with groups...
        assert rules == sorted(rules)
        # ...roughly linearly: the rules-per-group ratio stays within a
        # factor of ~3 across the sweep (no quadratic blowup).
        ratios = [r / g for r, g in zip(rules, groups)]
        assert max(ratios) / min(ratios) < 3.0
    # More participants -> more rules at the largest sweep point.
    largest = [max(by_count[count], key=lambda p: p.prefixes).flow_rules
               for count in sorted(by_count)]
    assert largest == sorted(largest)
