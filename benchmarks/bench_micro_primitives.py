"""Micro-benchmarks for the hot primitives under everything else.

These are regression tripwires rather than paper results: longest-prefix
match, policy compilation, indexed sequential composition, and per-packet
flow-table processing dominate the macro numbers (Figures 8-10), so their
costs are tracked individually with full pytest-benchmark statistics.
"""

import random

from repro.bgp.rib import PrefixTrie
from repro.net.packet import Packet
from repro.policy.policies import fwd, match
from repro.workloads.routing import PrefixPool

from repro.core.composition import sequential_compose_indexed, stack_disjoint
from repro.dataplane.flowtable import FlowTable


def test_lpm_lookup(benchmark):
    """Longest-prefix match over a 50k-entry table."""
    trie = PrefixTrie()
    prefixes = PrefixPool(seed=1).take(50_000)
    for index, prefix in enumerate(prefixes):
        trie.insert(prefix, index)
    rng = random.Random(2)
    addresses = [prefix.first_address + 1
                 for prefix in rng.sample(prefixes, 512)]

    def lookup_many():
        for address in addresses:
            trie.longest_match(address)

    benchmark(lookup_many)


def test_policy_compilation(benchmark):
    """Compiling a 16-clause application-specific peering policy."""
    policy = None
    for port in range(8000, 8016):
        clause = match(dstport=port) >> fwd(port % 7 + 1)
        policy = clause if policy is None else policy + clause

    benchmark(policy.compile)


def test_indexed_sequential_composition(benchmark):
    """Composing a 200-rule stage-1 with a 40-pipeline stage-2."""
    stage1 = stack_disjoint([
        (match(port=p % 20 + 1, dstport=8000 + p) >> fwd(10_000 + p % 40)).compile()
        for p in range(200)
    ])
    stage2 = stack_disjoint([
        (match(port=10_000 + v) >> fwd(v % 20 + 1)).compile()
        for v in range(40)
    ])

    benchmark(sequential_compose_indexed, stage1, stage2)


def test_flow_table_processing(benchmark):
    """Per-packet processing through a 500-rule flow table."""
    table = FlowTable()
    for index in range(500):
        table.install_classifier(
            (match(port=index % 20 + 1, dstport=8000 + index)
             >> fwd(index % 20 + 1)).compile(),
            base_priority=index * 4)
    packets = [
        Packet(port=index % 20 + 1, dstport=8000 + (index * 7) % 500,
               srcip="10.0.0.1", protocol=6)
        for index in range(64)
    ]

    def process_many():
        for packet in packets:
            table.process(packet)

    benchmark(process_many)
