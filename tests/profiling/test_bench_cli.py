"""End-to-end tests for `repro bench` and `repro profile`.

These drive the real CLI entry point over the real (quick-mode) bench
families, so they are the slowest tests in the suite — but they are the
acceptance criteria for the perf gate: record-baseline followed by
compare must pass on an unmodified tree, and a synthetic compile-path
slowdown must fail the gate with the compile metric named.
"""

import json

import pytest

from repro.__main__ import main
from repro.core.compiler import SELFTEST_SLOWDOWN_ENV


@pytest.fixture()
def baseline_dir(tmp_path):
    """A throwaway baseline store plus results dir for one test."""
    (tmp_path / "results").mkdir()
    return tmp_path


def bench(action, baseline_dir, *extra):
    """Run `repro bench <action>` against the throwaway store."""
    return main(["bench", action, "--quick", "--samples", "1",
                 "--family", "fig8",
                 "--baseline-dir", str(baseline_dir),
                 "--results-dir", str(baseline_dir / "results"),
                 *extra])


class TestBenchGate:
    def test_record_then_compare_passes(self, baseline_dir, capsys):
        assert bench("record-baseline", baseline_dir) == 0
        assert (baseline_dir / "fig8-quick.json").exists()
        assert bench("compare", baseline_dir) == 0
        assert "OK" in capsys.readouterr().out

    def test_synthetic_slowdown_fails_naming_the_metric(
            self, baseline_dir, capsys, monkeypatch):
        assert bench("record-baseline", baseline_dir) == 0
        capsys.readouterr()
        monkeypatch.setenv(SELFTEST_SLOWDOWN_ENV, "25")
        assert bench("compare", baseline_dir) == 1
        out = capsys.readouterr().out
        assert "REGRESSION" in out
        assert "compile_seconds" in out

    def test_compare_without_baseline_fails(self, baseline_dir, capsys):
        assert bench("compare", baseline_dir) == 1
        assert "MISSING BASELINE" in capsys.readouterr().out

    def test_run_writes_schema_versioned_results(self, baseline_dir,
                                                 capsys):
        output = baseline_dir / "payload.json"
        assert bench("run", baseline_dir, "--output", str(output)) == 0
        document = json.loads(
            (baseline_dir / "results" / "bench_fig8-quick.json").read_text())
        assert document["schema"] == 1
        assert "compile_seconds_sum" in document["metrics"]
        assert "environment" in document
        payload = json.loads(output.read_text())
        assert payload["ok"] is True

    def test_unknown_family_rejected(self, baseline_dir, capsys):
        assert main(["bench", "run", "--family", "nope",
                     "--baseline-dir", str(baseline_dir)]) == 2

    def test_results_summary_reads_envelopes(self, baseline_dir, capsys):
        assert bench("run", baseline_dir) == 0
        capsys.readouterr()
        assert bench("results", baseline_dir) == 0
        out = capsys.readouterr().out
        assert "bench_fig8-quick.json" in out and "schema=1" in out


class TestProfileCli:
    def test_profile_meets_coverage_floor(self, capsys):
        assert main(["profile", "--participants", "20", "--prefixes", "150",
                     "--updates", "10", "--json",
                     "--min-coverage", "0.9"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["coverage"] >= 0.9
        phases = {entry["phase"] for entry in report["phases"]}
        assert "classifier_cross_product" in phases
        assert "incremental_delta" in phases

    def test_flamegraph_emits_folded_stacks(self, capsys):
        assert main(["profile", "--participants", "10", "--prefixes", "80",
                     "--updates", "5", "--flamegraph"]) == 0
        out = capsys.readouterr().out
        lines = [line for line in out.splitlines() if line.strip()]
        assert lines
        for line in lines:
            path, _, count = line.rpartition(" ")
            assert path and int(count) >= 0
        # The workload root frames every stack.
        assert all(line.startswith("profile.workload")
                   for line in lines)
