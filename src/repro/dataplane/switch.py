"""A software SDN switch: ports plus a flow table plus counters.

Mirrors the Open vSwitch instance of the paper's deployment (Section 5.2)
at the level the experiments need: rule-driven forwarding between
numbered ports with per-port statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.exceptions import FabricError
from repro.net.packet import Packet
from repro.dataplane.flowtable import DEFAULT_PACKET_BYTES, FlowTable


@dataclass
class PortStats:
    """Packet and byte counters for one switch port."""

    rx_packets: int = 0
    tx_packets: int = 0
    rx_bytes: int = 0
    tx_bytes: int = 0


class SoftwareSwitch:
    """An OpenFlow-style switch with numbered ports.

    ``process`` takes a packet already stamped with its ingress ``port``
    field and returns ``(egress_port, packet)`` pairs after applying the
    flow table. Packets emitted on the ingress port are allowed (the SDX
    never generates them, but hairpinning is legal at an IXP).
    """

    def __init__(self, name: str = "sdx-switch"):
        self.name = name
        self.table = FlowTable()
        self._ports: Set[int] = set()
        self._stats: Dict[int, PortStats] = {}

    def add_port(self, port: int) -> None:
        """Register a port number."""
        if port in self._ports:
            raise FabricError(f"switch {self.name}: port {port} already exists")
        if port < 0:
            raise FabricError(f"switch {self.name}: negative port {port}")
        self._ports.add(port)
        self._stats[port] = PortStats()

    @property
    def ports(self) -> Tuple[int, ...]:
        """All registered port numbers, sorted."""
        return tuple(sorted(self._ports))

    def stats(self, port: int) -> PortStats:
        """Counters for ``port``."""
        try:
            return self._stats[port]
        except KeyError:
            raise FabricError(f"switch {self.name}: unknown port {port}") from None

    def process(self, packet: Packet, *,
                size_bytes: Optional[int] = None) -> List[Tuple[int, Packet]]:
        """Run one packet through the flow table.

        Returns the list of (egress port, rewritten packet) pairs; an
        empty list means the packet was dropped (by rule or table miss).
        ``size_bytes`` is threaded to the flow table's per-rule byte
        counters and the per-port byte stats.
        """
        ingress = packet.port
        if ingress is None or ingress not in self._ports:
            raise FabricError(f"switch {self.name}: packet on unknown port {ingress}")
        size = DEFAULT_PACKET_BYTES if size_bytes is None else size_bytes
        self._stats[ingress].rx_packets += 1
        self._stats[ingress].rx_bytes += size
        out: List[Tuple[int, Packet]] = []
        for result in self.table.process(packet, size_bytes=size):
            egress = result.port
            if egress is None or egress not in self._ports:
                # A rule forwarding to a non-existent port silently drops,
                # matching hardware behaviour.
                continue
            self._stats[egress].tx_packets += 1
            self._stats[egress].tx_bytes += size
            out.append((egress, result))
        return out

    def __repr__(self) -> str:
        return f"SoftwareSwitch({self.name!r}, {len(self._ports)} ports)"
