"""Tests for per-announcement export control via BGP communities."""

import pytest

from repro.bgp.asn import AsPath
from repro.bgp.attributes import RouteAttributes
from repro.bgp.routeserver import RouteServer
from repro.net.addresses import IPv4Address, IPv4Prefix

P1 = IPv4Prefix("11.0.0.0/8")
P2 = IPv4Prefix("12.0.0.0/8")


def attrs(path, communities=()):
    return RouteAttributes(next_hop=IPv4Address("172.0.0.2"),
                           as_path=AsPath(path),
                           communities=frozenset(communities))


def make_server():
    server = RouteServer(asn=64_496)
    server.add_peer("A", 65001)
    server.add_peer("B", 65002)
    server.add_peer("C", 65003)
    return server


class TestBlockingCommunities:
    def test_block_one_peer(self):
        server = make_server()
        server.announce("B", P1, attrs([65002], communities={(0, 65001)}))
        assert server.best_route_for("A", P1) is None
        assert server.best_route_for("C", P1) is not None

    def test_block_everyone(self):
        server = make_server()
        server.announce("B", P1, attrs([65002], communities={(0, 0)}))
        assert server.best_route_for("A", P1) is None
        assert server.best_route_for("C", P1) is None

    def test_allow_list_mode(self):
        server = make_server()
        server.announce("B", P1, attrs([65002],
                                       communities={(64_496, 65003)}))
        assert server.best_route_for("A", P1) is None
        assert server.best_route_for("C", P1) is not None

    def test_unrelated_communities_ignored(self):
        server = make_server()
        server.announce("B", P1, attrs([65002], communities={(65002, 99)}))
        assert server.best_route_for("A", P1) is not None

    def test_per_prefix_granularity(self):
        """Figure 1b at announcement granularity: B hides only p1 from A."""
        server = make_server()
        server.announce("B", P1, attrs([65002], communities={(0, 65001)}))
        server.announce("B", P2, attrs([65002]))
        assert server.reachable_prefixes("A", via="B") == (P2,)
        assert server.reachable_prefixes("C", via="B") == (P1, P2)
        assert server.is_reachable("C", P1, via="B")
        assert not server.is_reachable("A", P1, via="B")

    def test_marks_announcer_as_restricted(self):
        server = make_server()
        assert not server.has_export_restrictions("B")
        server.announce("B", P1, attrs([65002], communities={(0, 65001)}))
        assert server.has_export_restrictions("B")

    def test_export_control_communities_helper(self):
        server = make_server()
        mixed = attrs([65002], communities={(0, 65001), (65002, 7)})
        assert server.export_control_communities(mixed) == {(0, 65001)}

    def test_session_policy_still_wins(self):
        server = make_server()
        server.set_export_policy("B", deny={"C"})
        server.announce("B", P1, attrs([65002]))
        assert server.best_route_for("C", P1) is None


class TestLoopPrevention:
    def test_route_with_receiver_asn_not_exported(self):
        """RFC 4271 loop prevention: a path containing the receiver's AS
        is withheld from that receiver (and only that receiver)."""
        server = make_server()
        server.announce("B", P1, attrs([65002, 65001, 900]))
        assert server.best_route_for("A", P1) is None       # 65001 = A
        assert server.best_route_for("C", P1) is not None
        assert not server.is_reachable("A", P1, via="B")
        assert server.reachable_prefixes("A", via="B") == ()
        assert server.reachable_prefixes("C", via="B") == (P1,)

    def test_loop_free_path_exported(self):
        server = make_server()
        server.announce("B", P1, attrs([65002, 900]))
        assert server.best_route_for("A", P1) is not None

    def test_transit_cover_route_never_returned_to_owner(self):
        """A transit re-announcing X's prefix (path ending at X) must not
        offer that route back to X."""
        server = make_server()
        server.announce("B", P1, attrs([65002, 64700, 65001]))  # via A
        assert server.best_route_for("A", P1) is None
        assert server.best_route_for("C", P1) is not None


class TestCommunitiesThroughSdx:
    def make_sdx(self):
        from repro.core.controller import SdxController
        sdx = SdxController()
        sdx.add_participant("A", 65001)
        sdx.add_participant("B", 65002)
        sdx.add_participant("C", 65003)
        return sdx

    def packet(self, dstip, dstport=80):
        from repro.net.packet import Packet
        return Packet(dstip=dstip, dstport=dstport, srcip="10.0.0.1",
                      protocol=6)

    def test_default_forwarding_respects_communities(self):
        """A route hidden from A must not become A's default next hop,
        while C keeps using it — per-participant default exceptions."""
        from repro.policy.policies import fwd, match
        sdx = self.make_sdx()
        sdx.announce_route("B", P1, AsPath([65002, 100]),
                           communities={(0, 65001)})
        sdx.announce_route("C", P1, AsPath([65003, 200, 300, 100]))
        # A policy so p1 is grouped (tagged) rather than MAC-learned.
        sdx.participant("A").participant.add_outbound(
            match(dstport=9999) >> fwd("C"))
        sdx.start()
        # A cannot use B (community-blocked): default falls to C.
        assert sdx.egress_of("A", self.packet("11.0.0.1", dstport=22)) == "C"
        # C still defaults to B (shorter path, exported to C).
        assert sdx.egress_of("C", self.packet("11.0.0.1", dstport=22)) == "B"

    def test_policy_eligibility_respects_communities(self):
        from repro.policy.policies import fwd, match
        sdx = self.make_sdx()
        sdx.announce_route("B", P1, AsPath([65002, 100]),
                           communities={(0, 65001)})
        sdx.announce_route("C", P1, AsPath([65003, 200, 100]))
        sdx.participant("A").participant.add_outbound(
            match(dstport=80) >> fwd("B"))
        sdx.start()
        # B's route exists but is hidden from A: the policy is ineligible.
        assert sdx.egress_of("A", self.packet("11.0.0.1", dstport=80)) == "C"

    def test_groups_split_by_export_communities(self):
        """Two prefixes with identical rankings but different export
        communities must land in different FECs."""
        from repro.policy.policies import fwd, match
        sdx = self.make_sdx()
        sdx.announce_route("B", P1, AsPath([65002, 100]),
                           communities={(0, 65001)})
        sdx.announce_route("B", P2, AsPath([65002, 100]))
        sdx.participant("C").participant.add_outbound(
            match(dstport=80) >> fwd("B"))
        result = sdx.start()
        groups = {g.group_id for g in result.groups
                  for p in g.prefixes if p in (P1, P2)}
        by_prefix = {}
        for group in result.groups:
            for prefix in group.prefixes:
                by_prefix[prefix] = group.group_id
        assert by_prefix[P1] != by_prefix[P2]
