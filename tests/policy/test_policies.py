"""Tests for policy AST semantics — the paper's Section 3.1 examples plus
algebraic laws checked by hypothesis."""

import pytest
from hypothesis import given, settings

from repro.exceptions import PolicyError
from repro.net.packet import Packet
from repro.policy.policies import (
    Forward,
    Parallel,
    Sequential,
    drop,
    fwd,
    identity,
    if_,
    match,
    modify,
)

from tests.policy.strategies import packets, policies, predicates


def outputs(policy, packet):
    return policy.eval(packet)


class TestAtoms:
    def test_identity_passes_through(self):
        packet = Packet(port=1)
        assert outputs(identity, packet) == {packet}

    def test_drop_drops(self):
        assert outputs(drop, Packet(port=1)) == frozenset()

    def test_match_filters(self):
        web = match(dstport=80)
        assert outputs(web, Packet(dstport=80)) == {Packet(dstport=80)}
        assert outputs(web, Packet(dstport=443)) == frozenset()

    def test_fwd_moves_packet(self):
        assert outputs(fwd(3), Packet(port=1)) == {Packet(port=3)}

    def test_modify_rewrites(self):
        moved = outputs(modify(dstip="10.0.0.9"), Packet(dstip="10.0.0.1"))
        assert moved == {Packet(dstip="10.0.0.9")}

    def test_modify_requires_assignment(self):
        with pytest.raises(PolicyError):
            modify()

    def test_fwd_rejects_bad_port(self):
        with pytest.raises(PolicyError):
            fwd(1.5)
        with pytest.raises(PolicyError):
            fwd(True)


class TestComposition:
    def test_paper_application_specific_peering(self):
        """The Section 3.1 example: HTTP to port B(=2), HTTPS to C(=3)."""
        policy = (match(dstport=80) >> fwd(2)) + (match(dstport=443) >> fwd(3))
        assert outputs(policy, Packet(port=1, dstport=80)) == {Packet(port=2, dstport=80)}
        assert outputs(policy, Packet(port=1, dstport=443)) == {Packet(port=3, dstport=443)}
        assert outputs(policy, Packet(port=1, dstport=22)) == frozenset()

    def test_paper_inbound_traffic_engineering(self):
        """Section 3.1: split inbound traffic by source-address halves."""
        policy = (match(srcip="0.0.0.0/1") >> fwd(5)) + (match(srcip="128.0.0.0/1") >> fwd(6))
        low = Packet(port=1, srcip="10.0.0.1")
        high = Packet(port=1, srcip="200.0.0.1")
        assert outputs(policy, low) == {low.at_port(5)}
        assert outputs(policy, high) == {high.at_port(6)}

    def test_paper_load_balancer(self):
        """Section 3.1: rewrite anycast destination per client prefix."""
        policy = match(dstip="74.125.1.1") >> (
            (match(srcip="96.25.160.0/24") >> modify(dstip="74.125.224.161"))
            + (match(srcip="128.125.163.0/24") >> modify(dstip="74.125.137.139")))
        request = Packet(srcip="96.25.160.5", dstip="74.125.1.1")
        assert outputs(policy, request) == {request.modify(dstip="74.125.224.161")}
        other = Packet(srcip="1.2.3.4", dstip="74.125.1.1")
        assert outputs(policy, other) == frozenset()

    def test_sequential_pipes_outputs(self):
        policy = modify(dstport=80) >> match(dstport=80)
        packet = Packet(dstport=443)
        assert outputs(policy, packet) == {Packet(dstport=80)}

    def test_parallel_unions_and_multicasts(self):
        policy = fwd(2) + fwd(3)
        assert outputs(policy, Packet(port=1)) == {Packet(port=2), Packet(port=3)}

    def test_empty_parallel_drops(self):
        assert outputs(Parallel(()), Packet(port=1)) == frozenset()

    def test_empty_sequential_is_identity(self):
        packet = Packet(port=1)
        assert outputs(Sequential(()), packet) == {packet}

    def test_composites_flatten(self):
        nested = (fwd(1) + fwd(2)) + fwd(3)
        assert len(nested.parts) == 3
        chained = (match(dstport=80) >> fwd(1)) >> identity
        assert len(chained.parts) == 3

    def test_composition_rejects_non_policy(self):
        with pytest.raises(PolicyError):
            Parallel((fwd(1), "not a policy"))


class TestPredicateCombinators:
    def test_and(self):
        pred = match(dstport=80) & match(port=1)
        assert pred.holds(Packet(port=1, dstport=80))
        assert not pred.holds(Packet(port=2, dstport=80))

    def test_or(self):
        pred = match(dstport=80) | match(dstport=443)
        assert pred.holds(Packet(dstport=443))
        assert not pred.holds(Packet(dstport=22))

    def test_not(self):
        pred = ~match(dstport=80)
        assert pred.holds(Packet(dstport=443))
        assert not pred.holds(Packet(dstport=80))

    def test_if_routes_by_condition(self):
        policy = if_(match(dstport=80), fwd(2), fwd(3))
        assert outputs(policy, Packet(port=1, dstport=80)) == {Packet(port=2, dstport=80)}
        assert outputs(policy, Packet(port=1, dstport=22)) == {Packet(port=3, dstport=22)}

    def test_if_default_else_is_identity(self):
        policy = if_(match(dstport=80), drop)
        packet = Packet(port=1, dstport=22)
        assert outputs(policy, packet) == {packet}

    def test_if_rejects_non_predicate(self):
        with pytest.raises(PolicyError):
            if_(fwd(1), identity)

    def test_match_rejects_space_plus_kwargs(self):
        from repro.policy.headerspace import HeaderSpace
        with pytest.raises(PolicyError):
            match(HeaderSpace(dstport=80), port=1)


class TestSymbolicPorts:
    def test_symbolic_fwd_collected(self):
        policy = (match(dstport=80) >> fwd("B")) + fwd(3)
        assert policy.symbolic_ports() == {"B"}

    def test_substitute_resolves(self):
        policy = (match(dstport=80) >> fwd("B")).substitute_ports({"B": 7})
        assert policy.symbolic_ports() == frozenset()
        assert outputs(policy, Packet(port=1, dstport=80)) == {Packet(port=7, dstport=80)}

    def test_symbolic_eval_raises(self):
        with pytest.raises(PolicyError):
            fwd("B").eval(Packet(port=1))

    def test_symbolic_compile_raises(self):
        with pytest.raises(PolicyError):
            fwd("B").compile()

    def test_unrelated_substitution_is_noop(self):
        policy = fwd("B").substitute_ports({"C": 9})
        assert policy.symbolic_ports() == {"B"}


class TestAlgebraicLaws:
    @settings(max_examples=60, deadline=None)
    @given(policies(), policies(), packets())
    def test_parallel_commutative(self, left, right, packet):
        assert (left + right).eval(packet) == (right + left).eval(packet)

    @settings(max_examples=60, deadline=None)
    @given(policies(), policies(), policies(), packets())
    def test_sequential_associative(self, a, b, c, packet):
        assert ((a >> b) >> c).eval(packet) == (a >> (b >> c)).eval(packet)

    @settings(max_examples=60, deadline=None)
    @given(policies(), packets())
    def test_identity_is_sequential_unit(self, policy, packet):
        assert (identity >> policy).eval(packet) == policy.eval(packet)
        assert (policy >> identity).eval(packet) == policy.eval(packet)

    @settings(max_examples=60, deadline=None)
    @given(policies(), packets())
    def test_drop_is_sequential_zero(self, policy, packet):
        assert (drop >> policy).eval(packet) == frozenset()
        assert (policy >> drop).eval(packet) == frozenset()

    @settings(max_examples=60, deadline=None)
    @given(policies(), packets())
    def test_drop_is_parallel_unit(self, policy, packet):
        assert (policy + drop).eval(packet) == policy.eval(packet)

    @settings(max_examples=60, deadline=None)
    @given(predicates(), packets())
    def test_excluded_middle(self, predicate, packet):
        pred_result = predicate.holds(packet)
        assert (~predicate).holds(packet) == (not pred_result)
        assert (predicate | ~predicate).holds(packet)
        assert not (predicate & ~predicate).holds(packet)
