"""Tests for the southbound engine: scheduling, batching, and the
delta-equals-fresh-install / two-phase-safety properties."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dataplane.flowtable import FlowTable
from repro.policy.classifier import Action, Classifier, Rule
from repro.policy.flowrules import FlowRule
from repro.policy.headerspace import HeaderSpace
from repro.southbound.diff import FlowMod, FlowModOp, diff_classifier
from repro.southbound.engine import (
    SouthboundConfig,
    SouthboundEngine,
    schedule_two_phase,
)


def rule(priority, actions=(), **constraints):
    return FlowRule(priority=priority, match=HeaderSpace(**constraints),
                    actions=actions)


FWD1 = (Action(port=1),)
FWD2 = (Action(port=2),)


class TestScheduling:
    def test_adds_and_modifies_before_deletes(self):
        mods = [FlowMod.delete(rule(9)), FlowMod.add(rule(1, FWD1)),
                FlowMod.modify(rule(5, FWD2, dstport=80))]
        ordered = schedule_two_phase(mods)
        ops = [m.op for m in ordered]
        assert ops == [FlowModOp.MODIFY, FlowModOp.ADD, FlowModOp.DELETE]

    def test_phase_one_descends_phase_two_ascends(self):
        mods = [
            FlowMod.add(rule(2, FWD1, dstport=22)),
            FlowMod.add(rule(8, FWD1, dstport=80)),
            FlowMod.delete(rule(9)),
            FlowMod.delete(rule(3, FWD2, dstport=443)),
        ]
        ordered = schedule_two_phase(mods)
        assert [m.priority for m in ordered] == [8, 2, 3, 9]


class TestEngine:
    def test_sync_installs_fresh_table(self):
        table = FlowTable()
        engine = SouthboundEngine(table)
        classifier = Classifier([Rule(HeaderSpace(dstport=80), FWD1),
                                 Rule(HeaderSpace(), ())])
        delta = engine.sync_classifier(classifier)
        assert delta.total == 2
        assert len(table) == 2
        assert engine.stats.adds_sent == 2
        assert engine.stats.batches_applied >= 1

    def test_sync_is_minimal_on_resync(self):
        table = FlowTable()
        engine = SouthboundEngine(table)
        classifier = Classifier([Rule(HeaderSpace(dstport=80), FWD1),
                                 Rule(HeaderSpace(), ())])
        engine.sync_classifier(classifier)
        delta = engine.sync_classifier(classifier)
        assert delta.is_empty
        assert engine.stats.mods_sent == 2  # nothing new sent
        assert engine.stats.rules_unchanged == 2

    def test_push_and_retract_rules(self):
        table = FlowTable()
        engine = SouthboundEngine(table)
        shadow = rule(1_000_001, FWD1, dstport=80)
        assert engine.push_rules([shadow]) == 1
        assert table.rules == (shadow,)
        assert engine.retract_rules([shadow]) == 1
        assert len(table) == 0

    def test_manual_flush_coalesces_across_syncs(self):
        table = FlowTable()
        engine = SouthboundEngine(
            table, SouthboundConfig(auto_flush=False))
        first = Classifier([Rule(HeaderSpace(dstport=80), FWD1),
                            Rule(HeaderSpace(), ())])
        second = Classifier([Rule(HeaderSpace(dstport=80), FWD2),
                             Rule(HeaderSpace(), ())])
        engine.sync_classifier(first)
        assert len(table) == 0 and engine.pending == 2
        engine.sync_classifier(second)
        # The dstport=80 add was rewritten in place: still two pending.
        assert engine.pending == 2
        assert engine.stats.mods_coalesced >= 1
        engine.flush()
        fresh = FlowTable()
        fresh.install_classifier(second)
        assert _semantics(table) == _semantics(fresh)
        assert engine.pending == 0

    def test_batching_respects_max_batch_size(self):
        table = FlowTable()
        engine = SouthboundEngine(table, SouthboundConfig(max_batch_size=2))
        classifier = Classifier(
            [Rule(HeaderSpace(dstport=port), FWD1) for port in (80, 443, 22)]
            + [Rule(HeaderSpace(), ())])
        engine.sync_classifier(classifier)
        assert engine.stats.batches_applied == 2
        assert engine.stats.batch_sizes == [2, 2]

    def test_backpressure_forces_flush(self):
        table = FlowTable()
        engine = SouthboundEngine(
            table, SouthboundConfig(auto_flush=False, max_pending=2))
        engine.push_rules([rule(5, FWD1, dstport=80),
                           rule(4, FWD1, dstport=443)])
        assert engine.stats.backpressure_flushes == 1
        assert engine.pending == 0
        assert len(table) == 2

    def test_observer_sees_batches_in_order(self):
        table = FlowTable()
        engine = SouthboundEngine(table, SouthboundConfig(max_batch_size=1))
        seen = []
        engine.add_observer(lambda batch: seen.append(batch[0].key))
        engine.push_rules([rule(5, FWD1, dstport=80), rule(9, FWD2)])
        assert seen == [(9, HeaderSpace()), (5, HeaderSpace(dstport=80))]

    def test_stats_render_smoke(self):
        table = FlowTable()
        engine = SouthboundEngine(table)
        engine.push_rules([rule(5, FWD1, dstport=80)])
        text = engine.stats.render()
        assert "mods_sent" in text and "apply ms (median)" in text


# ----------------------------------------------------------------------
# Property tests: delta apply ≡ fresh install; two-phase safety
# ----------------------------------------------------------------------

_ACTIONS = st.one_of(
    st.just(()),
    st.sampled_from([1, 2, 3]).map(lambda p: (Action(port=p),)))

_MATCHES = st.fixed_dictionaries({}, optional={
    "dstport": st.sampled_from([80, 443, 22]),
    "dstip": st.sampled_from(["10.0.0.0/8", "10.128.0.0/9",
                              "11.0.0.0/8", "11.0.1.0/24"]),
    "port": st.sampled_from([1, 2]),
}).map(lambda kwargs: HeaderSpace(**kwargs))

_CLASSIFIERS = st.lists(st.tuples(_MATCHES, _ACTIONS), max_size=8).map(
    lambda pairs: Classifier([Rule(m, a) for m, a in pairs]))


def _corpus(old: Classifier, new: Classifier):
    """Representative packets: one inside every rule's match, both sides."""
    packets = []
    for classifier in (old, new):
        for each in classifier.rules:
            packets.append(each.match.concretise(
                dstport=8080, dstip="192.0.2.1", port=9))
    packets.append(HeaderSpace().concretise(
        dstport=8080, dstip="192.0.2.1", port=9))
    return packets


def _outcome(table: FlowTable, packet):
    hit = table.lookup(packet)
    return None if hit is None else hit.actions


def _semantics(table: FlowTable):
    """Rule order and content, ignoring the numeric priorities (the
    aligner keeps installed priorities, a fresh install numbers densely)."""
    return [(r.match, r.actions) for r in table.rules]


@given(old=_CLASSIFIERS, new=_CLASSIFIERS)
@settings(max_examples=150, deadline=None)
def test_delta_apply_equals_fresh_install(old, new):
    table = FlowTable()
    table.install_classifier(old)
    fresh = FlowTable()
    fresh.install_classifier(new)
    delta = diff_classifier(table.rules, new)
    table.apply_delta(schedule_two_phase(delta.mods))
    assert _semantics(table) == _semantics(fresh)
    for packet in _corpus(old, new):
        assert _outcome(table, packet) == _outcome(fresh, packet)


@given(old=_CLASSIFIERS, mid=_CLASSIFIERS, new=_CLASSIFIERS)
@settings(max_examples=100, deadline=None)
def test_coalesced_burst_equals_fresh_install(old, mid, new):
    """The burst path: two queued syncs flushed once ≡ installing the last."""
    table = FlowTable()
    table.install_classifier(old)
    engine = SouthboundEngine(table, SouthboundConfig(auto_flush=False))
    engine.sync_classifier(mid)
    engine.sync_classifier(new)
    assert len(table) == len(old.rules)  # nothing applied yet
    engine.flush()
    fresh = FlowTable()
    fresh.install_classifier(new)
    assert _semantics(table) == _semantics(fresh)


@given(old=_CLASSIFIERS, new=_CLASSIFIERS)
@settings(max_examples=150, deadline=None)
def test_two_phase_intermediate_states_are_safe(old, new):
    """At every mod boundary, each packet forwards the old way or the new
    way — never onto a stale mid-priority rule or into a hole."""
    before = FlowTable()
    before.install_classifier(old)
    after = FlowTable()
    after.install_classifier(new)
    corpus = _corpus(old, new)
    allowed = {
        id(packet): {_outcome(before, packet), _outcome(after, packet)}
        for packet in corpus
    }
    table = FlowTable()
    table.install_classifier(old)
    for mod in schedule_two_phase(diff_classifier(table.rules, new).mods):
        table.apply_mod(mod)
        for packet in corpus:
            assert _outcome(table, packet) in allowed[id(packet)]


class _WindowObserver:
    """Records the engine's optional window hooks in dispatch order."""

    def __init__(self):
        self.events = []

    def on_apply_begin(self):
        self.events.append("begin")

    def on_batch_pending(self, batch):
        self.events.append(("pending", len(batch)))

    def __call__(self, batch):
        self.events.append(("applied", len(batch)))

    def on_apply_end(self):
        self.events.append("end")


class TestObserverHooks:
    def test_window_hooks_dispatch_in_order(self):
        table = FlowTable()
        engine = SouthboundEngine(table,
                                  SouthboundConfig(max_batch_size=2))
        observer = _WindowObserver()
        engine.add_observer(observer)
        engine.push_rules([rule(i, FWD1, dstport=1000 + i)
                           for i in range(3)])
        assert observer.events == [
            "begin", ("pending", 2), ("applied", 2),
            ("pending", 1), ("applied", 1), "end"]

    def test_plain_callable_observers_still_work(self):
        table = FlowTable()
        engine = SouthboundEngine(table)
        batches = []
        engine.add_observer(batches.append)
        engine.push_rules([rule(1, FWD1, dstport=80)])
        assert len(batches) == 1

    def test_empty_window_dispatches_no_hooks(self):
        engine = SouthboundEngine(FlowTable())
        observer = _WindowObserver()
        engine.add_observer(observer)
        engine.flush()
        assert observer.events == []
