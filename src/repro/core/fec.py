"""Forwarding equivalence classes via Minimum Disjoint Subsets.

Section 4.2 of the paper groups prefixes that "share the same forwarding
behavior throughout the SDX fabric" so that one rule per group replaces
one rule per prefix. The grouping input is a collection of prefix sets:

* one set per *outbound-policy context* — the prefixes eligible for a
  policy's next hop (pass 1 of the paper's three-pass description);
* the route server's default-routing behaviour (pass 2), captured here as
  the preference-ranked announcer list per prefix, which determines every
  participant's default next hop at once.

The paper's pass 3 — computing the Minimum Disjoint Subsets (MDS) of the
combined collection — reduces to a single hashing pass: give each prefix
the *signature* of which sets contain it (plus its ranking), and group
prefixes by signature. Two prefixes share a group iff they co-occur in
every set, which is exactly the paper's maximality condition, and the
pass is O(total set size) — comfortably inside the promised polynomial
bound.

Prefixes touched by no policy keep their real BGP next hop and are
deliberately excluded (the runtime "simply behaves like a normal route
server" for them).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Hashable, Iterable, List, Mapping, Tuple

from repro.bgp.decision import rank_routes
from repro.bgp.routeserver import RouteServer
from repro.core.participant import Participant
from repro.net.addresses import IPv4Prefix

#: Identifies one outbound-policy context: (participant name, next-hop name).
ContextId = Tuple[str, str]


@dataclass(frozen=True)
class PrefixGroup:
    """One forwarding equivalence class.

    ``contexts`` records which policy contexts the whole group is eligible
    for; ``ranked_announcers`` is the shared default-routing signature.
    """

    group_id: int
    prefixes: FrozenSet[IPv4Prefix]
    contexts: FrozenSet[ContextId]
    ranked_announcers: Tuple[str, ...]

    @property
    def representative(self) -> IPv4Prefix:
        """A deterministic member prefix.

        Because grouping guarantees identical forwarding behaviour for
        every member, per-participant questions about the group (e.g.
        its default next hop) can be answered for the representative.
        """
        return min(self.prefixes)

    def __len__(self) -> int:
        return len(self.prefixes)

    def __repr__(self) -> str:
        sample = ", ".join(str(p) for p in sorted(self.prefixes)[:3])
        suffix = ", ..." if len(self.prefixes) > 3 else ""
        return f"PrefixGroup(#{self.group_id}, {{{sample}{suffix}}})"


def minimum_disjoint_subsets(
        sets: Iterable[Iterable[IPv4Prefix]]) -> List[FrozenSet[IPv4Prefix]]:
    """The Minimum Disjoint Subsets of a collection of prefix sets.

    Returns the coarsest partition of the union such that every input set
    is a union of whole parts — i.e. the groups of prefixes that always
    appear together. This is the pure algorithm evaluated in Figure 6.
    """
    membership: Dict[IPv4Prefix, List[int]] = {}
    for set_index, prefix_set in enumerate(sets):
        for prefix in prefix_set:
            membership.setdefault(prefix, []).append(set_index)
    grouped: Dict[Tuple[int, ...], List[IPv4Prefix]] = {}
    for prefix, indices in membership.items():
        grouped.setdefault(tuple(indices), []).append(prefix)
    return [frozenset(prefixes) for prefixes in grouped.values()]


def policy_contexts(participants: Iterable[Participant],
                    route_server: RouteServer) -> Dict[ContextId, FrozenSet[IPv4Prefix]]:
    """The eligible-prefix set for every (participant, next-hop) pair that
    appears in some outbound policy.

    Multiple policies of one participant toward the same next hop share a
    context: their eligibility filter is identical (it depends only on
    what the next hop exported), so splitting them would only fragment
    groups without changing behaviour.
    """
    contexts: Dict[ContextId, FrozenSet[IPv4Prefix]] = {}
    for participant in participants:
        for target in participant.outbound_targets():
            key = (participant.name, target)
            if key not in contexts:
                contexts[key] = frozenset(
                    route_server.reachable_prefixes(participant.name, via=target))
        if participant.is_remote:
            # Prefixes originated by a remote participant have no physical
            # next-hop MAC, so they must always be VNH-tagged: give them a
            # synthetic context even when no outbound policy names them.
            originated = frozenset(route_server.announced_by(participant.name))
            if originated:
                contexts[("@origin", participant.name)] = originated
    return contexts


def compute_prefix_groups(participants: Iterable[Participant],
                          route_server: RouteServer) -> List[PrefixGroup]:
    """The forwarding equivalence classes of the current SDX state.

    Groups are deterministic: sorted by their smallest member prefix and
    numbered from 0, so repeated compilations assign identical VMACs for
    identical state.
    """
    participant_list = list(participants)
    participant_asns = {p.asn for p in participant_list}
    contexts = policy_contexts(participant_list, route_server)
    signature_to_prefixes: Dict[Hashable, List[IPv4Prefix]] = {}
    signature_parts: Dict[Hashable, Tuple[FrozenSet[ContextId], Tuple[str, ...]]] = {}
    membership: Dict[IPv4Prefix, List[ContextId]] = {}
    for context_id in sorted(contexts):
        for prefix in contexts[context_id]:
            membership.setdefault(prefix, []).append(context_id)
    for prefix, context_ids in membership.items():
        ranked_routes = rank_routes(route_server.all_routes_for(prefix))
        ranked = tuple(entry.learned_from for entry in ranked_routes)
        # Export-control communities — and participant ASNs appearing in
        # a route's path (loop prevention withholds such routes from that
        # participant) — make otherwise-identical rankings behave
        # differently per receiver, so they join the signature.
        export_marks = tuple(
            (route_server.export_control_communities(entry.attributes),
             frozenset(asn for asn in entry.attributes.as_path.asns
                       if asn in participant_asns))
            for entry in ranked_routes)
        signature = (tuple(context_ids), ranked, export_marks)
        signature_to_prefixes.setdefault(signature, []).append(prefix)
        signature_parts[signature] = (frozenset(context_ids), ranked)
    groups: List[PrefixGroup] = []
    ordered = sorted(signature_to_prefixes.items(),
                     key=lambda item: min(item[1]))
    for group_id, (signature, prefixes) in enumerate(ordered):
        context_ids, ranked = signature_parts[signature]
        groups.append(PrefixGroup(
            group_id=group_id,
            prefixes=frozenset(prefixes),
            contexts=context_ids,
            ranked_announcers=ranked))
    return groups


def groups_for_context(groups: Iterable[PrefixGroup],
                       context: ContextId) -> List[PrefixGroup]:
    """The groups eligible under one outbound-policy context."""
    return [group for group in groups if context in group.contexts]
