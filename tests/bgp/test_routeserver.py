"""Tests for the route server: per-participant best routes, export
policies, change notification, and re-advertisement — the scenarios come
from Figure 1b of the paper."""

import pytest

from repro.bgp.asn import AsPath
from repro.bgp.attributes import RouteAttributes
from repro.bgp.messages import Update
from repro.bgp.routeserver import BestRouteChange, RouteServer
from repro.exceptions import BgpError, ParticipantError
from repro.net.addresses import IPv4Address, IPv4Prefix

P1 = IPv4Prefix("11.0.0.0/8")
P2 = IPv4Prefix("12.0.0.0/8")
P4 = IPv4Prefix("14.0.0.0/8")


def attrs(next_hop, path):
    return RouteAttributes(next_hop=IPv4Address(next_hop), as_path=AsPath(path))


def make_server():
    server = RouteServer()
    server.add_peer("A", 65001)
    server.add_peer("B", 65002)
    server.add_peer("C", 65003)
    return server


class TestPeering:
    def test_add_and_list_peers(self):
        server = make_server()
        assert server.peers() == ("A", "B", "C")
        assert server.session("A").is_established

    def test_duplicate_peer_rejected(self):
        server = make_server()
        with pytest.raises(ParticipantError):
            server.add_peer("A", 65009)

    def test_unknown_peer_rejected(self):
        with pytest.raises(ParticipantError):
            make_server().session("Z")

    def test_remove_peer_withdraws_routes(self):
        server = make_server()
        server.announce("B", P1, attrs("172.0.0.2", [65002]))
        changes = server.remove_peer("B")
        assert any(change.new is None for change in changes)
        assert server.best_route_for("A", P1) is None
        assert "B" not in server.peers()

    def test_reset_session_flushes_routes(self):
        server = make_server()
        server.announce("B", P1, attrs("172.0.0.2", [65002]))
        changes = server.reset_session("B")
        assert any(change.new is None for change in changes)
        assert server.best_route_for("A", P1) is None
        assert server.session("B").is_established
        assert server.session("B").resets == 1

    def test_fail_peer_flushes_and_stays_down(self):
        server = make_server()
        server.announce("B", P1, attrs("172.0.0.2", [65002]))
        changes = server.fail_peer("B")
        assert any(change.new is None for change in changes)
        assert server.best_route_for("A", P1) is None
        assert server.announced_by("B") == ()
        assert server.session("B").is_down
        with pytest.raises(BgpError):
            server.submit(Update.withdraw("B", P1))

    def test_fail_peer_notifies_listeners(self):
        server = make_server()
        server.announce("B", P1, attrs("172.0.0.2", [65002]))
        seen = []
        server.add_listener(seen.extend)
        server.fail_peer("B")
        assert [change.prefix for change in seen].count(P1) >= 1

    def test_recover_peer_reestablishes_with_empty_rib(self):
        server = make_server()
        server.announce("B", P1, attrs("172.0.0.2", [65002]))
        server.fail_peer("B")
        server.recover_peer("B")
        assert server.session("B").is_established
        assert server.announced_by("B") == ()
        server.announce("B", P1, attrs("172.0.0.2", [65002]))
        assert server.best_route_for("A", P1) is not None

    def test_inject_unnotified_moves_rib_silently(self):
        server = make_server()
        seen = []
        server.add_listener(seen.extend)
        server.inject_unnotified(
            Update.announce("B", P1, attrs("172.0.0.2", [65002])))
        assert seen == []
        assert server.best_route_for("A", P1) is not None
        assert server.announced_by("B") == (P1,)

    def test_inject_unnotified_requires_established(self):
        server = make_server()
        server.fail_peer("B")
        with pytest.raises(BgpError):
            server.inject_unnotified(
                Update.announce("B", P1, attrs("172.0.0.2", [65002])))


class TestBestRouteSelection:
    def test_single_announcer(self):
        server = make_server()
        server.announce("B", P1, attrs("172.0.0.2", [65002]))
        best = server.best_route_for("A", P1)
        assert best.learned_from == "B"

    def test_own_routes_excluded(self):
        server = make_server()
        server.announce("B", P1, attrs("172.0.0.2", [65002]))
        assert server.best_route_for("B", P1) is None

    def test_prefers_shorter_path(self):
        server = make_server()
        server.announce("B", P1, attrs("172.0.0.2", [65002, 7000]))
        server.announce("C", P1, attrs("172.0.0.3", [65003]))
        assert server.best_route_for("A", P1).learned_from == "C"

    def test_candidates_for_lists_all_exporters(self):
        server = make_server()
        server.announce("B", P1, attrs("172.0.0.2", [65002]))
        server.announce("C", P1, attrs("172.0.0.3", [65003]))
        assert {entry.learned_from for entry in server.candidates_for("A", P1)} == {"B", "C"}

    def test_all_prefixes(self):
        server = make_server()
        server.announce("B", P1, attrs("172.0.0.2", [65002]))
        server.announce("C", P2, attrs("172.0.0.3", [65003]))
        assert server.all_prefixes() == (P1, P2)


class TestExportPolicy:
    def test_figure_1b_selective_export(self):
        """AS B does not export p4 to AS A, so A must not use B for p4."""
        server = make_server()
        server.set_export_policy("B", deny={"A"})
        server.announce("B", P4, attrs("172.0.0.2", [65002]))
        assert server.best_route_for("A", P4) is None
        assert server.best_route_for("C", P4).learned_from == "B"
        assert server.reachable_prefixes("A", via="B") == ()
        assert server.reachable_prefixes("C", via="B") == (P4,)

    def test_allowlist(self):
        server = make_server()
        server.set_export_policy("B", allow={"C"})
        server.announce("B", P1, attrs("172.0.0.2", [65002]))
        assert server.best_route_for("A", P1) is None
        assert server.best_route_for("C", P1) is not None

    def test_deny_wins_over_allow(self):
        server = make_server()
        server.set_export_policy("B", allow={"A"}, deny={"A"})
        assert not server.exports_to("B", "A")

    def test_never_exports_to_self(self):
        assert not make_server().exports_to("B", "B")

    def test_unknown_announcer_rejected(self):
        with pytest.raises(ParticipantError):
            make_server().set_export_policy("Z", deny={"A"})

    def test_reachable_prefixes_unknown_via(self):
        with pytest.raises(ParticipantError):
            make_server().reachable_prefixes("A", via="Z")


class TestChangeNotification:
    def test_listener_sees_per_participant_changes(self):
        server = make_server()
        seen = []
        server.add_listener(seen.extend)
        server.announce("B", P1, attrs("172.0.0.2", [65002]))
        participants = {change.participant for change in seen}
        assert participants == {"A", "C"}
        assert all(change.new is not None for change in seen)

    def test_no_notification_for_redundant_update(self):
        server = make_server()
        attributes = attrs("172.0.0.2", [65002])
        server.announce("B", P1, attributes)
        seen = []
        server.add_listener(seen.extend)
        server.announce("B", P1, attributes)
        assert seen == []

    def test_withdrawal_change_has_none_new(self):
        server = make_server()
        server.announce("B", P1, attrs("172.0.0.2", [65002]))
        seen = []
        server.add_listener(seen.extend)
        server.withdraw("B", P1)
        assert all(change.new is None for change in seen)

    def test_better_route_switches_best(self):
        server = make_server()
        server.announce("B", P1, attrs("172.0.0.2", [65002, 7000]))
        seen = []
        server.add_listener(seen.extend)
        server.announce("C", P1, attrs("172.0.0.3", [65003]))
        change = next(c for c in seen if c.participant == "A")
        assert change.old.learned_from == "B"
        assert change.new.learned_from == "C"


class TestBulkLoad:
    def test_bulk_load_applies_without_notification(self):
        server = make_server()
        seen = []
        server.add_listener(seen.extend)
        count = server.bulk_load([
            Update.announce("B", P1, attrs("172.0.0.2", [65002])),
            Update.announce("C", P2, attrs("172.0.0.3", [65003])),
        ])
        assert count == 2
        assert seen == []
        assert server.best_route_for("A", P1) is not None
        assert server.updates_processed == 2

    def test_bulk_load_requires_established_session(self):
        server = RouteServer()
        server.add_peer("A", 65001, connect=False)
        with pytest.raises(BgpError):
            server.bulk_load([Update.withdraw("A", P1)])


class TestReadvertisement:
    def test_announcement_sent_on_session(self):
        server = make_server()
        server.announce("B", P1, attrs("172.0.0.2", [65002]))
        change = BestRouteChange("A", P1, None, server.best_route_for("A", P1))
        sent = server.readvertise([change])
        assert len(sent) == 1
        assert server.session("A").sent_log[-1].announcements[0].prefix == P1

    def test_withdrawal_sent_when_new_is_none(self):
        server = make_server()
        change = BestRouteChange("A", P1, None, None)
        sent = server.readvertise([change])
        assert sent[0].withdrawals[0].prefix == P1

    def test_next_hop_rewriter_applies(self):
        server = make_server()
        server.set_next_hop_rewriter(
            lambda participant, prefix, route: IPv4Address("192.0.2.77"))
        server.announce("B", P1, attrs("172.0.0.2", [65002]))
        change = BestRouteChange("A", P1, None, server.best_route_for("A", P1))
        sent = server.readvertise([change])
        announced = sent[0].announcements[0]
        assert announced.attributes.next_hop == IPv4Address("192.0.2.77")

    def test_view_for_builds_loc_rib(self):
        server = make_server()
        server.announce("B", P1, attrs("172.0.0.2", [65002]))
        server.announce("C", P2, attrs("172.0.0.3", [65003]))
        view = server.view_for("A")
        assert view.prefixes() == (P1, P2)
        own_view = server.view_for("B")
        assert own_view.prefixes() == (P2,)
