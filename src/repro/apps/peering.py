"""Application-specific peering (Section 2, first application).

"Two neighboring ASes exchange traffic only for certain applications."
The helper installs one outbound clause per application class and returns
the installed policies so the arrangement can be torn down when the
peering agreement ends.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence

from repro.core.sdxpolicy import ParticipantHandle
from repro.exceptions import PolicyError
from repro.policy.policies import Policy, fwd, match

#: Port numbers for common application classes.
APPLICATION_PORTS: Dict[str, Sequence[int]] = {
    "web": (80, 443),
    "video": (1935, 8080),
    "dns": (53,),
    "mail": (25, 587, 993),
}


def application_specific_peering(handle: ParticipantHandle,
                                 peer: str,
                                 applications: Iterable[str] = ("web",),
                                 extra_ports: Iterable[int] = ()) -> List[Policy]:
    """Peer with ``peer`` only for the named application classes.

    Returns the installed policies (one per destination port), which the
    caller can later pass to ``handle.remove_outbound`` to dissolve the
    arrangement.
    """
    ports: List[int] = list(extra_ports)
    for application in applications:
        try:
            ports.extend(APPLICATION_PORTS[application])
        except KeyError:
            raise PolicyError(
                f"unknown application class {application!r}; known: "
                f"{sorted(APPLICATION_PORTS)}") from None
    if not ports:
        raise PolicyError("application-specific peering needs at least one port")
    installed: List[Policy] = []
    for port in dict.fromkeys(ports):
        policy = match(dstport=port) >> fwd(peer)
        handle.add_outbound(policy)
        installed.append(policy)
    return installed
