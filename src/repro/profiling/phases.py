"""Attribute span wall time to named pipeline stages.

The telemetry tracer records *what ran*; this module answers *where the
time went*. Every span name the pipeline emits maps to one of a dozen
named stages (:data:`PHASE_BY_SPAN`), and :func:`attribute_spans` folds
a finished-span buffer into per-stage **self time** — each span's
duration minus its direct children's, so a stage is never double-billed
for work its sub-stages already claimed. Span names with no mapping
inherit the nearest mapped ancestor's phase (the ``compile`` internals
all land under the compile stages); spans with no mapped ancestor fall
into the ``unattributed`` bucket, which is what the coverage number —
"how much of the profiled wall time do the named stages explain" — is
measured against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from repro.telemetry.trace import Span

#: The phase bucket for spans no mapping (direct or inherited) covers.
UNATTRIBUTED = "unattributed"

#: Span name -> named pipeline stage. Spans created inside one of these
#: (cache fills, helper calls that open their own spans) inherit the
#: phase of their nearest mapped ancestor.
PHASE_BY_SPAN: Mapping[str, str] = {
    # BGP ingestion and the route-server decision process.
    "bgp.ingest": "bgp_ingest",
    "bgp.decision": "bgp_ingest",
    # The policy join: default forwarding plus per-participant
    # outbound/inbound compilation against the current RIBs.
    "compile.defaults": "policy_join",
    "compile.outbound": "policy_join",
    "compile.inbound": "policy_join",
    # Minimum Disjoint Subsets / FEC grouping and VNH assignment.
    "compile.fec": "mds_fec_grouping",
    "vnh.assign_groups": "vnh_assignment",
    "vnh.assign": "vnh_assignment",
    # Classifier composition (the cross-product) and table reduction.
    "compile.composition": "classifier_cross_product",
    "compile.reduction": "classifier_cross_product",
    # The compile span's own self time: stage glue, timing bookkeeping.
    "compile": "compile_overhead",
    # The two-stage incremental update path.
    "controller.update": "incremental_delta",
    "fastpath": "incremental_delta",
    "fastpath.prefix": "incremental_delta",
    "compile.fastpath": "incremental_delta",
    # Re-advertisement after a table swap (VNH/VMAC re-announce).
    "controller.advertise": "readvertise",
    # Southbound: diff computation vs applying mods to the table.
    "southbound.sync": "southbound_diff",
    "southbound.diff": "southbound_diff",
    "southbound.push": "southbound_diff",
    "southbound.apply": "southbound_swap",
    "flowtable.apply": "southbound_swap",
    # Control-plane runtime event drain and its recompile trigger.
    "runtime.step": "runtime_drain",
    "runtime.recompile": "orchestration",
    # Controller orchestration around the stages above.
    "controller.start": "orchestration",
    "controller.recompile": "orchestration",
    "install_full": "orchestration",
    "recompile": "orchestration",
    # Pre-compilation static analysis.
    "statics.analyze": "statics",
    # Verification harness driver.
    "fuzz.scenario": "verification",
}


@dataclass
class PhaseStat:
    """Aggregated cost of one named pipeline stage."""

    name: str
    self_seconds: float = 0.0
    calls: int = 0
    net_bytes: int = 0
    peak_bytes: int = 0

    def merge_span(self, self_seconds: float, span: Span) -> None:
        """Fold one span's self time (and memory tags) into the stat."""
        self.self_seconds += self_seconds
        self.calls += 1
        net = span.tags.get("mem_net_bytes")
        if isinstance(net, int):
            self.net_bytes += net
        peak = span.tags.get("mem_peak_bytes")
        if isinstance(peak, int) and peak > self.peak_bytes:
            self.peak_bytes = peak

    def to_dict(self) -> Dict[str, object]:
        """A JSON-serialisable view of the stat."""
        return {
            "phase": self.name,
            "self_seconds": self.self_seconds,
            "calls": self.calls,
            "net_bytes": self.net_bytes,
            "peak_bytes": self.peak_bytes,
        }


@dataclass
class PhaseReport:
    """Per-stage attribution of one profiled run."""

    phases: Dict[str, PhaseStat] = field(default_factory=dict)
    total_seconds: float = 0.0
    span_count: int = 0

    @property
    def attributed_seconds(self) -> float:
        """Wall time the named stages explain."""
        return sum(stat.self_seconds for name, stat in self.phases.items()
                   if name != UNATTRIBUTED)

    @property
    def coverage(self) -> float:
        """Fraction of total wall time attributed to named stages."""
        if self.total_seconds <= 0.0:
            return 0.0
        return min(1.0, self.attributed_seconds / self.total_seconds)

    def sorted_phases(self) -> List[PhaseStat]:
        """Stats ordered by descending self time."""
        return sorted(self.phases.values(),
                      key=lambda stat: -stat.self_seconds)

    def to_dict(self) -> Dict[str, object]:
        """A JSON-serialisable view of the report."""
        return {
            "total_seconds": self.total_seconds,
            "attributed_seconds": self.attributed_seconds,
            "coverage": self.coverage,
            "span_count": self.span_count,
            "phases": [stat.to_dict() for stat in self.sorted_phases()],
        }

    def render(self) -> str:
        """A plain-text table: phase, self ms, share, calls, memory."""
        lines = [f"{'phase':<26} {'self ms':>10} {'share':>7} "
                 f"{'calls':>7} {'net KiB':>9} {'peak KiB':>9}"]
        for stat in self.sorted_phases():
            share = (stat.self_seconds / self.total_seconds
                     if self.total_seconds else 0.0)
            lines.append(
                f"{stat.name:<26} {stat.self_seconds * 1000:>10.2f} "
                f"{share:>6.1%} {stat.calls:>7} "
                f"{stat.net_bytes / 1024:>9.1f} "
                f"{stat.peak_bytes / 1024:>9.1f}")
        lines.append(
            f"{'total':<26} {self.total_seconds * 1000:>10.2f} "
            f"{1.0:>6.1%} {self.span_count:>7}")
        lines.append(f"coverage: {self.coverage:.1%} of wall time "
                     f"attributed to named stages")
        return "\n".join(lines)


def phase_of(name: str) -> Optional[str]:
    """The stage mapped to a span name, or ``None`` when unmapped."""
    return PHASE_BY_SPAN.get(name)


def self_times(spans: Sequence[Span]) -> Dict[int, float]:
    """Per-span self time: duration minus direct children's durations.

    Children whose parent was evicted from the buffer simply don't
    subtract from anything; negative self times (a child measured
    slightly longer than its parent at microsecond scale) clamp to 0.
    """
    child_seconds: Dict[int, float] = {}
    for span in spans:
        if span.parent_id is not None:
            child_seconds[span.parent_id] = (
                child_seconds.get(span.parent_id, 0.0) + span.duration)
    return {
        span.span_id: max(0.0, span.duration
                          - child_seconds.get(span.span_id, 0.0))
        for span in spans
    }


def attribute_spans(spans: Iterable[Span],
                    total_seconds: Optional[float] = None) -> PhaseReport:
    """Fold finished spans into a :class:`PhaseReport`.

    ``total_seconds`` is the denominator for coverage — the wall time of
    the profiled region. When omitted it defaults to the summed duration
    of the *root* spans in the buffer (spans whose parent is absent), so
    a workload wrapped in a single root span measures coverage against
    that root.
    """
    span_list = list(spans)
    by_id = {span.span_id: span for span in span_list}
    selfs = self_times(span_list)

    phase_cache: Dict[int, str] = {}

    def resolve(span: Span) -> str:
        cached = phase_cache.get(span.span_id)
        if cached is not None:
            return cached
        phase = phase_of(span.name)
        if phase is None:
            parent = (by_id.get(span.parent_id)
                      if span.parent_id is not None else None)
            phase = resolve(parent) if parent is not None else UNATTRIBUTED
        phase_cache[span.span_id] = phase
        return phase

    report = PhaseReport(span_count=len(span_list))
    for span in span_list:
        phase = resolve(span)
        stat = report.phases.get(phase)
        if stat is None:
            stat = report.phases[phase] = PhaseStat(name=phase)
        stat.merge_span(selfs[span.span_id], span)

    if total_seconds is None:
        total_seconds = sum(
            span.duration for span in span_list
            if span.parent_id is None or span.parent_id not in by_id)
    report.total_seconds = total_seconds
    return report
