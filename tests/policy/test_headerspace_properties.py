"""Property tests for :mod:`repro.policy.headerspace` subsumption.

The static analyzer's soundness rests on ``covers`` / ``intersect``
being a faithful region algebra — a dead-clause verdict is exactly a
chain of ``covers`` facts. These properties pin the algebra down over
randomly drawn spaces: CIDR nesting is subsumption, the wildcard is the
top element, empty intersections mean genuinely disjoint spaces, and
every non-empty intersection is covered by (and matches) both operands.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.addresses import IPv4Prefix
from repro.policy.headerspace import WILDCARD, HeaderSpace
from tests.policy.strategies import (
    clustered_prefixes,
    header_spaces,
    packets,
    transport_ports,
)

ip_values = st.integers(min_value=0, max_value=0xFFFFFFFF)


@st.composite
def nested_prefix_pairs(draw):
    """(shorter, longer) with the longer prefix inside the shorter one."""
    outer_length = draw(st.integers(min_value=0, max_value=24))
    extra = draw(st.integers(min_value=1, max_value=32 - outer_length))
    network = draw(ip_values)
    outer = IPv4Prefix(network=network, length=outer_length)
    inner = IPv4Prefix(network=network, length=outer_length + extra)
    return outer, inner


class TestNestedCidrCovers:
    @settings(max_examples=120, deadline=None)
    @given(nested_prefix_pairs())
    def test_shorter_prefix_covers_nested_longer_prefix(self, pair):
        outer, inner = pair
        assert HeaderSpace(dstip=outer).covers(HeaderSpace(dstip=inner))

    @settings(max_examples=120, deadline=None)
    @given(nested_prefix_pairs())
    def test_strictly_longer_prefix_never_covers_its_parent(self, pair):
        outer, inner = pair
        assert not HeaderSpace(dstip=inner).covers(HeaderSpace(dstip=outer))

    @settings(max_examples=120, deadline=None)
    @given(clustered_prefixes)
    def test_covers_is_reflexive_on_prefixes(self, prefix):
        assert HeaderSpace(dstip=prefix).covers(HeaderSpace(dstip=prefix))


class TestWildcardVersusExact:
    @settings(max_examples=120, deadline=None)
    @given(header_spaces())
    def test_wildcard_covers_everything(self, space):
        assert WILDCARD.covers(space)
        assert WILDCARD.intersect(space) == space

    @settings(max_examples=120, deadline=None)
    @given(header_spaces())
    def test_constrained_space_never_covers_the_wildcard(self, space):
        if space.is_wildcard:
            assert space.covers(WILDCARD)
        else:
            assert not space.covers(WILDCARD)

    @settings(max_examples=120, deadline=None)
    @given(packets())
    def test_wildcard_matches_every_packet(self, packet):
        assert WILDCARD.matches(packet)


class TestEmptyIntersections:
    @settings(max_examples=120, deadline=None)
    @given(transport_ports, transport_ports)
    def test_distinct_exact_values_are_disjoint(self, left, right):
        a = HeaderSpace(dstport=left)
        b = HeaderSpace(dstport=right)
        if left == right:
            assert a.intersect(b) == a
        else:
            assert a.intersect(b) is None

    @settings(max_examples=120, deadline=None)
    @given(clustered_prefixes, clustered_prefixes)
    def test_prefix_intersection_mirrors_cidr_overlap(self, left, right):
        result = HeaderSpace(dstip=left).intersect(HeaderSpace(dstip=right))
        if left.overlaps(right):
            longer = left if left.length >= right.length else right
            assert result == HeaderSpace(dstip=longer)
        else:
            assert result is None

    @settings(max_examples=120, deadline=None)
    @given(header_spaces(), transport_ports)
    def test_disjoint_on_one_field_kills_the_whole_space(self, space, port):
        constrained = space.with_constraint("dstport", port)
        if constrained is None:  # space already pinned a different port
            return
        other_port = 7777  # never drawn by transport_ports
        assert constrained.intersect(
            HeaderSpace(dstport=other_port)) is None


class TestIntersectionSemantics:
    @settings(max_examples=200, deadline=None)
    @given(header_spaces(), header_spaces())
    def test_both_operands_cover_a_non_empty_intersection(self, a, b):
        result = a.intersect(b)
        if result is not None:
            assert a.covers(result)
            assert b.covers(result)

    @settings(max_examples=200, deadline=None)
    @given(header_spaces(), header_spaces())
    def test_intersection_is_commutative(self, a, b):
        assert a.intersect(b) == b.intersect(a)

    @settings(max_examples=200, deadline=None)
    @given(header_spaces(), header_spaces(), packets())
    def test_intersection_matches_exactly_the_common_packets(self, a, b,
                                                            packet):
        result = a.intersect(b)
        both = a.matches(packet) and b.matches(packet)
        if result is None:
            assert not both
        else:
            assert result.matches(packet) == both

    @settings(max_examples=120, deadline=None)
    @given(header_spaces())
    def test_concretised_witness_matches_its_space(self, space):
        witness = space.concretise(port=0)
        assert space.matches(witness)
