"""Tests for the static policy verifier (``repro.statics``)."""
