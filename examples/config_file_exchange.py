#!/usr/bin/env python3
"""Operating an SDX from a configuration file.

A production exchange is configuration, not code: this example builds an
exchange programmatically, snapshots it to JSON, rebuilds an identical
controller from the file, and verifies both forward identically — the
adoption workflow for operators reviewing changes in version control.

Run with::

    python examples/config_file_exchange.py
"""

import json
import tempfile

from repro import SdxController, fwd, match
from repro.bgp.asn import AsPath
from repro.config import load_config, save_config
from repro.net.addresses import IPv4Prefix
from repro.net.packet import Packet


def build_exchange() -> SdxController:
    sdx = SdxController()
    client = sdx.add_participant("ClientISP", 64500)
    sdx.add_participant("CDN", 64501)
    sdx.add_participant("Transit", 64502)
    content = IPv4Prefix("60.0.0.0/8")
    sdx.announce_route("CDN", content, AsPath([64501, 15169]))
    sdx.announce_route("Transit", content, AsPath([64502, 3356, 15169]))
    # Hide one sensitive block from the client at announcement level.
    sdx.announce_route("Transit", IPv4Prefix("61.0.0.0/8"),
                       AsPath([64502, 3356]), communities={(0, 64500)})
    client.add_outbound(match(dstport=443) >> fwd("Transit"))
    return sdx


#: Uniform lint entry point (``repro lint-policies --examples``).
build = build_exchange


def main() -> None:
    original = build_exchange()
    original.start()

    with tempfile.NamedTemporaryFile("r", suffix=".json") as handle:
        save_config(original, handle.name)
        size = len(handle.read())
        print(f"wrote exchange configuration: {handle.name} ({size} bytes)")
        with open(handle.name) as saved:
            document = json.loads(saved.read())
        print(f"  participants: {len(document['participants'])}, "
              f"routes: {len(document['routes'])}, "
              f"policies: {len(document['policies'])}")
        clone = load_config(handle.name)
    clone.start()

    probes = [
        Packet(dstip="60.1.2.3", dstport=443, srcip="10.0.0.1", protocol=6),
        Packet(dstip="60.1.2.3", dstport=80, srcip="10.0.0.1", protocol=6),
        Packet(dstip="61.0.0.1", dstport=80, srcip="10.0.0.1", protocol=6),
    ]
    print()
    for probe in probes:
        left = original.egress_of("ClientISP", probe)
        right = clone.egress_of("ClientISP", probe)
        marker = "ok" if left == right else "MISMATCH"
        print(f"dst={probe['dstip']}:{probe['dstport']}  "
              f"original -> {left}  clone -> {right}  [{marker}]")
        assert left == right
    print()
    print("the reloaded exchange forwards identically.")


if __name__ == "__main__":
    main()
