"""Ablation — MDS/VNH grouping on vs off (Section 4.2).

Compiles the same generated IXP twice: once with the paper's VNH/VMAC
tag architecture, once with the naive data plane that matches destination
prefixes directly. The grouped table must be dramatically smaller (the
paper's motivation: naive compilation "could easily lead to millions of
forwarding rules"), while both planes forward identically — which the
integration test suite verifies packet-by-packet.
"""

from conftest import publish, publish_json

from repro.experiments.metrics import render_table
from repro.policy.policies import fwd, match
from repro.workloads.policies import generate_policies, install_assignments
from repro.workloads.topology import generate_ixp

PARTICIPANTS = 100
PREFIXES = 2_000


def _compile(use_vnh: bool):
    ixp = generate_ixp(PARTICIPANTS, PREFIXES, seed=0)
    controller = ixp.build_controller(use_vnh=use_vnh)
    install_assignments(controller, generate_policies(ixp, seed=1))
    # The paper's representative case: application-specific peering
    # toward the exchange's largest announcers. Eligibility guards for
    # these clauses span thousands of prefixes — or a handful of groups.
    big_targets = [spec.name for spec in ixp.top_by_prefixes(2)]
    clients = [spec.name for spec in ixp.participants
               if spec.name not in big_targets][:3]
    for client in clients:
        handle = controller.participant(client)
        for port, target in ((80, big_targets[0]), (443, big_targets[1])):
            handle.participant.add_outbound(match(dstport=port) >> fwd(target))
    return controller.start()


def _run():
    return _compile(True), _compile(False)


def test_ablation_mds_grouping(benchmark):
    grouped, naive = benchmark.pedantic(_run, rounds=1, iterations=1)
    publish("ablation_mds", render_table(
        ["variant", "prefix groups", "flow rules", "compile seconds"],
        [["VNH/MDS grouping", grouped.prefix_group_count,
          grouped.flow_rule_count, f"{grouped.total_seconds:.3f}"],
         ["naive per-prefix", naive.prefix_group_count,
          naive.flow_rule_count, f"{naive.total_seconds:.3f}"]]))
    publish_json("ablation_mds", [
        {"variant": "vnh_mds_grouping",
         "prefix_group_count": grouped.prefix_group_count,
         "flow_rule_count": grouped.flow_rule_count,
         "compile_seconds": grouped.total_seconds},
        {"variant": "naive_per_prefix",
         "prefix_group_count": naive.prefix_group_count,
         "flow_rule_count": naive.flow_rule_count,
         "compile_seconds": naive.total_seconds},
    ])

    # Grouping wins by a large factor on table size.
    assert naive.flow_rule_count > 4 * grouped.flow_rule_count
    # The naive plane tracks prefixes, the grouped one tracks groups.
    assert grouped.prefix_group_count < PREFIXES / 5
    assert naive.prefix_group_count == 0  # no groups computed at all
