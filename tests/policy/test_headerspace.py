"""Unit and property tests for header-space intersection and subsumption."""

import pytest
from hypothesis import given

from repro.exceptions import FieldError
from repro.net.addresses import IPv4Prefix
from repro.net.packet import Packet
from repro.policy.headerspace import WILDCARD, HeaderSpace, coerce_constraint

from tests.policy.strategies import header_spaces, packets


class TestConstraintCoercion:
    def test_ip_field_accepts_prefix_text(self):
        assert coerce_constraint("dstip", "10.0.0.0/8") == IPv4Prefix("10.0.0.0/8")

    def test_ip_field_address_becomes_slash_32(self):
        assert coerce_constraint("dstip", "10.0.0.1") == IPv4Prefix("10.0.0.1/32")

    def test_ip_field_accepts_int(self):
        assert coerce_constraint("srcip", 0x0A000001) == IPv4Prefix("10.0.0.1/32")

    def test_int_field_rejects_negative(self):
        with pytest.raises(FieldError):
            coerce_constraint("dstport", -1)

    def test_int_field_rejects_bool(self):
        with pytest.raises(FieldError):
            coerce_constraint("dstport", True)

    def test_unknown_field_rejected(self):
        with pytest.raises(FieldError):
            coerce_constraint("vlan", 1)


class TestHeaderSpaceMatching:
    def test_wildcard_matches_everything(self):
        assert WILDCARD.matches(Packet())
        assert WILDCARD.is_wildcard

    def test_exact_match(self):
        space = HeaderSpace(dstport=80)
        assert space.matches(Packet(dstport=80))
        assert not space.matches(Packet(dstport=443))

    def test_missing_field_does_not_match(self):
        assert not HeaderSpace(dstport=80).matches(Packet(port=1))

    def test_prefix_match(self):
        space = HeaderSpace(dstip="10.0.0.0/8")
        assert space.matches(Packet(dstip="10.9.9.9"))
        assert not space.matches(Packet(dstip="11.0.0.1"))

    def test_conjunction_of_fields(self):
        space = HeaderSpace(port=1, dstport=80)
        assert space.matches(Packet(port=1, dstport=80))
        assert not space.matches(Packet(port=2, dstport=80))


class TestIntersect:
    def test_disjoint_exact_values_give_none(self):
        assert HeaderSpace(dstport=80).intersect(HeaderSpace(dstport=443)) is None

    def test_different_fields_merge(self):
        merged = HeaderSpace(dstport=80).intersect(HeaderSpace(port=1))
        assert merged == HeaderSpace(dstport=80, port=1)

    def test_nested_prefixes_take_longer(self):
        merged = HeaderSpace(dstip="10.0.0.0/8").intersect(HeaderSpace(dstip="10.1.0.0/16"))
        assert merged == HeaderSpace(dstip="10.1.0.0/16")

    def test_disjoint_prefixes_give_none(self):
        left = HeaderSpace(dstip="10.0.0.0/8")
        assert left.intersect(HeaderSpace(dstip="11.0.0.0/8")) is None

    def test_wildcard_is_identity(self):
        space = HeaderSpace(dstport=80)
        assert WILDCARD.intersect(space) == space
        assert space.intersect(WILDCARD) == space

    @given(header_spaces(), header_spaces())
    def test_intersect_symmetric_property(self, left, right):
        assert left.intersect(right) == right.intersect(left)

    @given(header_spaces(), header_spaces(), packets())
    def test_intersect_is_conjunction_property(self, left, right, packet):
        merged = left.intersect(right)
        both = left.matches(packet) and right.matches(packet)
        if merged is None:
            assert not both
        else:
            assert merged.matches(packet) == both


class TestCovers:
    def test_wildcard_covers_all(self):
        assert WILDCARD.covers(HeaderSpace(dstport=80))

    def test_specific_does_not_cover_wildcard(self):
        assert not HeaderSpace(dstport=80).covers(WILDCARD)

    def test_prefix_covers_longer_prefix(self):
        assert HeaderSpace(dstip="10.0.0.0/8").covers(HeaderSpace(dstip="10.1.0.0/16"))
        assert not HeaderSpace(dstip="10.1.0.0/16").covers(HeaderSpace(dstip="10.0.0.0/8"))

    @given(header_spaces(), header_spaces(), packets())
    def test_covers_implies_match_subset_property(self, left, right, packet):
        if left.covers(right) and right.matches(packet):
            assert left.matches(packet)

    @given(header_spaces(), header_spaces())
    def test_covers_consistent_with_intersection_property(self, left, right):
        if left.covers(right):
            assert left.intersect(right) == right


class TestManipulation:
    def test_with_constraint(self):
        space = HeaderSpace(dstport=80).with_constraint("port", 1)
        assert space == HeaderSpace(dstport=80, port=1)

    def test_with_conflicting_constraint_gives_none(self):
        assert HeaderSpace(dstport=80).with_constraint("dstport", 443) is None

    def test_without_field(self):
        assert HeaderSpace(dstport=80, port=1).without_field("port") == HeaderSpace(dstport=80)
        assert HeaderSpace(dstport=80).without_field("port") == HeaderSpace(dstport=80)

    def test_concretise_picks_representative(self):
        space = HeaderSpace(dstip="10.0.0.0/8", dstport=80)
        packet = space.concretise(port=1)
        assert space.matches(packet)
        assert packet.port == 1

    def test_items_sorted_uses_canonical_field_order(self):
        space = HeaderSpace(dstport=80, port=1, srcip="10.0.0.0/8")
        names = [name for name, _ in space.items_sorted()]
        assert names == ["port", "srcip", "dstport"]

    def test_equality_and_hash(self):
        left = HeaderSpace(dstport=80, port=1)
        right = HeaderSpace(port=1, dstport=80)
        assert left == right and hash(left) == hash(right)

    def test_repr_wildcard(self):
        assert repr(WILDCARD) == "HeaderSpace(*)"
