"""Churn and failure workloads: seeded BGP session-lifecycle faults.

The paper's evaluation (Section 6, Fig. 8) drives the SDX with clean
update bursts; operational exchanges additionally see sessions dying
mid-burst, flap storms, and wedged routes. This module describes those
faults as data — a :class:`ChaosSchedule` of :class:`ChaosFault` records,
fully serialisable and derived from one integer seed — so a failing
chaos run replays bit-for-bit and shrinks exactly like a PR-3 fuzzing
scenario. The execution engine lives in :mod:`repro.chaos`; this module
deliberately knows nothing about controllers or runtimes so the
dependency arrow points one way (chaos -> workloads).

Six fault kinds model the session lifecycle (:data:`FAULT_KINDS`):

``peer_down``
    The peer's session fails; its input RIB is flushed by the implied
    withdrawal that :meth:`repro.bgp.session.BgpSession.fail` emits, and
    re-advertisements to it are skipped until recovery.
``peer_up``
    A failed (or healthy) peer (re)announces its full intended table —
    the post-recovery announcement storm of a real session bounce.
``flap``
    ``flaps`` consecutive down/up cycles; with ``hold_steps > 0`` the
    final recovery is *damped*, deferred that many trace steps (the
    configurable hold timer).
``correlated_failure``
    Several peers fail at the same instant (shared backhaul, power).
``stuck_route``
    An update applied to the route server without notifying the
    compiler — the wedge stays until an explicit flush.
``midswap_reset``
    A session reset fired from a southbound observer *while* a two-phase
    table swap is in flight, racing teardown against rule installation.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.bgp.messages import Update
from repro.net.addresses import IPv4Prefix
from repro.workloads.seeding import SeedLike, make_rng

#: Serialisation format version stamped into every schedule dict.
CHAOS_SCHEDULE_VERSION = 1

#: The six fault classes, in the order coverage-first generation uses.
FAULT_KINDS: Tuple[str, ...] = (
    "peer_down",
    "peer_up",
    "flap",
    "correlated_failure",
    "stuck_route",
    "midswap_reset",
)


@dataclass(frozen=True)
class ChaosFault:
    """One scheduled fault.

    ``step`` is the trace index the fault fires after (an index at or
    beyond the trace length fires after the whole trace has been
    submitted). ``participants`` names the affected peers — one for
    most kinds, two or more for ``correlated_failure``. ``flaps`` and
    ``hold_steps`` parameterise ``flap``; ``prefix``/``as_path``
    describe the route a ``stuck_route`` fault injects.
    """

    kind: str
    step: int
    participants: Tuple[str, ...]
    flaps: int = 0
    hold_steps: int = 0
    prefix: Optional[str] = None
    as_path: Tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if not self.participants:
            raise ValueError(f"{self.kind} fault names no participants")

    def describe(self) -> str:
        """A one-line human-readable rendering."""
        who = ",".join(self.participants)
        extra = ""
        if self.kind == "flap":
            extra = f" x{self.flaps} hold={self.hold_steps}"
        elif self.kind == "stuck_route":
            extra = f" prefix={self.prefix}"
        return f"{self.kind}@{self.step}({who}{extra})"


@dataclass(frozen=True)
class ChaosSchedule:
    """A seeded, serialisable fault schedule for one scenario trace."""

    seed: int
    faults: Tuple[ChaosFault, ...]

    def kinds(self) -> Tuple[str, ...]:
        """The distinct fault kinds scheduled, in :data:`FAULT_KINDS` order."""
        present = {fault.kind for fault in self.faults}
        return tuple(kind for kind in FAULT_KINDS if kind in present)

    def faults_at(self, step: int) -> Tuple[ChaosFault, ...]:
        """Every fault that fires after trace index ``step``."""
        return tuple(fault for fault in self.faults if fault.step == step)

    def faults_after(self, trace_length: int) -> Tuple[ChaosFault, ...]:
        """Every fault scheduled past the end of a ``trace_length`` trace."""
        return tuple(fault for fault in self.faults
                     if fault.step >= trace_length)

    def without_fault(self, index: int) -> "ChaosSchedule":
        """A copy with the ``index``-th fault removed (for shrinking)."""
        return replace(self, faults=(self.faults[:index]
                                     + self.faults[index + 1:]))

    def remap_for_removed_step(self, removed: int) -> "ChaosSchedule":
        """Shift fault steps after trace index ``removed`` was deleted."""
        return replace(self, faults=tuple(
            replace(fault, step=fault.step - 1)
            if fault.step > removed else fault
            for fault in self.faults))

    # ------------------------------------------------------------------
    # Serialisation (exact JSON round-trip, like PR-3 scenarios)
    # ------------------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """A JSON-safe dict (see :meth:`from_dict` for the inverse)."""
        payload = asdict(self)
        payload["version"] = CHAOS_SCHEDULE_VERSION
        return payload

    def to_json(self) -> str:
        """The schedule as deterministic, pretty-printed JSON."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "ChaosSchedule":
        """Rebuild a schedule from :meth:`to_dict` output."""
        version = payload.get("version", CHAOS_SCHEDULE_VERSION)
        if version != CHAOS_SCHEDULE_VERSION:
            raise ValueError(f"unsupported chaos schedule version {version!r}")
        return cls(
            seed=int(payload["seed"]),  # type: ignore[arg-type]
            faults=tuple(
                ChaosFault(
                    kind=item["kind"], step=int(item["step"]),
                    participants=tuple(item["participants"]),
                    flaps=int(item.get("flaps", 0)),
                    hold_steps=int(item.get("hold_steps", 0)),
                    prefix=item.get("prefix"),
                    as_path=tuple(item.get("as_path", ())))
                for item in payload["faults"]))  # type: ignore[union-attr]

    @classmethod
    def from_json(cls, text: str) -> "ChaosSchedule":
        """Rebuild a schedule from :meth:`to_json` output."""
        return cls.from_dict(json.loads(text))


def generate_chaos_schedule(seed: SeedLike, participants: Sequence[str], *,
                            prefixes: Sequence[str],
                            trace_length: int,
                            faults: int = 6,
                            kinds: Sequence[str] = FAULT_KINDS,
                            max_flaps: int = 3,
                            max_hold_steps: int = 3) -> ChaosSchedule:
    """A deterministic fault schedule from one seed.

    The first ``min(faults, len(kinds))`` faults cycle through ``kinds``
    in order, so a schedule long enough is guaranteed to cover every
    requested class; later faults draw kinds at random. Fault steps are
    drawn over ``[0, trace_length]`` (the extra slot fires after the
    trace ends) and the result is sorted by step, stable within a step.
    """
    if not participants:
        raise ValueError("a chaos schedule needs at least one participant")
    for kind in kinds:
        if kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {kind!r}")
    rng = make_rng(seed, salt=0xC4A0)
    base_seed = seed if isinstance(seed, int) else rng.getrandbits(31)
    names = list(participants)
    out: List[ChaosFault] = []
    for index in range(faults):
        kind = (kinds[index % len(kinds)] if index < len(kinds)
                else rng.choice(list(kinds)))
        step = rng.randrange(trace_length + 1)
        if kind == "correlated_failure" and len(names) >= 2:
            count = rng.randrange(2, len(names) + 1)
            chosen = tuple(sorted(rng.sample(names, count)))
        else:
            chosen = (rng.choice(names),)
        flaps = rng.randrange(1, max_flaps + 1) if kind == "flap" else 0
        hold = (rng.randrange(0, max_hold_steps + 1)
                if kind == "flap" else 0)
        prefix = rng.choice(list(prefixes)) if (
            kind == "stuck_route" and prefixes) else None
        as_path: Tuple[int, ...] = ()
        if kind == "stuck_route":
            as_path = tuple(rng.randrange(1_000, 60_000)
                            for _ in range(rng.randrange(1, 4)))
        out.append(ChaosFault(
            kind=kind, step=step, participants=chosen, flaps=flaps,
            hold_steps=hold, prefix=prefix, as_path=as_path))
    out.sort(key=lambda fault: fault.step)
    return ChaosSchedule(seed=base_seed, faults=tuple(out))


def generate_withdrawal_flood(participants: Sequence[str],
                              prefixes: Sequence[str], *,
                              count: int,
                              seed: SeedLike = 0) -> List[Update]:
    """``count`` withdrawal-only updates, seeded and deterministic.

    The overload tests drive the runtime's shed/degrade paths with this:
    withdrawals never coalesce *upward* into announcements, so a pure
    flood exercises the queue's pressure handling without the mixed-burst
    structure the calibrated trace generator produces.
    """
    if not participants or not prefixes:
        raise ValueError("a withdrawal flood needs participants and prefixes")
    rng = make_rng(seed, salt=0xF10D)
    return [
        Update.withdraw(rng.choice(list(participants)),
                        IPv4Prefix(rng.choice(list(prefixes))))
        for _ in range(count)
    ]
