"""Tests for tracing spans: nesting, loss accounting, disabled mode."""

import pytest

from repro.telemetry import Telemetry
from repro.telemetry.registry import MetricsRegistry
from repro.telemetry.trace import _NULL_HANDLE, Tracer


class TestSpanNesting:
    def test_parent_child_ids(self):
        tracer = Tracer()
        with tracer.span("parent"), tracer.span("child"):
            pass
        parent, child = sorted(tracer.finished(), key=lambda s: s.span_id)
        assert parent.name == "parent"
        assert child.parent_id == parent.span_id
        assert child.trace_id == parent.trace_id == parent.span_id

    def test_siblings_share_trace(self):
        tracer = Tracer()
        with tracer.span("root"):
            with tracer.span("first"):
                pass
            with tracer.span("second"):
                pass
        spans = {span.name: span for span in tracer.finished()}
        root = spans["root"]
        assert spans["first"].parent_id == root.span_id
        assert spans["second"].parent_id == root.span_id
        assert spans["first"].trace_id == spans["second"].trace_id

    def test_separate_bursts_get_separate_traces(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        a, b = tracer.finished()
        assert a.trace_id != b.trace_id

    def test_durations_non_negative_and_ordered(self):
        tracer = Tracer()
        with tracer.span("outer"), tracer.span("inner"):
            pass
        spans = {span.name: span for span in tracer.finished()}
        assert spans["inner"].duration >= 0.0
        assert spans["outer"].duration >= spans["inner"].duration

    def test_tags_from_call_and_set_tag(self):
        tracer = Tracer()
        with tracer.span("work", items=3) as span:
            span.set_tag(result=7)
        (finished,) = tracer.finished()
        assert finished.tags == {"items": 3, "result": 7}

    def test_exception_recorded_as_error_tag(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError), tracer.span("work"):
            raise RuntimeError("boom")
        (finished,) = tracer.finished()
        assert finished.tags["error"] == "RuntimeError"

    def test_current_span(self):
        tracer = Tracer()
        assert tracer.current_span is None
        with tracer.span("work"):
            assert tracer.current_span.name == "work"
        assert tracer.current_span is None


class TestLossAccounting:
    def test_overflow_evicts_oldest_and_counts(self):
        registry = MetricsRegistry()
        tracer = Tracer(capacity=2, registry=registry)
        for index in range(5):
            with tracer.span(f"span-{index}"):
                pass
        assert tracer.spans_dropped == 3
        names = [span.name for span in tracer.finished()]
        assert names == ["span-3", "span-4"]
        assert registry.get("sdx_trace_spans_dropped_total").value == 3
        assert registry.get("sdx_trace_spans_total").value == 5
        assert "dropped" in tracer.render()

    def test_orphaned_children_surface_as_roots(self):
        tracer = Tracer(capacity=1)
        with tracer.span("parent"), tracer.span("child"):
            pass
        # The child finished first, then the parent evicted it... the
        # buffer holds only the parent; with capacity 1 the child is gone.
        # Reverse case: keep the child, evict nothing else.
        tree = tracer.span_tree()
        assert len(tree) == 1  # whatever survived is a root

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            Tracer(capacity=0)

    def test_clear_keeps_loss_count(self):
        tracer = Tracer(capacity=1)
        for _ in range(3):
            with tracer.span("s"):
                pass
        tracer.clear()
        assert tracer.finished() == ()
        assert tracer.spans_dropped == 2


class TestSpanTreeTraversal:
    def test_evicted_parent_promotes_child_to_root(self):
        tracer = Tracer(capacity=2)
        with tracer.span("parent"):
            with tracer.span("first"):
                pass
            with tracer.span("second"):
                pass
        # Buffer holds [second, parent]; "first" was evicted. Its
        # sibling still nests; nothing is silently lost from the forest.
        names = {span.name for span in tracer.finished()}
        assert names == {"second", "parent"}
        (root,) = tracer.span_tree()
        assert root["name"] == "parent"
        assert [child["name"] for child in root["children"]] == ["second"]

    def test_children_ordered_by_start_time(self):
        tracer = Tracer()
        with tracer.span("root"):
            for name in ("a", "b", "c"):
                with tracer.span(name):
                    pass
        (root,) = tracer.span_tree()
        assert [child["name"] for child in root["children"]] == \
            ["a", "b", "c"]

    def test_forest_accounts_for_every_buffered_span(self):
        tracer = Tracer(capacity=3)
        with tracer.span("outer"):
            with tracer.span("mid"):
                with tracer.span("deep1"):
                    pass
                with tracer.span("deep2"):
                    pass

        def count(node):
            return 1 + sum(count(child) for child in node["children"])

        total = sum(count(root) for root in tracer.span_tree())
        assert total == len(tracer.finished()) == 3


class RecordingListener:
    """Captures the span_opened/span_closed callback order."""

    def __init__(self):
        self.events = []

    def span_opened(self, span):
        self.events.append(("open", span.name, span.start))

    def span_closed(self, span):
        self.events.append(("close", span.name, span.end))


class TestListeners:
    def test_opened_before_clock_closed_after(self):
        tracer = Tracer()
        listener = RecordingListener()
        tracer.add_listener(listener)
        with tracer.span("work"):
            pass
        (opened, closed) = listener.events
        # span_opened fires before the clock starts (start still 0);
        # span_closed fires after it stops (end is set).
        assert opened == ("open", "work", 0.0)
        assert closed[0] == "close" and closed[2] > 0.0

    def test_nesting_order_is_stack_like(self):
        tracer = Tracer()
        listener = RecordingListener()
        tracer.add_listener(listener)
        with tracer.span("outer"), tracer.span("inner"):
            pass
        kinds = [(kind, name) for kind, name, _ in listener.events]
        assert kinds == [("open", "outer"), ("open", "inner"),
                         ("close", "inner"), ("close", "outer")]

    def test_remove_listener_stops_callbacks(self):
        tracer = Tracer()
        listener = RecordingListener()
        tracer.add_listener(listener)
        tracer.remove_listener(listener)
        with tracer.span("work"):
            pass
        assert listener.events == []

    def test_duplicate_add_registers_once(self):
        tracer = Tracer()
        listener = RecordingListener()
        tracer.add_listener(listener)
        tracer.add_listener(listener)
        with tracer.span("work"):
            pass
        assert len(listener.events) == 2  # one open + one close

    def test_partial_listener_without_open_hook(self):
        class CloseOnly:
            closed = 0

            def span_closed(self, span):
                CloseOnly.closed += 1

        tracer = Tracer()
        tracer.add_listener(CloseOnly())
        with tracer.span("work"):
            pass
        assert CloseOnly.closed == 1


class TestDisabledTracer:
    def test_disabled_returns_shared_null_handle(self):
        tracer = Tracer(enabled=False)
        handle = tracer.span("work", tag=1)
        assert handle is _NULL_HANDLE
        with handle as span:
            span.set_tag(more=2)
        assert tracer.finished() == ()

    def test_reenabling_records_again(self):
        tracer = Tracer(enabled=False)
        with tracer.span("skipped"):
            pass
        tracer.enabled = True
        with tracer.span("kept"):
            pass
        assert [span.name for span in tracer.finished()] == ["kept"]


class TestRendering:
    def test_span_tree_shape(self):
        tracer = Tracer()
        with tracer.span("root"), tracer.span("child"):
            pass
        (root,) = tracer.span_tree()
        assert root["name"] == "root"
        assert root["children"][0]["name"] == "child"
        assert root["children"][0]["parent_id"] == root["span_id"]

    def test_render_tree_text(self):
        tracer = Tracer()
        with tracer.span("root", size=2), tracer.span("child"):
            pass
        text = tracer.render()
        assert "root" in text and "size=2" in text
        assert "\n  child" in text  # indented under the root

    def test_render_empty(self):
        assert Tracer().render() == "(no spans recorded)"


class TestTelemetryFacade:
    def test_shares_registry_with_tracer(self):
        telemetry = Telemetry()
        with telemetry.span("work"):
            pass
        assert telemetry.registry.get("sdx_trace_spans_total").value == 1

    def test_snapshot_structure(self):
        telemetry = Telemetry()
        telemetry.registry.counter("sdx_x_dropped_total").inc()
        with telemetry.span("work"):
            pass
        snapshot = telemetry.snapshot()
        assert snapshot["losses"]["sdx_x_dropped_total"] == 1
        assert snapshot["spans"][0]["name"] == "work"
        assert snapshot["spans_dropped"] == 0

    def test_default_telemetry_roundtrip(self):
        from repro.telemetry import get_telemetry, set_telemetry
        original = get_telemetry()
        try:
            assert get_telemetry() is original
            replacement = Telemetry()
            set_telemetry(replacement)
            assert get_telemetry() is replacement
        finally:
            set_telemetry(original)
