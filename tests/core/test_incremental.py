"""Tests for the two-stage incremental update path."""

from repro.bgp.asn import AsPath
from repro.core.incremental import FAST_PATH_BASE
from repro.net.addresses import IPv4Prefix

from tests.core.scenarios import P1, P3, P4, figure1_controller, packet


class TestFastPath:
    def test_update_installs_shadow_rules(self):
        sdx, *_ = figure1_controller()
        sdx.start()
        base_rules = len(sdx.table)
        sdx.withdraw_route("C", P1)
        assert len(sdx.table) > base_rules
        assert any(rule.priority > FAST_PATH_BASE for rule in sdx.table.rules)
        assert sdx.engine.dirty
        assert sdx.fast_path_log
        assert sdx.fast_path_log[-1].prefixes == (P1,)
        assert sdx.fast_path_log[-1].seconds > 0

    def test_withdrawal_shifts_default_immediately(self):
        sdx, *_ = figure1_controller()
        sdx.start()
        assert sdx.egress_of("A", packet("11.0.0.1", dstport=22)) == "C"
        sdx.withdraw_route("C", P1)
        assert sdx.egress_of("A", packet("11.0.0.1", dstport=22)) == "B"

    def test_withdrawal_disables_policy_eligibility(self):
        """Figure 5a's route-withdrawal event: when the policy's next hop
        loses the route, policy traffic follows the remaining path."""
        sdx, *_ = figure1_controller()
        sdx.start()
        assert sdx.egress_of("A", packet("11.0.0.1", dstport=80)) == "B"
        sdx.withdraw_route("B", P1)
        assert sdx.egress_of("A", packet("11.0.0.1", dstport=80)) == "C"

    def test_reannouncement_restores_policy(self):
        sdx, *_ = figure1_controller()
        sdx.start()
        sdx.withdraw_route("B", P1)
        sdx.announce_route("B", P1, AsPath([65002, 300, 100]))
        assert sdx.egress_of("A", packet("11.0.0.1", dstport=80)) == "B"

    def test_full_withdrawal_blackholes(self):
        sdx, *_ = figure1_controller()
        sdx.start()
        sdx.withdraw_route("C", P4)
        assert sdx.egress_of("A", packet("14.0.0.1", dstport=443)) is None
        assert sdx.egress_of("A", packet("14.0.0.1", dstport=22)) is None

    def test_new_prefix_announcement(self):
        sdx, *_ = figure1_controller()
        sdx.start()
        fresh = IPv4Prefix("16.0.0.0/8")
        sdx.announce_route("B", fresh, AsPath([65002, 700]))
        assert sdx.egress_of("A", packet("16.0.0.1", dstport=22)) == "B"
        # Policy eligibility applies to the new prefix too.
        assert sdx.egress_of("A", packet("16.0.0.1", dstport=80)) == "B"

    def test_fast_path_rules_constrained_to_new_vmac(self):
        sdx, *_ = figure1_controller()
        sdx.start()
        sdx.withdraw_route("C", P1)
        vmac = sdx.allocator.vmac_for_prefix(P1)
        fast_rules = [r for r in sdx.table.rules if r.priority > FAST_PATH_BASE]
        assert fast_rules
        for rule in fast_rules:
            assert rule.match.get("dstmac") == vmac

    def test_redundant_update_still_fast_pathed(self):
        """Prefix-level granularity: even a no-best-change announcement
        refreshes eligibility rules."""
        sdx, *_ = figure1_controller()
        sdx.start()
        invocations = sdx.engine.fast_path_invocations
        sdx.announce_route("C", P3, AsPath([65003, 400, 300]))
        assert sdx.engine.fast_path_invocations == invocations + 1


class TestBackgroundRecompilation:
    def test_reclaims_fast_path_rules(self):
        sdx, *_ = figure1_controller()
        sdx.start()
        sdx.withdraw_route("C", P1)
        assert sdx.engine.fast_path_rules_live > 0
        result = sdx.run_background_recompilation()
        assert result is not None
        assert sdx.engine.fast_path_rules_live == 0
        assert all(rule.priority < FAST_PATH_BASE for rule in sdx.table.rules)
        assert not sdx.engine.dirty

    def test_noop_when_clean(self):
        sdx, *_ = figure1_controller()
        sdx.start()
        assert sdx.run_background_recompilation() is None

    def test_forwarding_stable_across_recompilation(self):
        sdx, *_ = figure1_controller()
        sdx.start()
        sdx.withdraw_route("B", P1)
        before = {
            (dstip, dstport): sdx.egress_of("A", packet(dstip, dstport=dstport))
            for dstip in ("11.0.0.1", "12.0.0.1", "13.0.0.1", "14.0.0.1", "15.0.0.1")
            for dstport in (80, 443, 22)
        }
        sdx.run_background_recompilation()
        after = {
            key: sdx.egress_of("A", packet(key[0], dstport=key[1]))
            for key in before
        }
        assert before == after

    def test_ephemeral_vnhs_released(self):
        sdx, *_ = figure1_controller()
        sdx.start()
        sdx.withdraw_route("C", P1)
        assert sdx.allocator.ephemeral_prefixes()
        sdx.run_background_recompilation()
        assert sdx.allocator.ephemeral_prefixes() == ()


class TestBurstBehaviour:
    def test_burst_size_scales_rules(self):
        """Figure 9's mechanism: each updated prefix adds its own rules."""
        sdx, *_ = figure1_controller()
        sdx.start()
        sdx.withdraw_route("C", P1)
        single = sdx.engine.fast_path_rules_live
        sdx.run_background_recompilation()
        sdx.withdraw_route("C", P1)
        sdx.withdraw_route("B", P3)
        double = sdx.engine.fast_path_rules_live
        assert double > single
