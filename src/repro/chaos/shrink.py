"""Chaos shrinking: minimise a failing (scenario, schedule) pair.

Same philosophy as :mod:`repro.verification.shrink`, extended to the
two-dimensional input of a chaos run. Deterministic passes:

1. **fault removal** — try deleting each scheduled fault, scanning from
   the end; keep any deletion after which the run still fails. A
   one-fault reproduction is worth far more to a human than a six-fault
   pile-up, so faults shrink before trace steps.
2. **trace removal** — try deleting each trace step, end first; when a
   step is removed every fault scheduled after it shifts one position
   earlier (:meth:`~repro.workloads.churn.ChaosSchedule
   .remap_for_removed_step`), so fault/trace alignment is preserved.

Both passes iterate to a fixpoint under a shared ``max_runs`` budget.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Optional, Tuple

from repro.chaos.driver import chaos_failure
from repro.verification.oracle import OracleFailure
from repro.verification.scenario import Scenario
from repro.workloads.churn import ChaosSchedule

#: A runner: executes one chaos run, returns its first failure (or None).
ChaosRunnerFn = Callable[[Scenario, ChaosSchedule], Optional[OracleFailure]]


def shrink_chaos(scenario: Scenario, schedule: ChaosSchedule,
                 failure: Optional[OracleFailure] = None, *,
                 runner: ChaosRunnerFn = chaos_failure,
                 max_runs: int = 100
                 ) -> Tuple[Scenario, ChaosSchedule, OracleFailure, int]:
    """Minimise a failing chaos run.

    Returns ``(shrunk scenario, shrunk schedule, the failure it
    reproduces, runs spent)``. Raises ``ValueError`` when the input does
    not fail at all. ``max_runs`` bounds total chaos executions (each
    one replays the trace twice), so shrinking a pathological run stops
    early with whatever reduction it has.
    """
    runs = 0
    if failure is None:
        failure = runner(scenario, schedule)
        runs += 1
        if failure is None:
            raise ValueError("chaos run does not fail; nothing to shrink")

    changed = True
    while changed and runs < max_runs:
        changed = False

        # Pass 1: drop faults, end first.
        for index in reversed(range(len(schedule.faults))):
            if runs >= max_runs:
                break
            candidate = schedule.without_fault(index)
            result = runner(scenario, candidate)
            runs += 1
            if result is not None:
                schedule, failure = candidate, result
                changed = True

        # Pass 2: drop trace steps, end first, remapping fault steps.
        for index in reversed(range(len(scenario.trace))):
            if runs >= max_runs:
                break
            candidate_scenario = replace(
                scenario,
                trace=(scenario.trace[:index] + scenario.trace[index + 1:]))
            candidate_schedule = schedule.remap_for_removed_step(index)
            result = runner(candidate_scenario, candidate_schedule)
            runs += 1
            if result is not None:
                scenario = candidate_scenario
                schedule, failure = candidate_schedule, result
                changed = True
    return scenario, schedule, failure, runs
