"""Documentation gates: every public member documented, docs in sync."""

import importlib
import importlib.util
import inspect
import pathlib
import pkgutil

import pytest

import repro

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


def walk_public_members():
    names = ["repro"]
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if info.name == "repro.__main__":
            continue
        names.append(info.name)
    for module_name in sorted(names):
        module = importlib.import_module(module_name)
        for name, value in sorted(vars(module).items()):
            if name.startswith("_") or inspect.ismodule(value):
                continue
            if getattr(value, "__module__", None) != module.__name__:
                continue
            if inspect.isclass(value) or inspect.isfunction(value):
                yield module_name, name, value


class TestDocCoverage:
    def test_every_module_has_a_docstring(self):
        names = ["repro"] + [
            info.name
            for info in pkgutil.walk_packages(repro.__path__, prefix="repro.")
        ]
        missing = [
            name for name in names
            if not (importlib.import_module(name).__doc__ or "").strip()
        ]
        assert missing == []

    def test_every_public_member_has_a_docstring(self):
        missing = [
            f"{module_name}.{name}"
            for module_name, name, value in walk_public_members()
            if not (inspect.getdoc(value) or "").strip()
        ]
        assert missing == []

    def test_public_methods_have_docstrings(self):
        missing = []
        for module_name, name, value in walk_public_members():
            if not inspect.isclass(value):
                continue
            for method_name, method in vars(value).items():
                if method_name.startswith("_"):
                    continue
                if not callable(method) and not isinstance(method, property):
                    continue
                target = method.fget if isinstance(method, property) else method
                if target is None or not callable(target):
                    continue
                if not (inspect.getdoc(target) or "").strip():
                    missing.append(f"{module_name}.{name}.{method_name}")
        assert missing == []


class TestDocFiles:
    def test_required_documents_exist(self):
        for filename in ("README.md", "DESIGN.md", "EXPERIMENTS.md",
                         "docs/ARCHITECTURE.md", "docs/API.md"):
            path = REPO_ROOT / filename
            assert path.exists(), f"missing {filename}"
            assert len(path.read_text()) > 500

    def test_experiments_covers_every_figure(self):
        text = (REPO_ROOT / "EXPERIMENTS.md").read_text()
        for anchor in ("Table 1", "Figure 5a", "Figure 5b", "Figure 6",
                       "Figure 7", "Figure 8", "Figure 9", "Figure 10"):
            assert anchor in text

    def test_design_indexes_every_benchmark(self):
        text = (REPO_ROOT / "DESIGN.md").read_text()
        bench_dir = REPO_ROOT / "benchmarks"
        for bench in bench_dir.glob("bench_fig*.py"):
            assert bench.name in text or bench.stem.split("_")[1] in text

    def test_api_doc_generator_runs_clean(self, tmp_path):
        import tools.gen_api_docs as generator
        original = generator.OUTPUT
        generator.OUTPUT = tmp_path / "API.md"
        try:
            assert generator.main() == 0
            assert (tmp_path / "API.md").exists()
        finally:
            generator.OUTPUT = original


def load_example(stem):
    """Import one example module from ``examples/`` by file stem."""
    path = REPO_ROOT / "examples" / f"{stem}.py"
    spec = importlib.util.spec_from_file_location(f"example_{stem}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestExampleSmoke:
    """Every documented example builds (and the federated one runs)."""

    BUILDERS = (
        ("application_specific_peering", "build"),
        ("config_file_exchange", "build_exchange"),
        ("federated_exchanges", "build"),
        ("inbound_traffic_engineering", "build"),
        ("middlebox_redirection", "build"),
        ("quickstart", "build"),
        ("service_chaining", "build"),
        ("synthetic_ixp", "build"),
        ("wide_area_load_balancer", "build"),
    )

    def test_smoke_covers_every_example(self):
        stems = sorted(path.stem
                       for path in (REPO_ROOT / "examples").glob("*.py"))
        assert stems == sorted(stem for stem, _ in self.BUILDERS)

    @pytest.mark.parametrize("stem,builder", BUILDERS)
    def test_example_builds(self, stem, builder):
        module = load_example(stem)
        built = getattr(module, builder)()
        assert built is not None

    def test_federated_example_narrative_runs(self, capsys):
        # main() walks the full acceptance story: the loop-prone pair is
        # flagged with a witness, strict mode rejects it at install time,
        # and with statics off the reference forwards the witness in a
        # cycle. Its asserts are the acceptance criteria.
        load_example("federated_exchanges").main()
        out = capsys.readouterr().out
        assert "SDX008" in out
