"""Inbound traffic engineering (Section 2, second application).

BGP gives an AS almost no control over how traffic *enters* its network;
at an SDX the AS simply writes inbound policies on its own virtual
switch. The helper splits the source-address space across the AS's
physical ports.
"""

from __future__ import annotations

from typing import List, Mapping, Optional, Sequence

from repro.core.sdxpolicy import ParticipantHandle
from repro.exceptions import PolicyError
from repro.net.addresses import IPv4Prefix
from repro.policy.policies import Policy, fwd, match


def split_inbound_by_source(handle: ParticipantHandle,
                            assignment: Optional[Mapping[str, int]] = None
                            ) -> List[Policy]:
    """Split inbound traffic across the participant's ports by source.

    ``assignment`` maps source prefixes (text) to the participant's port
    *indices*. The default reproduces the paper's example: the low half
    of the address space on port 0, the high half on port 1::

        split_inbound_by_source(b)                       # paper's B1/B2
        split_inbound_by_source(b, {"96.0.0.0/4": 1})    # custom carve-out

    Returns the installed policies for later removal.
    """
    participant = handle.participant
    if participant.is_remote:
        raise PolicyError(
            f"remote participant {handle.name!r} has no ports to engineer")
    if assignment is None:
        if len(participant.switch_ports) < 2:
            raise PolicyError(
                f"the default half-split needs two ports; {handle.name!r} "
                f"has {len(participant.switch_ports)}")
        assignment = {"0.0.0.0/1": 0, "128.0.0.0/1": 1}
    installed: List[Policy] = []
    for prefix_text, port_index in assignment.items():
        prefix = IPv4Prefix(prefix_text)
        policy = match(srcip=prefix) >> fwd(handle.port(port_index))
        handle.add_inbound(policy)
        installed.append(policy)
    return installed
