"""The virtual-switch abstraction and its port numbering.

Every participant sees its own virtual SDN switch (Section 3.1, Figure
1a): its *physical* ports are its real attachments to the fabric, and it
has one *virtual* port per peer participant. The compiler realises the
abstraction by mapping each participant to a virtual port number in a
range disjoint from physical switch ports; ``fwd("B")`` resolves to B's
virtual port, and the composed pipeline later replaces virtual ports with
B's physical delivery ports.

Packets never leave the compiled pipeline on a virtual port — the
composition step guarantees every output is physical or dropped, an
invariant the integration tests assert.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional, Tuple

from repro.core.participant import Participant
from repro.exceptions import ParticipantError

#: First virtual port number; physical switch ports must stay below this.
VPORT_BASE = 10_000


class VirtualTopology:
    """Assigns virtual ports and resolves symbolic forwarding targets."""

    def __init__(self) -> None:
        self._participants: Dict[str, Participant] = {}
        self._vports: Dict[str, int] = {}
        self._owner_of_port: Dict[int, str] = {}
        self._next_vport = VPORT_BASE

    def register(self, participant: Participant) -> int:
        """Add a participant; returns its virtual port number."""
        name = participant.name
        if name in self._participants:
            raise ParticipantError(f"participant {name!r} already registered")
        for port in participant.switch_ports:
            if port >= VPORT_BASE:
                raise ParticipantError(
                    f"physical port {port} collides with virtual port range")
            if port in self._owner_of_port:
                raise ParticipantError(
                    f"switch port {port} already owned by "
                    f"{self._owner_of_port[port]!r}")
        self._participants[name] = participant
        vport = self._next_vport
        self._next_vport += 1
        self._vports[name] = vport
        for port in participant.switch_ports:
            self._owner_of_port[port] = name
        return vport

    def participant(self, name: str) -> Participant:
        """The registered participant called ``name``."""
        try:
            return self._participants[name]
        except KeyError:
            raise ParticipantError(f"unknown participant {name!r}") from None

    def participants(self) -> Tuple[Participant, ...]:
        """Every participant, sorted by name."""
        return tuple(self._participants[name] for name in sorted(self._participants))

    def participants_in_order(self) -> Tuple[Participant, ...]:
        """Every participant, in registration order.

        Registration order determines port and address assignment, which
        in turn feeds BGP tie-breaking — configuration export must
        preserve it so a reloaded exchange behaves identically.
        """
        return tuple(self._participants.values())

    def names(self) -> Tuple[str, ...]:
        """Every participant name, sorted."""
        return tuple(sorted(self._participants))

    def vport(self, name: str) -> int:
        """The virtual port of participant ``name``."""
        try:
            return self._vports[name]
        except KeyError:
            raise ParticipantError(f"unknown participant {name!r}") from None

    def vport_map(self) -> Mapping[str, int]:
        """Symbolic-name → virtual-port mapping for policy resolution."""
        return dict(self._vports)

    def owner_of(self, switch_port: int) -> Optional[str]:
        """The participant owning a physical switch port, if any."""
        return self._owner_of_port.get(switch_port)

    def by_vport(self, vport: int) -> Participant:
        """The participant whose virtual port is ``vport``."""
        for name, assigned in self._vports.items():
            if assigned == vport:
                return self._participants[name]
        raise ParticipantError(f"no participant with virtual port {vport}")

    def is_virtual_port(self, port: int) -> bool:
        """True if ``port`` lies in the virtual range."""
        return port >= VPORT_BASE

    def physical_ports(self) -> Tuple[int, ...]:
        """Every physical switch port, sorted."""
        return tuple(sorted(self._owner_of_port))

    def __len__(self) -> int:
        return len(self._participants)

    def __repr__(self) -> str:
        return f"VirtualTopology({len(self)} participants)"
