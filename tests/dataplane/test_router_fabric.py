"""Tests for border routers and the fabric — including the BGP-next-hop →
ARP → destination-MAC tagging pipeline the SDX piggybacks on."""

import pytest

from repro.bgp.asn import AsPath
from repro.bgp.attributes import RouteAttributes
from repro.bgp.messages import Update
from repro.exceptions import FabricError
from repro.net.addresses import IPv4Address, IPv4Prefix
from repro.net.mac import MacAddress, vmac_for_fec
from repro.net.packet import Packet
from repro.policy.classifier import Action
from repro.policy.flowrules import FlowRule
from repro.policy.headerspace import HeaderSpace
from repro.dataplane.fabric import Fabric
from repro.dataplane.router import BorderRouter, RouterPort

AWS = IPv4Prefix("54.0.0.0/8")


def make_router(name="A", asn=65001, n_ports=1, base_mac=0x10, base_ip="172.0.0.1"):
    ports = [
        RouterPort(mac=MacAddress(base_mac + i),
                   ip=IPv4Address(base_ip) + i)
        for i in range(n_ports)
    ]
    return BorderRouter(name, asn, ports)


def make_fabric():
    fabric = Fabric()
    router_a = make_router("A", 65001, base_mac=0x10, base_ip="172.0.0.1")
    router_b = make_router("B", 65002, n_ports=2, base_mac=0x20, base_ip="172.0.0.11")
    fabric.attach(router_a, 0, 1)
    fabric.attach(router_b, 0, 2)
    fabric.attach(router_b, 1, 3)
    return fabric, router_a, router_b


class TestBorderRouter:
    def test_requires_ports(self):
        with pytest.raises(FabricError):
            BorderRouter("X", 65001, [])

    def test_fib_built_from_route_and_arp(self):
        fabric, router_a, router_b = make_fabric()
        router_a.install_route(AWS, router_b.ports[0].ip)
        assert router_a.fib_size == 1
        framed = router_a.emit(Packet(dstip="54.1.2.3", dstport=80))
        assert framed["dstmac"] == router_b.ports[0].mac
        assert framed["srcmac"] == router_a.ports[0].mac
        assert framed.port == 1

    def test_unresolvable_next_hop_leaves_fib_empty(self):
        fabric, router_a, _ = make_fabric()
        router_a.install_route(AWS, IPv4Address("203.0.113.99"))
        assert router_a.fib_size == 0
        assert router_a.emit(Packet(dstip="54.1.2.3")) is None
        assert router_a.fib_misses == 1

    def test_withdraw_route(self):
        fabric, router_a, router_b = make_fabric()
        router_a.install_route(AWS, router_b.ports[0].ip)
        router_a.withdraw_route(AWS)
        assert router_a.emit(Packet(dstip="54.1.2.3")) is None

    def test_receive_update_installs_and_withdraws(self):
        fabric, router_a, router_b = make_fabric()
        attributes = RouteAttributes(next_hop=router_b.ports[0].ip,
                                     as_path=AsPath([65002]))
        router_a.receive_update(Update.announce("route-server", AWS, attributes))
        assert router_a.fib_size == 1
        router_a.receive_update(Update.withdraw("route-server", AWS))
        assert router_a.fib_size == 0

    def test_longest_prefix_wins(self):
        fabric, router_a, router_b = make_fabric()
        router_a.install_route(AWS, router_b.ports[0].ip)
        router_a.install_route(IPv4Prefix("54.1.0.0/16"), router_b.ports[1].ip)
        framed = router_a.emit(Packet(dstip="54.1.2.3"))
        assert framed["dstmac"] == router_b.ports[1].mac
        other = router_a.emit(Packet(dstip="54.9.9.9"))
        assert other["dstmac"] == router_b.ports[0].mac

    def test_emit_requires_dstip(self):
        fabric, router_a, _ = make_fabric()
        with pytest.raises(FabricError):
            router_a.emit(Packet(port=1))

    def test_invalid_egress_index(self):
        fabric, router_a, router_b = make_fabric()
        with pytest.raises(FabricError):
            router_a.install_route(AWS, router_b.ports[0].ip, egress_index=5)

    def test_receive_drops_foreign_mac(self):
        """The paper's invariant: traffic not re-MAC'd to the recipient's
        interface is dropped by the recipient router."""
        fabric, router_a, router_b = make_fabric()
        foreign = Packet(port=2, dstmac=vmac_for_fec(7), dstip="54.0.0.1")
        assert not router_b.receive(foreign)
        assert router_b.dropped_foreign_mac == 1
        proper = foreign.modify(dstmac=router_b.ports[0].mac)
        assert router_b.receive(proper)
        assert router_b.received == [proper]

    def test_arp_flush_and_refresh(self):
        fabric, router_a, router_b = make_fabric()
        router_a.install_route(AWS, router_b.ports[0].ip)
        router_a.flush_arp()
        router_a.refresh_fib()
        assert router_a.fib_size == 1

    def test_local_prefixes(self):
        fabric, router_a, _ = make_fabric()
        router_a.add_local_prefix(IPv4Prefix("100.0.0.0/8"))
        assert router_a.hosts_address(IPv4Address("100.1.2.3"))
        assert not router_a.hosts_address(IPv4Address("99.0.0.1"))
        assert router_a.local_prefixes() == (IPv4Prefix("100.0.0.0/8"),)

    def test_route_for(self):
        fabric, router_a, router_b = make_fabric()
        router_a.install_route(AWS, router_b.ports[0].ip)
        assert router_a.route_for(IPv4Address("54.1.1.1")) == AWS
        assert router_a.route_for(IPv4Address("99.0.0.1")) is None


class TestFabric:
    def test_attach_registers_arp(self):
        fabric, router_a, _ = make_fabric()
        assert fabric.arp.resolve(router_a.ports[0].ip) == router_a.ports[0].mac

    def test_double_attach_same_switch_port_rejected(self):
        fabric, _, _ = make_fabric()
        extra = make_router("C", 65003, base_mac=0x30, base_ip="172.0.0.21")
        with pytest.raises(FabricError):
            fabric.attach(extra, 0, 1)

    def test_double_attach_same_router_port_rejected(self):
        fabric, router_a, _ = make_fabric()
        with pytest.raises(FabricError):
            fabric.attach(router_a, 0, 9)

    def test_bad_router_port_index_rejected(self):
        fabric, _, _ = make_fabric()
        extra = make_router("C", 65003, base_mac=0x30, base_ip="172.0.0.21")
        with pytest.raises(FabricError):
            fabric.attach(extra, 3, 9)

    def test_router_lookup(self):
        fabric, router_a, _ = make_fabric()
        assert fabric.router("A") is router_a
        with pytest.raises(FabricError):
            fabric.router("Z")
        assert [r.name for r in fabric.routers()] == ["A", "B"]

    def test_ports_of(self):
        fabric, _, _ = make_fabric()
        assert fabric.ports_of("B") == (2, 3)

    def test_attachment_at(self):
        fabric, router_a, _ = make_fabric()
        assert fabric.attachment_at(1).router is router_a
        with pytest.raises(FabricError):
            fabric.attachment_at(42)

    def test_end_to_end_delivery_with_mac_rewrite(self):
        fabric, router_a, router_b = make_fabric()
        router_a.install_route(AWS, router_b.ports[0].ip)
        fabric.switch.table.install(FlowRule(
            priority=5, match=HeaderSpace(port=1),
            actions=(Action(port=2, dstmac=router_b.ports[0].mac),)))
        deliveries = fabric.originate("A", Packet(dstip="54.1.2.3", dstport=80))
        assert len(deliveries) == 1
        assert deliveries[0].participant == "B"
        assert deliveries[0].accepted

    def test_delivery_without_mac_rewrite_is_refused(self):
        fabric, router_a, router_b = make_fabric()
        # Tag with a VMAC but forward without rewriting: B must refuse it.
        router_a.install_route(AWS, router_b.ports[0].ip)
        fabric.switch.table.install(FlowRule(
            priority=5, match=HeaderSpace(port=1), actions=(Action(port=2),)))
        deliveries = fabric.originate("A", Packet(dstip="54.1.2.3"))
        assert len(deliveries) == 1
        assert deliveries[0].accepted  # dstmac was B's real MAC already
        # Now route via a virtual next hop that resolves to a VMAC.
        responder_packet = Packet(port=1, dstmac=vmac_for_fec(3), dstip="54.0.0.9")
        results = fabric.send(responder_packet)
        assert results and not results[0].accepted

    def test_fib_miss_yields_no_deliveries(self):
        fabric, router_a, _ = make_fabric()
        assert fabric.originate("A", Packet(dstip="54.1.2.3")) == []

    def test_clear_deliveries(self):
        fabric, router_a, router_b = make_fabric()
        router_a.install_route(AWS, router_b.ports[0].ip)
        fabric.switch.table.install(FlowRule(
            priority=5, match=HeaderSpace(port=1),
            actions=(Action(port=2, dstmac=router_b.ports[0].mac),)))
        fabric.originate("A", Packet(dstip="54.1.2.3"))
        fabric.clear_deliveries()
        assert fabric.deliveries == []
