"""Tests for VNH/VMAC allocation and the virtual-topology registry."""

import pytest

from repro.core.fec import PrefixGroup
from repro.core.participant import Participant
from repro.core.vnh import VnhAllocator
from repro.core.vswitch import VPORT_BASE, VirtualTopology
from repro.dataplane.router import BorderRouter, RouterPort
from repro.exceptions import CompilationError, ParticipantError
from repro.net.addresses import IPv4Address, IPv4Prefix
from repro.net.mac import MacAddress


def group_of(gid, *prefix_texts, contexts=frozenset(), ranking=("B",)):
    return PrefixGroup(
        group_id=gid,
        prefixes=frozenset(IPv4Prefix(t) for t in prefix_texts),
        contexts=contexts,
        ranked_announcers=tuple(ranking))


def physical(name, asn, *ports):
    router = BorderRouter(name, asn, [
        RouterPort(mac=MacAddress(0x020000000000 + p),
                   ip=IPv4Address("172.0.0.1") + p, switch_port=p)
        for p in ports])
    return Participant(name=name, asn=asn, router=router)


class TestVnhAllocator:
    def test_assign_groups_binds_arp(self):
        allocator = VnhAllocator()
        groups = [group_of(0, "11.0.0.0/8", "12.0.0.0/8"), group_of(1, "13.0.0.0/8")]
        allocator.assign_groups(groups)
        assert allocator.assignments == 2
        vnh = allocator.next_hop_for_prefix(IPv4Prefix("11.0.0.0/8"))
        vmac = allocator.vmac_for_prefix(IPv4Prefix("11.0.0.0/8"))
        assert allocator.responder.resolve(vnh) == vmac
        assert vmac.is_virtual

    def test_same_group_shares_vnh(self):
        allocator = VnhAllocator()
        allocator.assign_groups([group_of(0, "11.0.0.0/8", "12.0.0.0/8")])
        assert allocator.next_hop_for_prefix(IPv4Prefix("11.0.0.0/8")) == \
            allocator.next_hop_for_prefix(IPv4Prefix("12.0.0.0/8"))

    def test_untagged_prefix_returns_none(self):
        allocator = VnhAllocator()
        allocator.assign_groups([group_of(0, "11.0.0.0/8")])
        assert allocator.next_hop_for_prefix(IPv4Prefix("99.0.0.0/8")) is None
        assert allocator.vmac_for_prefix(IPv4Prefix("99.0.0.0/8")) is None
        assert allocator.group_of(IPv4Prefix("99.0.0.0/8")) is None

    def test_reassign_clears_old_prefixes(self):
        allocator = VnhAllocator()
        allocator.assign_groups([group_of(0, "11.0.0.0/8")])
        allocator.assign_groups([group_of(0, "12.0.0.0/8")])
        assert allocator.next_hop_for_prefix(IPv4Prefix("11.0.0.0/8")) is None
        assert allocator.next_hop_for_prefix(IPv4Prefix("12.0.0.0/8")) is not None
        # Exactly one live binding: retired pairs are unbound immediately
        # (they are quarantined for reuse, not left in the ARP responder).
        assert len(allocator.responder.bindings()) == 1

    def test_reassignment_never_exhausts_pool(self):
        """However often the exchange recompiles, the pool is reused."""
        allocator = VnhAllocator(IPv4Prefix("172.16.0.0/28"))  # 14 usable
        for round_number in range(50):
            allocator.assign_groups(
                [group_of(i, f"{20 + i}.0.0.0/8") for i in range(10)])
        assert allocator.assignments == 10

    def test_ephemeral_overrides_group(self):
        allocator = VnhAllocator()
        allocator.assign_groups([group_of(0, "11.0.0.0/8")])
        group_vnh = allocator.next_hop_for_prefix(IPv4Prefix("11.0.0.0/8"))
        vnh, vmac = allocator.assign_ephemeral(IPv4Prefix("11.0.0.0/8"))
        assert vnh != group_vnh
        assert allocator.next_hop_for_prefix(IPv4Prefix("11.0.0.0/8")) == vnh
        assert allocator.vmac_for_prefix(IPv4Prefix("11.0.0.0/8")) == vmac
        assert allocator.ephemeral_prefixes() == (IPv4Prefix("11.0.0.0/8"),)

    def test_drop_ephemeral_restores_group(self):
        allocator = VnhAllocator()
        allocator.assign_groups([group_of(0, "11.0.0.0/8")])
        group_vnh = allocator.next_hop_for_prefix(IPv4Prefix("11.0.0.0/8"))
        vnh, _ = allocator.assign_ephemeral(IPv4Prefix("11.0.0.0/8"))
        allocator.drop_ephemeral(IPv4Prefix("11.0.0.0/8"))
        assert allocator.next_hop_for_prefix(IPv4Prefix("11.0.0.0/8")) == group_vnh
        assert allocator.responder.resolve(vnh) is None

    def test_unknown_group_lookup_raises(self):
        allocator = VnhAllocator()
        with pytest.raises(CompilationError):
            allocator.vnh_for_group(42)
        with pytest.raises(CompilationError):
            allocator.vmac_for_group(42)

    def test_pool_exhaustion(self):
        allocator = VnhAllocator(IPv4Prefix("172.16.0.0/30"))
        allocator.assign_ephemeral(IPv4Prefix("11.0.0.0/8"))
        allocator.assign_ephemeral(IPv4Prefix("12.0.0.0/8"))
        with pytest.raises(CompilationError):
            allocator.assign_ephemeral(IPv4Prefix("13.0.0.0/8"))

    def test_unchanged_group_keeps_pair_across_reassignment(self):
        allocator = VnhAllocator()
        allocator.assign_groups([group_of(0, "11.0.0.0/8"),
                                 group_of(1, "12.0.0.0/8")])
        kept_vnh = allocator.next_hop_for_prefix(IPv4Prefix("11.0.0.0/8"))
        kept_vmac = allocator.vmac_for_prefix(IPv4Prefix("11.0.0.0/8"))
        # Group 1's membership changes; group 0 (same prefix set, new id)
        # must keep its pair so its rules diff to nothing.
        allocator.assign_groups([group_of(5, "11.0.0.0/8"),
                                 group_of(6, "12.0.0.0/8", "13.0.0.0/8")])
        assert allocator.next_hop_for_prefix(IPv4Prefix("11.0.0.0/8")) == kept_vnh
        assert allocator.vmac_for_prefix(IPv4Prefix("11.0.0.0/8")) == kept_vmac

    def test_changed_group_gets_pair_not_live_last_generation(self):
        allocator = VnhAllocator()
        allocator.assign_groups([group_of(0, "11.0.0.0/8")])
        old_vmac = allocator.vmac_for_prefix(IPv4Prefix("11.0.0.0/8"))
        allocator.assign_groups([group_of(0, "11.0.0.0/8", "12.0.0.0/8")])
        # Reusing the old tag for a different packet population would let
        # not-yet-deleted rules claim newly tagged packets mid-swap.
        assert allocator.vmac_for_prefix(IPv4Prefix("11.0.0.0/8")) != old_vmac

    def test_retired_pair_recycles_only_after_finish_swap(self):
        allocator = VnhAllocator()
        allocator.assign_groups([group_of(0, "11.0.0.0/8")])
        retired = allocator.vmac_for_prefix(IPv4Prefix("11.0.0.0/8"))
        allocator.assign_groups([group_of(0, "12.0.0.0/8")])
        assert allocator.vmac_for_prefix(IPv4Prefix("12.0.0.0/8")) != retired
        assert allocator.finish_swap() == 1
        allocator.assign_groups([group_of(0, "13.0.0.0/8")])
        assert allocator.vmac_for_prefix(IPv4Prefix("13.0.0.0/8")) == retired

    def test_dropped_ephemeral_is_quarantined(self):
        allocator = VnhAllocator()
        _, vmac = allocator.assign_ephemeral(IPv4Prefix("11.0.0.0/8"))
        allocator.drop_ephemeral(IPv4Prefix("11.0.0.0/8"))
        # Its shadow rules may still be installed: not reusable yet.
        _, fresh = allocator.assign_ephemeral(IPv4Prefix("12.0.0.0/8"))
        assert fresh != vmac
        allocator.finish_swap()
        allocator.assign_groups([group_of(0, "13.0.0.0/8")])
        assert allocator.vmac_for_group(0) == vmac

    def test_vnh_addresses_unique(self):
        allocator = VnhAllocator()
        groups = [group_of(i, f"{10 + i}.0.0.0/8") for i in range(50)]
        allocator.assign_groups(groups)
        vnhs = {allocator.vnh_for_group(i) for i in range(50)}
        vmacs = {allocator.vmac_for_group(i) for i in range(50)}
        assert len(vnhs) == 50
        assert len(vmacs) == 50


class TestVirtualTopology:
    def test_register_assigns_vports(self):
        topology = VirtualTopology()
        a = physical("A", 65001, 1)
        b = physical("B", 65002, 2, 3)
        assert topology.register(a) == VPORT_BASE
        assert topology.register(b) == VPORT_BASE + 1
        assert topology.vport("B") == VPORT_BASE + 1
        assert topology.by_vport(VPORT_BASE).name == "A"

    def test_duplicate_name_rejected(self):
        topology = VirtualTopology()
        topology.register(physical("A", 65001, 1))
        with pytest.raises(ParticipantError):
            topology.register(physical("A", 65009, 2))

    def test_duplicate_switch_port_rejected(self):
        topology = VirtualTopology()
        topology.register(physical("A", 65001, 1))
        with pytest.raises(ParticipantError):
            topology.register(physical("B", 65002, 1))

    def test_port_collision_with_vport_range_rejected(self):
        topology = VirtualTopology()
        with pytest.raises(ParticipantError):
            topology.register(physical("A", 65001, VPORT_BASE + 5))

    def test_owner_of(self):
        topology = VirtualTopology()
        topology.register(physical("A", 65001, 1))
        assert topology.owner_of(1) == "A"
        assert topology.owner_of(99) is None

    def test_remote_participant_registers(self):
        topology = VirtualTopology()
        remote = Participant(name="D", asn=65099)
        vport = topology.register(remote)
        assert topology.is_virtual_port(vport)
        assert topology.participant("D").is_remote

    def test_unknown_lookups_raise(self):
        topology = VirtualTopology()
        with pytest.raises(ParticipantError):
            topology.participant("Z")
        with pytest.raises(ParticipantError):
            topology.vport("Z")
        with pytest.raises(ParticipantError):
            topology.by_vport(VPORT_BASE)

    def test_names_and_physical_ports_sorted(self):
        topology = VirtualTopology()
        topology.register(physical("B", 65002, 5))
        topology.register(physical("A", 65001, 2))
        assert topology.names() == ("A", "B")
        assert topology.physical_ports() == (2, 5)
        assert len(topology) == 2
