"""A priority flow table with OpenFlow-like first-match semantics.

Rules are kept sorted by descending priority (insertion order breaks
ties, matching OpenFlow's undefined-but-stable behaviour in practice).
Per-rule packet *and byte* counters support the rule-utilisation
measurements in the benchmark harness and the data-plane monitoring
subsystem (:mod:`repro.monitoring`), which samples them to estimate
per-FEC and per-egress traffic rates.

Mutation comes in two granularities: whole-rule installation/removal, and
:meth:`FlowTable.apply_delta` — the switch-side half of the southbound
flow-update engine, executing add/modify/delete FlowMods keyed by
``(priority, match)``. Delta application leaves untouched rules' objects
(and therefore their packet and byte counters) alone, which is what makes
update cost measurable across recompiles — and what lets the monitoring
collector's per-rule deltas survive background table swaps.

Counter-survival invariant: a rule's counters are preserved across
:meth:`apply_delta` and phased swaps exactly when the rule is untouched
(or modified idempotently / with its actions rewritten in place at the
same key); they reset to zero when the key is deleted and re-added.
Each installed rule also carries a *cookie* — a monotonically increasing
token assigned at installation and preserved by MODIFY, mirroring the
OpenFlow cookie field. Counter consumers key per-rule state by cookie:
a surviving cookie means the counters are a monotonic continuation, a
fresh cookie means they restarted from zero, with no way to confuse a
modified rule (new object, old counters) for a new one.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right, insort_right
from typing import Dict, Iterable, List, Optional, Tuple, Union

from repro.net.packet import Packet
from repro.policy.classifier import Classifier
from repro.policy.flowrules import FlowRule, render_flow_table, to_flow_rules
from repro.southbound.diff import (
    Delta,
    FlowMod,
    FlowModOp,
    RuleKey,
    compute_delta,
    rule_key,
)

#: Bytes attributed to a processed packet when the caller gives no size.
#: A full-size Ethernet payload: callers that only care about forwarding
#: behaviour (tests, examples) keep byte counters plausible for free.
DEFAULT_PACKET_BYTES = 1500


class FlowTable:
    """An installed set of flow rules plus match counters."""

    def __init__(self) -> None:
        self._rules: List[FlowRule] = []
        self._counters: Dict[int, int] = {}
        self._bytes: Dict[int, int] = {}
        self._cookies: Dict[int, int] = {}
        self._next_cookie = 1
        # First-instance-wins index: key -> installed rules with that key,
        # in table order (duplicates are legal but shadowed).
        self._by_key: Dict[RuleKey, List[FlowRule]] = {}
        self._generation = 0
        # Telemetry handles, absent until bind_telemetry() is called:
        # standalone tables (property tests, ad-hoc scripts) pay one
        # None-check per operation and record nothing.
        self._bound_registry = None
        self._rules_gauge = None
        self._mod_counters: Dict[FlowModOp, object] = {}
        self._packets_counter = None
        self._bytes_counter = None
        self._misses_counter = None

    def bind_telemetry(self, telemetry) -> None:
        """Record table activity into ``telemetry``'s registry.

        Registers the ``sdx_flowtable_*`` families: a rule-count gauge,
        per-op FlowMod counters, processed-packet and -byte counts, and
        the table-miss (dropped traffic) loss counter.

        Idempotent per registry: rebinding the same table to the same
        registry — which happens when a controller-owned table is bound
        again after a phased swap or by a test harness — is a no-op, so
        the rule gauge is not gratuitously re-set mid-swap and handles
        are never re-fetched. Binding to a *different* registry rebinds
        every handle there (the previous registry stops receiving).
        """
        registry = telemetry.registry
        if registry is self._bound_registry:
            return
        self._bound_registry = registry
        self._rules_gauge = registry.gauge(
            "sdx_flowtable_rules", "Rules currently installed")
        self._mod_counters = {
            op: registry.counter("sdx_flowtable_mods_total",
                                 "FlowMods executed by the table",
                                 op=op.name.lower())
            for op in FlowModOp
        }
        self._packets_counter = registry.counter(
            "sdx_flowtable_packets_total", "Packets run through the table")
        self._bytes_counter = registry.counter(
            "sdx_flowtable_bytes_total",
            "Bytes carried by packets that matched a rule")
        self._misses_counter = registry.counter(
            "sdx_flowtable_misses_total",
            "Packets dropped by a table miss (no rule matched)")
        self._rules_gauge.set(len(self._rules))

    def _note_size(self) -> None:
        if self._rules_gauge is not None:
            self._rules_gauge.set(len(self._rules))

    def _issue_cookie(self, rule: FlowRule) -> None:
        self._cookies[id(rule)] = self._next_cookie
        self._next_cookie += 1

    def install(self, rule: FlowRule) -> None:
        """Add one rule, keeping priority order."""
        insort_right(self._rules, rule, key=lambda r: -r.priority)
        self._by_key.setdefault(rule_key(rule), []).append(rule)
        self._counters[id(rule)] = 0
        self._bytes[id(rule)] = 0
        self._issue_cookie(rule)
        self._generation += 1
        self._note_size()

    def install_many(self, rules: Iterable[FlowRule]) -> int:
        """Install several rules; returns how many were added."""
        count = 0
        for rule in rules:
            self.install(rule)
            count += 1
        return count

    def install_classifier(self, classifier: Classifier,
                           base_priority: int = 0) -> int:
        """Install a compiled classifier at ``base_priority``."""
        return self.install_many(to_flow_rules(classifier, base_priority))

    def remove_where(self, predicate) -> int:
        """Remove every rule for which ``predicate(rule)`` is true."""
        keep = [rule for rule in self._rules if not predicate(rule)]
        removed = len(self._rules) - len(keep)
        if removed:
            removed_ids = {id(rule) for rule in self._rules} - {id(rule) for rule in keep}
            for rule_id in removed_ids:
                self._counters.pop(rule_id, None)
                self._bytes.pop(rule_id, None)
                self._cookies.pop(rule_id, None)
            self._rules = keep
            self._reindex()
            self._generation += 1
            self._note_size()
        return removed

    def clear(self) -> None:
        """Remove every rule."""
        self._rules.clear()
        self._counters.clear()
        self._bytes.clear()
        self._cookies.clear()
        self._by_key.clear()
        self._generation += 1
        self._note_size()

    def replace_with(self, classifier: Classifier, base_priority: int = 0) -> int:
        """Swap the table for a compiled classifier, via a minimal delta.

        Rules shared verbatim between the old and new tables are not
        touched, so their packet counters survive the swap; everything
        else is added, modified, or deleted. Returns the number of rules
        the classifier compiles to (the resulting table size, matching
        the historical clear-and-reinstall return value).
        """
        target = to_flow_rules(classifier, base_priority)
        self.apply_delta(compute_delta(self._rules, target))
        return len(target)

    def _reindex(self) -> None:
        self._by_key = {}
        for rule in self._rules:
            self._by_key.setdefault(rule_key(rule), []).append(rule)

    # ------------------------------------------------------------------
    # FlowMod application (the southbound engine's switch-side half)
    # ------------------------------------------------------------------

    def rule_for_key(self, priority: int, match) -> Optional[FlowRule]:
        """The live (first-installed) rule at ``(priority, match)``, if any."""
        instances = self._by_key.get((priority, match))
        return instances[0] if instances else None

    def _band(self, priority: int) -> Tuple[int, int]:
        """The index range of rules at exactly ``priority``."""
        lo = bisect_left(self._rules, -priority, key=lambda r: -r.priority)
        hi = bisect_right(self._rules, -priority, key=lambda r: -r.priority)
        return lo, hi

    def _remove_instances(self, key: RuleKey) -> Optional[FlowRule]:
        """Drop every rule with ``key``; returns the first (live) instance."""
        instances = self._by_key.pop(key, None)
        if not instances:
            return None
        doomed = {id(rule) for rule in instances}
        lo, hi = self._band(key[0])
        self._rules[lo:hi] = [
            rule for rule in self._rules[lo:hi] if id(rule) not in doomed]
        for rule_id in doomed:
            self._counters.pop(rule_id, None)
            self._bytes.pop(rule_id, None)
            self._cookies.pop(rule_id, None)
        return instances[0]

    def apply_mod(self, mod: FlowMod) -> None:
        """Execute one FlowMod.

        * ``ADD`` — install; if the key already exists, behaves as modify
          (OpenFlow's add-with-overlap semantics for an exact key).
        * ``MODIFY`` — rewrite the key's actions in place, preserving its
          packet counter; collapses shadowed duplicate instances; installs
          if the key is absent.
        * ``DELETE`` — remove every instance of the key.
        """
        key = mod.key
        counter = self._mod_counters.get(mod.op)
        if counter is not None:
            counter.inc()
        if mod.op is FlowModOp.DELETE:
            self._remove_instances(key)
            self._generation += 1
            self._note_size()
            return
        previous = self._by_key.get(key)
        if previous is None:
            rule = mod.rule
            insort_right(self._rules, rule, key=lambda r: -r.priority)
            self._by_key[key] = [rule]
            self._counters[id(rule)] = 0
            self._bytes[id(rule)] = 0
            self._issue_cookie(rule)
            self._generation += 1
            self._note_size()
            return
        live = previous[0]
        if live.actions == mod.actions and len(previous) == 1:
            return  # idempotent modify: leave the rule (and counter) alone
        replacement = mod.rule
        lo, hi = self._band(key[0])
        position = next(
            index for index in range(lo, hi)
            if self._rules[index] is live)
        count = self._counters.pop(id(live), 0)
        byte_count = self._bytes.pop(id(live), 0)
        cookie = self._cookies.pop(id(live), 0)
        doomed = {id(rule) for rule in previous[1:]}
        self._rules[position] = replacement
        if doomed:
            self._rules[lo:hi] = [
                rule for rule in self._rules[lo:hi] if id(rule) not in doomed]
            for rule_id in doomed:
                self._counters.pop(rule_id, None)
                self._bytes.pop(rule_id, None)
                self._cookies.pop(rule_id, None)
        self._by_key[key] = [replacement]
        self._counters[id(replacement)] = count
        self._bytes[id(replacement)] = byte_count
        self._cookies[id(replacement)] = cookie
        self._generation += 1
        self._note_size()

    def apply_delta(self, delta: Union[Delta, Iterable[FlowMod]]) -> int:
        """Apply a delta (or any FlowMod sequence) in order; returns mods applied.

        Callers that expose intermediate states (the southbound engine's
        batches) are expected to pre-order mods with
        :func:`repro.southbound.engine.schedule_two_phase`.
        """
        mods = delta.mods if isinstance(delta, Delta) else tuple(delta)
        for mod in mods:
            self.apply_mod(mod)
        return len(mods)

    @property
    def rules(self) -> Tuple[FlowRule, ...]:
        """Installed rules, highest priority first."""
        return tuple(self._rules)

    def __len__(self) -> int:
        return len(self._rules)

    @property
    def generation(self) -> int:
        """Bumped on every table mutation (used to detect staleness)."""
        return self._generation

    def lookup(self, packet: Packet) -> Optional[FlowRule]:
        """The highest-priority rule matching ``packet``, if any."""
        for rule in self._rules:
            if rule.match.matches(packet):
                return rule
        return None

    def process(self, packet: Packet, *,
                size_bytes: Optional[int] = None) -> Tuple[Packet, ...]:
        """Apply the table to ``packet``; empty tuple means dropped.

        A table miss also drops (OpenFlow default for SDX: the controller
        installs explicit defaults, so misses indicate unmatched traffic).

        ``size_bytes`` attributes that many bytes to the matched rule's
        byte counter; traffic drivers use it to fold a whole sampling
        interval's volume into one representative packet. Defaults to
        :data:`DEFAULT_PACKET_BYTES`.
        """
        if self._packets_counter is not None:
            self._packets_counter.inc()
        size = DEFAULT_PACKET_BYTES if size_bytes is None else size_bytes
        rule = self.lookup(packet)
        if rule is None:
            if self._misses_counter is not None:
                self._misses_counter.inc()
            return ()
        self._counters[id(rule)] += 1
        self._bytes[id(rule)] = self._bytes.get(id(rule), 0) + size
        if self._bytes_counter is not None:
            self._bytes_counter.inc(size)
        return tuple(action.apply(packet) for action in rule.actions)

    def packets_matched(self, rule: FlowRule) -> int:
        """How many packets have hit ``rule`` since installation."""
        return self._counters.get(id(rule), 0)

    def bytes_matched(self, rule: FlowRule) -> int:
        """How many bytes have hit ``rule`` since installation."""
        return self._bytes.get(id(rule), 0)

    def cookie_of(self, rule: FlowRule) -> int:
        """The installed rule's cookie (0 if the rule is not installed).

        Cookies are unique, never recycled, and survive MODIFY-in-place —
        the stable identity counter consumers key their state by.
        """
        return self._cookies.get(id(rule), 0)

    def counters_snapshot(self) -> Tuple[Tuple[FlowRule, int, int, int], ...]:
        """``(rule, cookie, packets, bytes)`` for every installed rule, in
        table order — the monitoring collector's sampling surface (the
        simulator's ``FlowStatsReply``). Key per-rule state by cookie:
        unlike ``id(rule)``, a cookie is never recycled and follows the
        rule through MODIFY, so counter continuations and resets are
        unambiguous across samples."""
        return tuple(
            (rule,
             self._cookies.get(id(rule), 0),
             self._counters.get(id(rule), 0),
             self._bytes.get(id(rule), 0))
            for rule in self._rules)

    def render(self) -> str:
        """The table as ``ovs-ofctl``-style text."""
        return render_flow_table(self._rules)

    def __repr__(self) -> str:
        return f"FlowTable({len(self._rules)} rules)"
