"""Extension — multi-switch fabric partitioning (Section 4.1).

The paper notes the SDX "may consist of multiple physical switches, each
connected to a subset of the participants", relying on topology
abstraction to keep the policy model a single big switch. This benchmark
partitions a compiled 100-participant table over 2- and 4-switch fabrics
(chained by trunks) and reports how the rule load distributes: each
physical switch must hold substantially fewer rules than the big switch,
since participant-pinned rules install only where that participant
attaches.
"""

from conftest import publish, publish_json

from repro.dataplane.multiswitch import SdxTopology, partition_classifier
from repro.experiments.metrics import render_table
from repro.workloads.policies import generate_policies, install_assignments
from repro.workloads.topology import generate_ixp

PARTICIPANTS = 100
PREFIXES = 2_000


def _compiled_controller():
    ixp = generate_ixp(PARTICIPANTS, PREFIXES, seed=0)
    controller = ixp.build_controller()
    install_assignments(controller, generate_policies(ixp, seed=1))
    result = controller.start()
    return controller, result


def _topology_for(controller, switch_count: int) -> SdxTopology:
    topology = SdxTopology()
    names = [f"s{i + 1}" for i in range(switch_count)]
    for name in names:
        topology.add_switch(name)
    ports = controller.topology.physical_ports()
    for index, port in enumerate(ports):
        topology.assign_port(port, names[index % switch_count])
    trunk_base = 50_000
    for index in range(switch_count - 1):
        topology.add_link(names[index], trunk_base + 2 * index,
                          names[index + 1], trunk_base + 2 * index + 1)
    return topology


def _pinned_count(classifier, trunk_ports=frozenset()):
    """Rules tied to a specific non-trunk ingress port."""
    return sum(
        1 for rule in classifier.rules
        if rule.match.get("port") is not None
        and rule.match.get("port") not in trunk_ports)


def _run():
    controller, result = _compiled_controller()
    big_pinned = _pinned_count(result.classifier)
    rows = []
    for switch_count in (2, 4):
        topology = _topology_for(controller, switch_count)
        tables = partition_classifier(result.classifier, topology)
        sizes = {}
        pinned = {}
        for name, classifier in tables.items():
            trunks = frozenset(topology.trunk_ports(name))
            sizes[name] = len(classifier)
            pinned[name] = _pinned_count(classifier, trunks)
        rows.append((switch_count, len(result.classifier), big_pinned,
                     sizes, pinned))
    return rows


def test_ext_multiswitch_partitioning(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    publish("ext_multiswitch", render_table(
        ["switches", "big rules", "big pinned", "per-switch total",
         "per-switch pinned"],
        [[count, total, big_pinned,
          ", ".join(f"{name}={sizes[name]}" for name in sorted(sizes)),
          ", ".join(f"{name}={pinned[name]}" for name in sorted(pinned))]
         for count, total, big_pinned, sizes, pinned in rows]))
    publish_json("ext_multiswitch", [
        {
            "switch_count": count,
            "big_switch_rules": total,
            "big_switch_pinned": big_pinned,
            "per_switch_rules": dict(sorted(sizes.items())),
            "per_switch_pinned": dict(sorted(pinned.items())),
        }
        for count, total, big_pinned, sizes, pinned in rows
    ])

    for switch_count, total, big_pinned, sizes, pinned in rows:
        assert len(sizes) == switch_count
        # Ingress-pinned rules (participant policies and default
        # exceptions) localise exactly: no duplication across switches,
        # and each switch holds only its attached participants' share.
        assert sum(pinned.values()) == big_pinned
        for count_pinned in pinned.values():
            assert count_pinned < big_pinned or big_pinned == 0
        # Ingress-wildcard rules (shared defaults, MAC learning) must
        # replicate, so per-switch totals exceed an even split — but each
        # switch stays bounded by the full table plus one transit rule
        # per delivered MAC per trunk port.
        for size in sizes.values():
            assert size <= 2 * total
    # More switches -> smaller per-switch pinned share.
    two, four = rows[0][4], rows[1][4]
    assert max(four.values()) <= max(two.values())
