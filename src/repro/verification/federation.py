"""Fuzzer cross-validation of the federation layer.

Two falsifiable surfaces, checked exactly like SDX001/SDX003 in
:mod:`repro.verification.statics`:

* **SDX008 (inter-exchange loop)** — every diagnostic's witness packet,
  fired from the diagnosed ``(exchange, participant)`` state, must
  actually walk a cycle in the federated reference interpreter;
* **SDX009 (stitched blackhole)** — every witness must actually be
  dropped beyond its first exchange.

On top of the point-wise statics checks, every corpus packet is
forwarded from every ``(exchange, sender)`` state through both execution
arms — the real cross-fabric driver
(:class:`~repro.federation.dataplane.FederatedDataPlane` over compiled
:class:`~repro.dataplane.switch.SoftwareSwitch` fabrics) and the naive
:class:`~repro.federation.reference.FederatedReferenceInterpreter` —
and the outcomes compared hop-for-hop. The whole battery re-runs after
every BGP trace step, so verdicts are held against churning RIB state.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Sequence

from repro.net.packet import Packet
from repro.verification.oracle import OracleFailure

if TYPE_CHECKING:  # the federation package imports verification modules,
    # so runtime imports here must stay lazy to avoid a cycle
    from repro.federation.reference import FederatedReferenceInterpreter
    from repro.federation.scenario import FederatedScenario


@dataclass
class FederationCrosscheckResult:
    """The outcome of one federated cross-validation run."""

    failure: Optional[OracleFailure] = None
    steps_executed: int = 0
    comparisons: int = 0

    @property
    def ok(self) -> bool:
        """True when every verdict held and both arms agreed."""
        return self.failure is None


def _data_map(diagnostic) -> dict:
    """The diagnostic's payload as a plain dict."""
    return dict(diagnostic.data)


def _check_statics(federation, reference: "FederatedReferenceInterpreter",
                   step: int) -> Optional[OracleFailure]:
    """Hold SDX008/SDX009 to their witness contracts on current state."""
    from repro.federation.checks import analyze_federation

    report = analyze_federation(federation)
    for diagnostic in report.by_check("SDX008"):
        payload = _data_map(diagnostic)
        outcome = reference.forward(
            payload["origin_exchange"], payload["origin_participant"],
            diagnostic.witness)
        if not outcome.is_loop:
            return OracleFailure(
                kind="statics-loop-not-reproduced", step=step,
                detail=f"SDX008 at [{diagnostic.location.describe()}] "
                       f"claimed witness {diagnostic.witness!r} loops from "
                       f"{payload['origin_exchange']}:"
                       f"{payload['origin_participant']}, but the federated "
                       f"reference resolves it to {outcome.describe()}")
    for diagnostic in report.by_check("SDX009"):
        payload = _data_map(diagnostic)
        outcome = reference.forward(
            payload["origin_exchange"], payload["origin_participant"],
            diagnostic.witness)
        if outcome.kind != "dropped" or len(outcome.hops) < 2:
            return OracleFailure(
                kind="statics-blackhole-not-reproduced", step=step,
                detail=f"SDX009 at [{diagnostic.location.describe()}] "
                       f"claimed witness {diagnostic.witness!r} blackholes "
                       f"beyond {payload['origin_exchange']}:"
                       f"{payload['origin_participant']}, but the federated "
                       f"reference resolves it to {outcome.describe()}")
    return None


def _check_differential(scenario: "FederatedScenario", federation,
                        reference: "FederatedReferenceInterpreter",
                        corpus: Sequence[Packet], step: int,
                        result: FederationCrosscheckResult
                        ) -> Optional[OracleFailure]:
    """Compare both arms' walks for every (exchange, sender, packet)."""
    for exchange in scenario.exchanges:
        for spec in scenario.participants_at(exchange):
            for packet in corpus:
                real = federation.forward(exchange, spec.name, packet)
                naive = reference.forward(exchange, spec.name, packet)
                result.comparisons += 1
                if real.comparable() != naive.comparable():
                    return OracleFailure(
                        kind="federated-forwarding-divergence", step=step,
                        detail=f"{exchange}:{spec.name} x {packet!r}: "
                               f"real dataplane {real.describe()} != "
                               f"reference {naive.describe()}")
    return None


def federation_crosscheck(scenario: "FederatedScenario",
                          corpus: Sequence[Packet] = ()
                          ) -> FederationCrosscheckResult:
    """Cross-validate one federated scenario end to end.

    Builds the real federation (compiled fabrics) and the naive
    federated reference from the same scenario, verifies their derived
    topology facts align, then runs the statics-witness and differential
    batteries at the base table and after every trace step. The first
    breach stops the run.
    """
    from repro.federation.reference import FederatedReferenceInterpreter

    result = FederationCrosscheckResult()
    federation = scenario.build_controller(with_dataplane=True)
    reference = FederatedReferenceInterpreter(scenario)
    problem = reference.verify_alignment(federation)
    if problem is not None:
        result.failure = OracleFailure(
            kind="federated-alignment", step=-1, detail=problem)
        return result

    def check(step: int) -> Optional[OracleFailure]:
        return (_check_statics(federation, reference, step)
                or _check_differential(scenario, federation, reference,
                                       corpus, step, result))

    result.failure = check(-1)
    if result.failure is not None:
        return result
    for index, step in enumerate(scenario.trace):
        update = scenario.step_update(step)
        federation.submit_update(step.exchange, update)
        reference.apply(step.exchange, update)
        federation.settle()
        result.steps_executed += 1
        result.failure = check(index)
        if result.failure is not None:
            return result
    return result
