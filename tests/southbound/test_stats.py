"""The registry-backed SouthboundStats must preserve the legacy counters
verbatim: every attribute, snapshot key, and render row reports exactly
what the pre-telemetry implementation reported, while the same numbers
are simultaneously visible through the metrics registry."""

from repro.dataplane.flowtable import FlowTable
from repro.policy.classifier import Action, Classifier, Rule
from repro.policy.predicates import match
from repro.southbound.engine import SouthboundConfig, SouthboundEngine
from repro.southbound.stats import SouthboundStats
from repro.telemetry.registry import MetricsRegistry


def _classifier(*ports: int) -> Classifier:
    return Classifier([
        Rule(match(dstport=port).compile().rules[0].match,
             (Action(port=port),))
        for port in ports
    ])


class TestFacadeSemantics:
    def test_attributes_start_at_zero(self):
        stats = SouthboundStats()
        assert stats.adds_sent == 0
        assert stats.modifies_sent == 0
        assert stats.deletes_sent == 0
        assert stats.mods_sent == 0
        assert stats.mods_coalesced == 0
        assert stats.syncs == 0
        assert stats.rules_unchanged == 0
        assert stats.batches_applied == 0
        assert stats.backpressure_flushes == 0

    def test_augmented_assignment_mirrors_into_registry(self):
        registry = MetricsRegistry()
        stats = SouthboundStats(registry=registry)
        stats.adds_sent += 3
        stats.modifies_sent += 1
        stats.deletes_sent += 2
        assert stats.mods_sent == 6
        assert registry.get("sdx_southbound_flowmods_total", op="add").value == 3
        assert registry.get("sdx_southbound_flowmods_total",
                            op="modify").value == 1
        assert registry.get("sdx_southbound_flowmods_total",
                            op="delete").value == 2

    def test_plain_assignment_sets_the_counter(self):
        registry = MetricsRegistry()
        stats = SouthboundStats(registry=registry)
        stats.mods_coalesced = 7  # the engine mirrors queue.coalesced
        assert stats.mods_coalesced == 7
        assert registry.get("sdx_southbound_coalesced_total").value == 7

    def test_record_batch_feeds_lists_and_histograms(self):
        registry = MetricsRegistry()
        stats = SouthboundStats(registry=registry)
        stats.record_batch(4, 0.002)
        stats.record_batch(2, 0.001)
        assert stats.batch_sizes == [4, 2]
        assert stats.apply_seconds == [0.002, 0.001]
        assert stats.batches_applied == 2
        assert registry.get("sdx_southbound_batch_size").count == 2
        assert registry.get("sdx_southbound_batch_size").max == 4
        assert registry.get("sdx_southbound_apply_seconds").count == 2

    def test_cdfs_still_exact(self):
        stats = SouthboundStats()
        for size in (1, 2, 3, 4):
            stats.record_batch(size, size / 1000)
        assert stats.batch_size_cdf().quantile(1.0) == 4
        assert stats.apply_time_cdf().quantile(0.0) == 0.001

    def test_private_registries_are_isolated(self):
        first = SouthboundStats()
        second = SouthboundStats()
        first.adds_sent += 5
        assert second.adds_sent == 0

    def test_snapshot_keys_unchanged(self):
        stats = SouthboundStats()
        assert set(stats.snapshot()) == {
            "adds_sent", "modifies_sent", "deletes_sent", "mods_sent",
            "mods_coalesced", "syncs", "rules_unchanged",
            "batches_applied", "backpressure_flushes",
        }

    def test_render_rows_unchanged(self):
        stats = SouthboundStats()
        stats.adds_sent += 1
        stats.record_batch(1, 0.001)
        text = stats.render()
        assert "mods_sent" in text
        assert "apply ms (median)" in text
        assert "batch size (max)" in text


class TestEnginePreservation:
    def test_engine_counters_match_registry_verbatim(self):
        table = FlowTable()
        engine = SouthboundEngine(table)
        engine.sync_classifier(_classifier(80, 443))
        engine.sync_classifier(_classifier(80, 443, 8080))
        engine.sync_classifier(_classifier(80))
        stats = engine.stats
        registry = engine.telemetry.registry
        # Scalar for scalar, the facade and the registry agree.
        assert stats.adds_sent == registry.get(
            "sdx_southbound_flowmods_total", op="add").value
        assert stats.modifies_sent == registry.get(
            "sdx_southbound_flowmods_total", op="modify").value
        assert stats.deletes_sent == registry.get(
            "sdx_southbound_flowmods_total", op="delete").value
        assert stats.mods_coalesced == registry.get(
            "sdx_southbound_coalesced_total").value
        assert stats.syncs == registry.get(
            "sdx_southbound_syncs_total").value == 3
        assert stats.rules_unchanged == registry.get(
            "sdx_southbound_rules_unchanged_total").value
        assert stats.batches_applied == registry.get(
            "sdx_southbound_batches_total").value
        assert stats.backpressure_flushes == registry.get(
            "sdx_southbound_backpressure_flushes_total").value
        # And the historical semantics hold: 2 + 1 adds, then 2 deletes.
        assert stats.adds_sent == 3
        assert stats.deletes_sent == 2
        assert stats.rules_unchanged == 3  # 2 kept + 1 kept across syncs

    def test_backpressure_flush_counted_in_both_views(self):
        table = FlowTable()
        config = SouthboundConfig(max_pending=2, auto_flush=False)
        engine = SouthboundEngine(table, config)
        engine.sync_classifier(_classifier(80, 443, 8080))
        assert engine.stats.backpressure_flushes == 1
        assert engine.telemetry.registry.get(
            "sdx_southbound_backpressure_flushes_total").value == 1

    def test_coalescing_counted_in_both_views(self):
        table = FlowTable()
        config = SouthboundConfig(auto_flush=False)
        engine = SouthboundEngine(table, config)
        engine.sync_classifier(_classifier(80))
        engine.sync_classifier(_classifier(80, 443))
        engine.flush()
        assert engine.stats.mods_coalesced == engine.queue.coalesced
        assert engine.telemetry.registry.get(
            "sdx_southbound_coalesced_total").value == engine.queue.coalesced

    def test_shared_registry_injection(self):
        registry = MetricsRegistry()
        stats = SouthboundStats(registry=registry)
        table = FlowTable()
        engine = SouthboundEngine(table, stats=stats)
        engine.sync_classifier(_classifier(80))
        assert registry.get(
            "sdx_southbound_flowmods_total", op="add").value == 1
