"""The BGP decision process: pick one best route per prefix.

Implements the standard route-server subset of RFC 4271 tie-breaking:

1. highest LOCAL_PREF;
2. shortest AS path;
3. lowest ORIGIN (IGP < EGP < INCOMPLETE);
4. lowest MED — compared across *all* candidates rather than only between
   routes from the same neighbouring AS ("always-compare-med", the common
   route-server configuration; documented deviation from strict RFC 4271);
5. lowest NEXT_HOP address, then lowest peer name — deterministic stand-ins
   for the router-ID tie-breakers.

The function is a pure total order, so repeated runs over the same
candidate set always pick the same route — a property the SDX relies on
when recompiling policies incrementally, and one the tests assert.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple

from repro.bgp.rib import RouteEntry


def preference_key(entry: RouteEntry) -> Tuple:
    """Sort key such that the minimum is the best route."""
    attributes = entry.attributes
    return (
        -attributes.local_pref,
        attributes.as_path.length,
        int(attributes.origin),
        attributes.med,
        int(attributes.next_hop),
        entry.learned_from,
    )


def best_route(candidates: Iterable[RouteEntry]) -> Optional[RouteEntry]:
    """The single best route among ``candidates`` (``None`` if empty)."""
    best: Optional[RouteEntry] = None
    best_key: Optional[Tuple] = None
    for entry in candidates:
        key = preference_key(entry)
        if best_key is None or key < best_key:
            best, best_key = entry, key
    return best


def rank_routes(candidates: Iterable[RouteEntry]) -> List[RouteEntry]:
    """All candidates ordered best-first (used by tests and diagnostics)."""
    return sorted(candidates, key=preference_key)
