"""Seeded, replayable fuzzing scenarios: exchange + policies + trace.

A :class:`Scenario` is a fully serialisable description of one
differential-testing run: the participants of a small exchange, the base
routing table, a policy mix restricted to constructs whose intended
semantics the reference interpreter can state independently, and a BGP
update trace. Everything derives deterministically from one integer seed
(via :mod:`repro.workloads.seeding`), and the JSON round-trip is exact —
a failure artifact replays bit-for-bit on another machine.

Trace steps are drawn through the same
:class:`~repro.workloads.updates.UpdateSequencer` the calibrated trace
generator uses, so fuzzing exercises the announce/withdraw/re-announce
mix the paper measured rather than an arbitrary one.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from typing import Dict, List, Optional, Tuple, Union

from repro.bgp.asn import AsPath
from repro.bgp.attributes import RouteAttributes
from repro.bgp.messages import Update
from repro.core.controller import PEERING_LAN, SdxController
from repro.net.addresses import IPv4Address, IPv4Prefix
from repro.policy.headerspace import HeaderSpace
from repro.policy.policies import Policy, drop, fwd, match
from repro.workloads.routing import PrefixPool, synthesize_as_path
from repro.workloads.seeding import SeedLike, derive_seed, make_rng
from repro.workloads.updates import UpdateSequencer

#: Serialisation format version stamped into every scenario dict.
SCENARIO_VERSION = 1

#: Single-field match options for generated policies (field, values).
FIELD_CHOICES: Tuple[Tuple[str, Tuple[Union[int, str], ...]], ...] = (
    ("dstport", (80, 443, 53, 8080)),
    ("srcport", (80, 443, 123)),
    ("protocol", (6, 17)),
)

#: Source-half CIDRs used by generated inbound policies.
SRC_HALVES: Tuple[str, ...] = ("0.0.0.0/1", "128.0.0.0/1")


@dataclass(frozen=True)
class ScenarioParticipant:
    """One member of the fuzzed exchange."""

    name: str
    asn: int
    ports: int


@dataclass(frozen=True)
class ScenarioAnnouncement:
    """One base-table route: who announces which prefix with which path."""

    participant: str
    prefix: str
    as_path: Tuple[int, ...]


@dataclass(frozen=True)
class ScenarioPolicy:
    """One generated policy clause, restricted to reference-checkable forms.

    Outbound: ``match(field=value)`` (optionally refined with
    ``dstip=dst_prefix``) forwarding to ``target``, or dropping when
    ``target`` is ``None``. Inbound: the same single-field match steering
    accepted traffic to the installer's own interface ``port_index``.
    """

    participant: str
    direction: str
    field: str
    value: Union[int, str]
    target: Optional[str] = None
    dst_prefix: Optional[str] = None
    port_index: int = 0

    def predicate_space(self) -> HeaderSpace:
        """The clause predicate as a raw :class:`HeaderSpace`."""
        constraints: Dict[str, Union[int, str]] = {self.field: self.value}
        if self.dst_prefix is not None:
            constraints["dstip"] = self.dst_prefix
        return HeaderSpace(**constraints)

    def build(self, port_of) -> Policy:
        """The clause as a policy AST.

        ``port_of(participant, index)`` resolves the installer's own
        interface number for inbound clauses (concrete switch ports exist
        only once the scenario is attached to a controller).
        """
        predicate = match(self.predicate_space())
        if self.direction == "out":
            if self.target is None:
                return predicate >> drop
            return predicate >> fwd(self.target)
        return predicate >> fwd(port_of(self.participant, self.port_index))


@dataclass(frozen=True)
class TraceStep:
    """One BGP event of the fuzzed trace."""

    kind: str
    participant: str
    prefix: str
    as_path: Tuple[int, ...] = ()
    med: int = 0

    def to_update(self, next_hop: IPv4Address) -> Update:
        """The step as a BGP :class:`Update` with the given next hop."""
        prefix = IPv4Prefix(self.prefix)
        if self.kind == "withdraw":
            return Update.withdraw(self.participant, prefix)
        attributes = RouteAttributes(
            next_hop=next_hop, as_path=AsPath(self.as_path), med=self.med)
        return Update.announce(self.participant, prefix, attributes)


@dataclass(frozen=True)
class Scenario:
    """A complete, serialisable differential-testing scenario."""

    seed: int
    participants: Tuple[ScenarioParticipant, ...]
    prefixes: Tuple[str, ...]
    announcements: Tuple[ScenarioAnnouncement, ...]
    policies: Tuple[ScenarioPolicy, ...]
    trace: Tuple[TraceStep, ...]

    # ------------------------------------------------------------------
    # Derived topology facts (mirroring SdxController's deterministic
    # allocation, so the reference interpreter needs no controller)
    # ------------------------------------------------------------------

    def participant_names(self) -> Tuple[str, ...]:
        """Member names in registration order."""
        return tuple(spec.name for spec in self.participants)

    def asn_of(self, name: str) -> int:
        """The ASN of participant ``name``."""
        for spec in self.participants:
            if spec.name == name:
                return spec.asn
        raise KeyError(name)

    def switch_ports(self) -> Dict[str, Tuple[int, ...]]:
        """Per-participant physical switch ports (sequential from 1)."""
        ports: Dict[str, Tuple[int, ...]] = {}
        cursor = 1
        for spec in self.participants:
            ports[spec.name] = tuple(range(cursor, cursor + spec.ports))
            cursor += spec.ports
        return ports

    def port_ips(self) -> Dict[str, IPv4Address]:
        """Each participant's first-interface peering-LAN address."""
        ips: Dict[str, IPv4Address] = {}
        host = 1
        for spec in self.participants:
            ips[spec.name] = PEERING_LAN.first_address + host
            host += spec.ports
        return ips

    def base_updates(self) -> List[Update]:
        """The base routing table as one announcement per route."""
        ips = self.port_ips()
        out: List[Update] = []
        for announcement in self.announcements:
            attributes = RouteAttributes(
                next_hop=ips[announcement.participant],
                as_path=AsPath(announcement.as_path))
            out.append(Update.announce(
                announcement.participant, IPv4Prefix(announcement.prefix),
                attributes))
        return out

    def step_update(self, step: TraceStep) -> Update:
        """One trace step as the exact update every execution consumes."""
        return step.to_update(self.port_ips()[step.participant])

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def build_controller(self, **kwargs) -> SdxController:
        """A started controller loaded with this scenario's base state.

        Builds identical controllers on every call (same participants in
        the same order, same base routes, same policies), which is what
        lets the oracle run full-recompilation and incremental executions
        in lockstep. Keyword arguments pass through to
        :class:`SdxController`.
        """
        kwargs.setdefault("with_dataplane", True)
        controller = SdxController(**kwargs)
        for spec in self.participants:
            controller.add_participant(spec.name, spec.asn, ports=spec.ports)
        for announcement in self.announcements:
            controller.announce_route(
                announcement.participant, IPv4Prefix(announcement.prefix),
                AsPath(announcement.as_path))
        for policy in self.policies:
            handle = controller.participant(policy.participant)
            built = policy.build(
                lambda name, index: controller.participant(name).port(index))
            if policy.direction == "out":
                handle.add_outbound(built)
            else:
                handle.add_inbound(built)
        controller.start()
        return controller

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """A JSON-safe dict (see :meth:`from_dict` for the inverse)."""
        payload = asdict(self)
        payload["version"] = SCENARIO_VERSION
        return payload

    def to_json(self) -> str:
        """The scenario as deterministic, pretty-printed JSON."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "Scenario":
        """Rebuild a scenario from :meth:`to_dict` output."""
        version = payload.get("version", SCENARIO_VERSION)
        if version != SCENARIO_VERSION:
            raise ValueError(f"unsupported scenario version {version!r}")
        return cls(
            seed=int(payload["seed"]),  # type: ignore[arg-type]
            participants=tuple(
                ScenarioParticipant(**item)
                for item in payload["participants"]),  # type: ignore[union-attr]
            prefixes=tuple(payload["prefixes"]),  # type: ignore[arg-type]
            announcements=tuple(
                ScenarioAnnouncement(
                    participant=item["participant"], prefix=item["prefix"],
                    as_path=tuple(item["as_path"]))
                for item in payload["announcements"]),  # type: ignore[union-attr]
            policies=tuple(
                ScenarioPolicy(**item)
                for item in payload["policies"]),  # type: ignore[union-attr]
            trace=tuple(
                TraceStep(
                    kind=item["kind"], participant=item["participant"],
                    prefix=item["prefix"], as_path=tuple(item["as_path"]),
                    med=item["med"])
                for item in payload["trace"]),  # type: ignore[union-attr]
        )

    @classmethod
    def from_json(cls, text: str) -> "Scenario":
        """Rebuild a scenario from :meth:`to_json` output."""
        return cls.from_dict(json.loads(text))


def _generate_policies(rng, specs: Tuple[ScenarioParticipant, ...],
                       prefixes: Tuple[str, ...],
                       count: int) -> Tuple[ScenarioPolicy, ...]:
    """``count`` random reference-checkable policy clauses."""
    names = [spec.name for spec in specs]
    ports_of = {spec.name: spec.ports for spec in specs}
    out: List[ScenarioPolicy] = []
    for _ in range(count):
        installer = rng.choice(names)
        if rng.random() < 0.7:
            field_name, values = rng.choice(FIELD_CHOICES)
            value = rng.choice(values)
            target = rng.choice([name for name in names if name != installer])
            dst_prefix = (rng.choice(prefixes)
                          if rng.random() < 0.35 else None)
            out.append(ScenarioPolicy(
                participant=installer, direction="out",
                field=field_name, value=value,
                target=None if rng.random() < 0.2 else target,
                dst_prefix=dst_prefix))
        else:
            if rng.random() < 0.5:
                field_name, value = "srcip", rng.choice(SRC_HALVES)
            else:
                field_name, values = rng.choice(FIELD_CHOICES)
                value = rng.choice(values)
            out.append(ScenarioPolicy(
                participant=installer, direction="in",
                field=field_name, value=value,
                port_index=rng.randrange(ports_of[installer])))
    return tuple(out)


def generate_scenario(seed: SeedLike, *, participants: int = 4,
                      prefixes: int = 4, policies: int = 5,
                      steps: int = 20,
                      withdraw_probability: float = 0.25) -> Scenario:
    """A deterministic scenario from one seed.

    Each prefix gets an owner plus, with some probability, extra
    (longer-path) announcers — the multiple-candidate structure that
    makes best-route changes and eligibility flips actually happen when
    the trace churns. The trace itself comes from the shared
    :class:`~repro.workloads.updates.UpdateSequencer`.
    """
    if participants < 2:
        raise ValueError("a scenario needs at least two participants")
    rng = make_rng(seed, salt=0xF022)
    base_seed = derive_seed(seed, "scenario") if not isinstance(seed, int) \
        else seed
    specs = tuple(
        ScenarioParticipant(
            name=f"AS{index + 1}", asn=65_001 + index,
            ports=2 if rng.random() < 0.25 else 1)
        for index in range(participants))

    pool = PrefixPool(lengths=(24, 16), seed=derive_seed(seed, "prefixes"))
    prefix_objs = pool.take(prefixes)
    prefix_texts = tuple(str(prefix) for prefix in prefix_objs)

    announcements: List[ScenarioAnnouncement] = []
    announcers: Dict[IPv4Prefix, List[Tuple[str, int]]] = {}
    for prefix, text in zip(prefix_objs, prefix_texts):
        owner = rng.choice(specs)
        origin = rng.randrange(1_000, 60_000)
        path = synthesize_as_path(origin, owner.asn, rng)
        announcements.append(ScenarioAnnouncement(
            participant=owner.name, prefix=text, as_path=path.asns))
        announcers[prefix] = [(owner.name, owner.asn)]
        for spec in specs:
            if spec.name == owner.name or rng.random() >= 0.35:
                continue
            cover = synthesize_as_path(
                origin, spec.asn, rng, min_length=2, mean_extra_hops=3.0)
            announcements.append(ScenarioAnnouncement(
                participant=spec.name, prefix=text, as_path=cover.asns))
            announcers[prefix].append((spec.name, spec.asn))

    policy_tuple = _generate_policies(rng, specs, prefix_texts, policies)

    trace_rng = make_rng(derive_seed(seed, "trace"))
    sequencer = UpdateSequencer(
        announcers, trace_rng, withdraw_probability=withdraw_probability)
    trace: List[TraceStep] = []
    for _ in range(steps):
        prefix = trace_rng.choice(prefix_objs)
        update = sequencer.step(prefix)
        if update.withdrawals:
            trace.append(TraceStep(
                kind="withdraw", participant=update.sender,
                prefix=str(update.withdrawals[0].prefix)))
        else:
            announcement = update.announcements[0]
            trace.append(TraceStep(
                kind="announce", participant=update.sender,
                prefix=str(announcement.prefix),
                as_path=announcement.attributes.as_path.asns,
                med=announcement.attributes.med))

    return Scenario(
        seed=base_seed, participants=specs, prefixes=prefix_texts,
        announcements=tuple(announcements), policies=policy_tuple,
        trace=tuple(trace))
