"""Tests for the BGP decision process: preference ordering and determinism."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bgp.asn import AsPath
from repro.bgp.attributes import Origin, RouteAttributes
from repro.bgp.decision import best_route, preference_key, rank_routes
from repro.bgp.rib import RouteEntry
from repro.net.addresses import IPv4Address, IPv4Prefix

PREFIX = IPv4Prefix("10.0.0.0/8")


def make_entry(learned_from="A", path=(65001,), local_pref=100, med=0,
               origin=Origin.IGP, next_hop="172.0.0.1"):
    return RouteEntry(
        prefix=PREFIX,
        attributes=RouteAttributes(
            next_hop=IPv4Address(next_hop), as_path=AsPath(path),
            origin=origin, med=med, local_pref=local_pref),
        learned_from=learned_from)


entry_strategy = st.builds(
    make_entry,
    learned_from=st.sampled_from(["A", "B", "C", "D"]),
    path=st.lists(st.integers(min_value=1, max_value=9999), min_size=1, max_size=5).map(tuple),
    local_pref=st.sampled_from([50, 100, 200]),
    med=st.sampled_from([0, 10, 20]),
    origin=st.sampled_from(list(Origin)),
    next_hop=st.sampled_from(["172.0.0.1", "172.0.0.2", "172.0.0.3"]),
)


class TestBestRoute:
    def test_empty_candidates(self):
        assert best_route([]) is None

    def test_single_candidate(self):
        entry = make_entry()
        assert best_route([entry]) is entry

    def test_local_pref_dominates_path_length(self):
        long_preferred = make_entry("A", path=(1, 2, 3, 4), local_pref=200)
        short = make_entry("B", path=(1,), local_pref=100)
        assert best_route([short, long_preferred]) is long_preferred

    def test_shorter_path_wins(self):
        short = make_entry("A", path=(1,))
        long = make_entry("B", path=(1, 2))
        assert best_route([long, short]) is short

    def test_prepending_deprioritises(self):
        """AS-path prepending (Section 1) makes a route less preferred."""
        plain = make_entry("A", path=(65001,))
        prepended = make_entry("B", path=(65002, 65002, 65002))
        assert best_route([plain, prepended]) is plain

    def test_origin_breaks_tie(self):
        igp = make_entry("A", origin=Origin.IGP)
        incomplete = make_entry("B", origin=Origin.INCOMPLETE)
        assert best_route([incomplete, igp]) is igp

    def test_med_breaks_tie(self):
        low = make_entry("A", med=0)
        high = make_entry("B", med=50)
        assert best_route([high, low]) is low

    def test_next_hop_breaks_tie(self):
        low = make_entry("A", next_hop="172.0.0.1")
        high = make_entry("B", next_hop="172.0.0.2")
        assert best_route([high, low]) is low

    def test_peer_name_is_final_tiebreak(self):
        first = make_entry("A")
        second = make_entry("B")
        assert best_route([second, first]) is first

    @settings(max_examples=80, deadline=None)
    @given(st.lists(entry_strategy, min_size=1, max_size=8))
    def test_order_independent_property(self, entries):
        forward = best_route(entries)
        backward = best_route(list(reversed(entries)))
        assert preference_key(forward) == preference_key(backward)

    @settings(max_examples=80, deadline=None)
    @given(st.lists(entry_strategy, min_size=1, max_size=8))
    def test_best_is_rank_head_property(self, entries):
        ranked = rank_routes(entries)
        assert preference_key(ranked[0]) == preference_key(best_route(entries))
        keys = [preference_key(entry) for entry in ranked]
        assert keys == sorted(keys)
