"""Figure 9 — additional forwarding rules vs BGP update burst size.

Replays worst-case bursts (every update moves a distinct prefix's best
path) against compiled SDXs and counts the fast-path rules that must sit
in the table until the background re-optimisation coalesces them.
Expected shape: linear in burst size, with a slope that grows with the
number of participants carrying policies.
"""

from conftest import publish, scaled

from repro.experiments.harness import run_fig9
from repro.experiments.metrics import render_chart, render_series

BURSTS = (1, 5, 10, 20, 40, 60, 80, 100)
PARTICIPANTS = (100, 200, 300)


def _run():
    return run_fig9(burst_sizes=BURSTS, participant_counts=PARTICIPANTS,
                    prefixes=scaled(2_000))


def test_fig9_burst_rules(benchmark):
    series_list = benchmark.pedantic(_run, rounds=1, iterations=1)
    publish("fig9_burst_rules", render_series(
        series_list, "burst size (updates)", "additional rules")
        + "\n\n" + render_chart(series_list, x_label="burst size",
                                y_label="additional rules"))

    for series in series_list:
        ys = series.ys()
        xs = series.xs()
        # Strictly growing with burst size.
        assert ys == sorted(ys)
        # Roughly linear: per-update rule cost stays within a 2.5x band.
        # (The burst-size-1 point is excluded: a single prefix's rule
        # count varies with how many policies happen to cover it.)
        per_update = [y / x for x, y in zip(xs, ys) if x >= 5]
        assert max(per_update) / min(per_update) < 2.5
    # Bigger exchanges pay more rules for the same burst.
    finals = [series.ys()[-1] for series in series_list]
    assert finals == sorted(finals)
