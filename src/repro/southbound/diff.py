"""Classifier diffing: the minimal FlowMod delta between rule sets.

A rule's identity on the switch is its ``(priority, match)`` pair — the
key OpenFlow's ``OFPFC_MODIFY_STRICT`` / ``OFPFC_DELETE_STRICT`` operate
on. Diffing the installed table against a newly compiled classifier under
that key yields the three standard mod kinds:

* **add** — key present only in the target;
* **modify** — key present in both with different actions;
* **delete** — key present only in the installed table.

Rules whose key *and* actions are unchanged are not touched at all, which
is what preserves their packet counters across a recompile (the property
the Figure 9/10 update-cost measurements depend on).
"""

from __future__ import annotations

import difflib
import enum
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.policy.classifier import Action, Classifier
from repro.policy.flowrules import FlowRule, to_flow_rules
from repro.policy.headerspace import HeaderSpace

#: The switch-side identity of a rule: its priority and exact match.
RuleKey = Tuple[int, HeaderSpace]

#: Exclusive upper bound for aligned main-table priorities. Fast-path
#: shadow rules live at and above this value, so the aligner never
#: assigns into that band (the incremental engine's ``FAST_PATH_BASE``
#: is this same constant).
PRIORITY_CEILING = 1_000_000

#: Gap left between freshly assigned priorities so later insertions can
#: slot between existing rules without renumbering them.
PRIORITY_STRIDE = 64


def rule_key(rule: FlowRule) -> RuleKey:
    """The ``(priority, match)`` key identifying ``rule`` on the switch."""
    return (rule.priority, rule.match)


class FlowModOp(enum.Enum):
    """The three FlowMod kinds the southbound engine emits."""

    ADD = "add"
    MODIFY = "modify"
    DELETE = "delete"


@dataclass(frozen=True)
class FlowMod:
    """One flow-table update message.

    For :attr:`FlowModOp.DELETE` the ``actions`` record what was installed
    (useful for logging); the switch only needs the key.
    """

    op: FlowModOp
    priority: int
    match: HeaderSpace
    actions: Tuple[Action, ...] = ()

    @property
    def key(self) -> RuleKey:
        """The rule key this mod operates on."""
        return (self.priority, self.match)

    @property
    def rule(self) -> FlowRule:
        """The mod's payload as a :class:`FlowRule`."""
        return FlowRule(priority=self.priority, match=self.match,
                        actions=self.actions)

    @classmethod
    def add(cls, rule: FlowRule) -> "FlowMod":
        """An ADD installing ``rule``."""
        return cls(FlowModOp.ADD, rule.priority, rule.match, rule.actions)

    @classmethod
    def modify(cls, rule: FlowRule) -> "FlowMod":
        """A MODIFY rewriting the actions of ``rule``'s key."""
        return cls(FlowModOp.MODIFY, rule.priority, rule.match, rule.actions)

    @classmethod
    def delete(cls, rule: FlowRule) -> "FlowMod":
        """A DELETE removing ``rule``'s key."""
        return cls(FlowModOp.DELETE, rule.priority, rule.match, rule.actions)

    def describe(self) -> str:
        """A one-line human-readable rendering."""
        return f"{self.op.value} {self.rule.describe()}"


@dataclass(frozen=True)
class Delta:
    """A minimal update set turning one rule table into another.

    ``unchanged`` counts rules shared verbatim by both sides — the rules a
    full reinstall would have needlessly touched.
    """

    adds: Tuple[FlowMod, ...] = ()
    modifies: Tuple[FlowMod, ...] = ()
    deletes: Tuple[FlowMod, ...] = ()
    unchanged: int = 0

    @property
    def mods(self) -> Tuple[FlowMod, ...]:
        """Every mod, adds then modifies then deletes."""
        return self.adds + self.modifies + self.deletes

    @property
    def total(self) -> int:
        """How many FlowMods this delta sends."""
        return len(self.adds) + len(self.modifies) + len(self.deletes)

    @property
    def is_empty(self) -> bool:
        """True when the tables already agree."""
        return self.total == 0

    @property
    def full_reinstall_cost(self) -> int:
        """What a clear-and-reinstall would have cost in FlowMods.

        One delete per installed rule plus one add per target rule — the
        baseline the delta engine is measured against.
        """
        installed = len(self.modifies) + len(self.deletes) + self.unchanged
        target = len(self.adds) + len(self.modifies) + self.unchanged
        return installed + target

    def describe(self) -> str:
        """A short summary line."""
        return (f"delta(+{len(self.adds)} ~{len(self.modifies)} "
                f"-{len(self.deletes)} ={self.unchanged})")


def _keyed(rules: Iterable[FlowRule]) -> Tuple[Dict[RuleKey, FlowRule], Dict[RuleKey, int]]:
    """First-instance-wins key map plus per-key duplicate counts.

    First match wins inside a priority tie, so when two rules share a key
    only the first is live; the duplicates are shadow copies the delta
    collapses away.
    """
    keyed: Dict[RuleKey, FlowRule] = {}
    extras: Dict[RuleKey, int] = {}
    for rule in rules:
        key = rule_key(rule)
        if key in keyed:
            extras[key] = extras.get(key, 0) + 1
        else:
            keyed[key] = rule
    return keyed, extras


def compute_delta(installed: Sequence[FlowRule],
                  target: Sequence[FlowRule]) -> Delta:
    """The minimal delta turning ``installed`` into ``target``.

    Keys duplicated on either side collapse to their first (live)
    instance: installed shadow copies become a MODIFY (the engine's modify
    removes every instance of a key before reinstalling one), and target
    shadow copies are skipped as unreachable.
    """
    installed_map, installed_extras = _keyed(installed)
    target_map, _target_extras = _keyed(target)

    adds: List[FlowMod] = []
    modifies: List[FlowMod] = []
    deletes: List[FlowMod] = []
    unchanged = 0
    for key, rule in target_map.items():
        old = installed_map.get(key)
        if old is None:
            adds.append(FlowMod.add(rule))
        elif old.actions != rule.actions or installed_extras.get(key):
            modifies.append(FlowMod.modify(rule))
        else:
            unchanged += 1
    for key, rule in installed_map.items():
        if key not in target_map:
            deletes.append(FlowMod.delete(rule))
    return Delta(adds=tuple(adds), modifies=tuple(modifies),
                 deletes=tuple(deletes), unchanged=unchanged)


def align_flow_rules(installed: Sequence[FlowRule], classifier: Classifier,
                     base_priority: int = 0,
                     ceiling: int = PRIORITY_CEILING) -> List[FlowRule]:
    """Assign priorities to ``classifier``, reusing installed ones.

    A rule's key is ``(priority, match)``, so a positional renumbering
    (what :func:`~repro.policy.flowrules.to_flow_rules` does) turns every
    shifted-but-otherwise-identical rule into a delete/add pair. This
    aligner instead matches the target's rule sequence against the
    installed table (longest common subsequence over the match fields):
    aligned rules keep their installed priority — diffing to a no-op or a
    single MODIFY — and only genuinely new rules get fresh priorities,
    slotted into the gaps :data:`PRIORITY_STRIDE` leaves between existing
    rules. The assignment always descends strictly in classifier order,
    stays above ``base_priority`` and below ``ceiling``, and falls back
    to a plain dense renumbering in the (practically unreachable) case
    that no gap can hold the insertions.
    """
    rules = classifier.rules
    if not rules:
        return []
    anchors: List[FlowRule] = []
    for rule in sorted(installed, key=lambda fr: -fr.priority):
        if base_priority < rule.priority < ceiling and (
                not anchors or rule.priority < anchors[-1].priority):
            anchors.append(rule)
    matcher = difflib.SequenceMatcher(
        a=[fr.match for fr in anchors],
        b=[r.match for r in rules], autojunk=False)
    anchored: Dict[int, int] = {}
    for block in matcher.get_matching_blocks():
        for offset in range(block.size):
            anchored[block.b + offset] = anchors[block.a + offset].priority

    priorities = [0] * len(rules)
    upper = ceiling  # exclusive bound for everything still unassigned
    buffered: List[int] = []  # consecutive unanchored target indices
    for index in range(len(rules)):
        anchor = anchored.get(index)
        if anchor is None or anchor >= upper or upper - anchor - 1 < len(buffered):
            # No anchor, or no room above it for the buffered insertions:
            # the rule gets a fresh priority (its installed twin, if any,
            # is deleted by the diff).
            buffered.append(index)
            continue
        step = max(1, (upper - anchor) // (len(buffered) + 1))
        for position, buffered_index in enumerate(buffered):
            priorities[buffered_index] = upper - step * (position + 1)
        priorities[index] = anchor
        upper = anchor
        buffered = []
    if buffered:
        # The tail below the last anchor: pack it just above
        # ``base_priority``, strided, leaving room for future growth.
        stride = min(PRIORITY_STRIDE,
                     (upper - base_priority - 1) // len(buffered))
        if stride < 1:
            return to_flow_rules(classifier, base_priority)
        for position, buffered_index in enumerate(buffered):
            priorities[buffered_index] = (
                base_priority + stride * (len(buffered) - position))
    return [FlowRule(priority=priorities[index], match=rule.match,
                     actions=rule.actions)
            for index, rule in enumerate(rules)]


def diff_classifier(installed: Sequence[FlowRule], classifier: Classifier,
                    base_priority: int = 0) -> Delta:
    """The delta from ``installed`` to a compiled ``classifier``.

    Target priorities come from :func:`align_flow_rules`, so rules the
    classifier shares with the installed table keep their keys and diff
    to nothing (or to a single MODIFY when only the actions changed);
    applying the delta yields a table equivalent to a fresh
    :meth:`~repro.dataplane.flowtable.FlowTable.install_classifier` —
    same rule order, same lookups — though not necessarily the same
    numeric priorities.
    """
    return compute_delta(installed,
                         align_flow_rules(installed, classifier, base_priority))
