"""Differential testing against an independent reference model.

The reference model re-states what the SDX *should* do from the paper's
prose, sharing no code with the compiler:

1. Take the sender's clauses in priority order; the first whose predicate
   matches AND whose target announced-and-exports a route covering the
   destination wins. A matching drop clause drops.
2. Otherwise the packet follows the sender's best BGP route (longest
   prefix match, then the route server's per-participant selection).
3. At the egress participant, the first matching inbound clause picks the
   delivery port (and rewrites); otherwise the main port.

Random exchanges + random clause policies + probe sweeps must agree with
the compiled data plane on egress participant, delivery port, and final
destination IP.
"""

from typing import Optional, Tuple

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bgp.asn import AsPath
from repro.core.controller import SdxController
from repro.net.addresses import IPv4Prefix
from repro.net.packet import Packet
from repro.policy.policies import drop, fwd, match

NAMES = ["A", "B", "C", "D"]
PREFIXES = [IPv4Prefix(f"{n}.0.0.0/8") for n in (30, 40, 50)]
PORT_VALUES = (80, 443, 53)
SRC_HALVES = ("0.0.0.0/1", "128.0.0.0/1")


# ----------------------------------------------------------------------
# Random exchange description
# ----------------------------------------------------------------------

announcements = st.lists(
    st.tuples(st.sampled_from(NAMES), st.sampled_from(PREFIXES),
              st.integers(min_value=1, max_value=4)),
    min_size=2, max_size=6)

out_clauses = st.lists(
    st.tuples(st.sampled_from(NAMES), st.sampled_from(NAMES),
              st.sampled_from(PORT_VALUES), st.booleans()),
    max_size=5)

in_clauses = st.lists(
    st.tuples(st.sampled_from(NAMES), st.sampled_from(SRC_HALVES),
              st.integers(min_value=0, max_value=1)),
    max_size=3)


def build_exchange(announced, outs, ins):
    sdx = SdxController()
    for index, name in enumerate(NAMES):
        sdx.add_participant(name, 65001 + index, ports=2)
    for sender, prefix, extra in announced:
        asn = 65001 + NAMES.index(sender)
        sdx.announce_route(sender, prefix,
                           AsPath([asn] + [64512 + i for i in range(extra)]))
    model_outs = {name: [] for name in NAMES}
    model_ins = {name: [] for name in NAMES}
    for owner, target, port, drops in outs:
        if owner == target:
            continue
        participant = sdx.participant(owner).participant
        if drops:
            participant.add_outbound(match(dstport=port) >> drop)
            model_outs[owner].append((port, None))
        else:
            participant.add_outbound(match(dstport=port) >> fwd(target))
            model_outs[owner].append((port, target))
    for owner, half, port_index in ins:
        handle = sdx.participant(owner)
        handle.participant.add_inbound(
            match(srcip=half) >> fwd(handle.port(port_index)))
        model_ins[owner].append((half, port_index))
    sdx.start()
    return sdx, model_outs, model_ins


# ----------------------------------------------------------------------
# The reference model
# ----------------------------------------------------------------------

def reference_forward(sdx, model_outs, model_ins, sender: str,
                      probe: Packet) -> Optional[Tuple[str, int]]:
    """(egress participant, delivery switch port) or None if dropped."""
    server = sdx.route_server
    dstip = probe["dstip"]

    egress = None
    for port, target in model_outs[sender]:
        if probe.get("dstport") != port:
            continue
        if target is None:
            return None  # explicit drop clause
        # Eligible iff the target announced-and-exports a covering route.
        covering = [
            prefix for prefix in server.announced_by(target)
            if prefix.contains_address(dstip)
            and server.is_reachable(sender, prefix, via=target)
        ]
        if covering:
            egress = target
            break
        # Ineligible clause: fall through to later clauses / default.
    if egress is None:
        candidates = [
            prefix for prefix in server.all_prefixes()
            if prefix.contains_address(dstip)
        ]
        best = None
        best_prefix = None
        for prefix in sorted(candidates, key=lambda p: -p.length):
            best = server.best_route_for(sender, prefix)
            if best is not None:
                best_prefix = prefix
                break
        if best is None:
            return None
        egress = best.learned_from

    handle = sdx.participant(egress)
    for half, port_index in model_ins[egress]:
        if IPv4Prefix(half).contains_address(probe["srcip"]):
            return egress, handle.port(port_index)
    return egress, handle.port(0)


def probes():
    for prefix in PREFIXES:
        for dstport in PORT_VALUES + (22,):
            for srcip in ("10.0.0.1", "200.0.0.1"):
                yield Packet(dstip=prefix.first_address + 1, dstport=dstport,
                             srcip=srcip, protocol=6)


class TestAgainstReferenceModel:
    @settings(max_examples=25, deadline=None)
    @given(announcements, out_clauses, in_clauses)
    def test_dataplane_matches_reference_property(self, announced, outs, ins):
        sdx, model_outs, model_ins = build_exchange(announced, outs, ins)
        for sender in NAMES:
            for probe in probes():
                expected = reference_forward(
                    sdx, model_outs, model_ins, sender, probe)
                deliveries = [d for d in sdx.send(sender, probe) if d.accepted]
                if expected is None:
                    assert deliveries == [], (
                        f"{sender} -> {probe!r}: expected drop, "
                        f"got {deliveries}")
                else:
                    egress, port = expected
                    assert len(deliveries) == 1
                    assert deliveries[0].participant == egress, (
                        f"{sender} -> {probe!r}: expected {egress}, "
                        f"got {deliveries[0].participant}")
                    assert deliveries[0].switch_port == port
