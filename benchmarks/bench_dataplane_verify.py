"""Dataplane verifier cost — incremental delta verification vs full.

For each sweep point, compiles a seeded workload with the dataplane
verifier attached, times one whole-table SDX010-SDX013 analysis, then
flips a spread of installed rules (modify to drop and back) through
``verify_delta`` as single-mod batches and reports the median per-delta
latency. The headline column is the incremental speedup: the
equivalence-class partition means a FlowMod delta re-verifies only the
rules whose match regions the mod can have touched, so per-delta cost
must stay far below a fresh whole-table pass. Results land in
``benchmarks/results/dataplane_verify.json`` next to the rendered
table; the perf gate runs the same workload through the
``dataplane_verify`` family in quick mode.
"""

from conftest import publish, publish_json, scaled

from repro.experiments.metrics import render_table
from repro.policy.classifier import Action
from repro.policy.flowrules import FlowRule
from repro.southbound.diff import FlowMod
from repro.statics import analyze_controller_dataplane
from repro.workloads.policies import generate_policies, install_assignments
from repro.workloads.topology import generate_ixp

SEED = 5
SWEEP = ((12, 80), (24, 160), (60, 400))
DELTAS = 12

#: The soundness-economics floor: at figure-8 scale the incremental
#: path must beat a fresh whole-table analysis by at least this factor,
#: or running the verifier on every FlowMod batch stops being viable.
MIN_SPEEDUP_AT_SCALE = 5.0


def _run_point(participants, prefixes):
    import statistics
    import time

    ixp = generate_ixp(participants, prefixes, seed=SEED)
    controller = ixp.build_controller(dataplane_statics_mode="warn")
    install_assignments(controller, generate_policies(ixp, seed=SEED + 1))
    controller.start()
    verifier = controller.dataplane_verifier

    started = time.perf_counter()
    report = analyze_controller_dataplane(controller)
    full_seconds = time.perf_counter() - started

    rules = list(controller.table.rules)
    timings = []
    for index in range(DELTAS):
        target = rules[(index * len(rules)) // DELTAS]
        flipped = FlowRule(
            priority=target.priority, match=target.match,
            actions=(() if target.actions else (Action(port=1),)))
        for replacement in (flipped, target):
            mods = [FlowMod.modify(replacement)]
            controller.table.apply_delta(mods)
            started = time.perf_counter()
            verifier.verify_delta(mods)
            timings.append(time.perf_counter() - started)

    delta_seconds = statistics.median(timings)
    return {
        "participants": participants,
        "prefixes": prefixes,
        "rules": len(rules),
        "diagnostics": len(report.diagnostics),
        "full_seconds": full_seconds,
        "delta_seconds": delta_seconds,
        "speedup": full_seconds / max(delta_seconds, 1e-9),
    }


def _run_sweep():
    return [_run_point(scaled(participants), scaled(prefixes))
            for participants, prefixes in SWEEP]


def test_dataplane_verify(benchmark):
    rows = benchmark.pedantic(_run_sweep, rounds=1, iterations=1)

    table_rows = [[
        row["participants"], row["prefixes"], row["rules"],
        row["diagnostics"],
        f"{row['full_seconds'] * 1000:.1f}",
        f"{row['delta_seconds'] * 1000:.2f}",
        f"{row['speedup']:.1f}x",
    ] for row in rows]
    publish("dataplane_verify", render_table(
        ["participants", "prefixes", "rules", "findings",
         "full ms", "delta ms", "speedup"],
        table_rows))
    publish_json("dataplane_verify", rows)

    # Shape: every point must analyze a real table, and at figure-8
    # scale the incremental path must clear the viability floor.
    for row in rows:
        assert row["rules"] > 0, row
    assert rows[-1]["speedup"] >= MIN_SPEEDUP_AT_SCALE, rows[-1]
