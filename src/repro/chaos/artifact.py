"""Replayable chaos failure artifacts (the PR-3 JSON format, extended).

A chaos artifact is one self-contained JSON file: the (shrunk) scenario,
the (shrunk) fault schedule, and the failure they reproduce. ``python -m
repro soak --chaos --replay <file>`` (or :func:`replay_chaos_artifact`)
rebuilds both and re-runs the driver — on an unmodified tree the same
failure reappears; on a fixed tree the replay comes back clean.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Optional, Union

from repro.chaos.driver import ChaosConfig, chaos_failure
from repro.verification.oracle import OracleFailure
from repro.verification.scenario import Scenario
from repro.workloads.churn import ChaosSchedule

#: Chaos artifact format version.
CHAOS_ARTIFACT_VERSION = 1


@dataclass(frozen=True)
class ChaosArtifact:
    """One saved chaos failure: scenario + schedule + what they broke."""

    scenario: Scenario
    schedule: ChaosSchedule
    kind: str
    step: int
    detail: str
    original_trace_length: int
    original_fault_count: int

    @property
    def failure(self) -> OracleFailure:
        """The recorded failure as an :class:`OracleFailure`."""
        return OracleFailure(kind=self.kind, step=self.step,
                             detail=self.detail)

    def file_name(self) -> str:
        """A deterministic, filesystem-safe artifact name."""
        slug = "".join(ch if ch.isalnum() else "-" for ch in self.kind)
        return (f"chaos-failure-seed{self.schedule.seed}"
                f"-faults{len(self.schedule.faults)}-{slug}.json")

    def to_json(self) -> str:
        """The artifact as deterministic, pretty-printed JSON."""
        payload = {
            "version": CHAOS_ARTIFACT_VERSION,
            "kind": self.kind,
            "step": self.step,
            "detail": self.detail,
            "original_trace_length": self.original_trace_length,
            "original_fault_count": self.original_fault_count,
            "scenario": self.scenario.to_dict(),
            "schedule": self.schedule.to_dict(),
        }
        return json.dumps(payload, indent=2, sort_keys=True)

    def save(self, directory: Union[str, os.PathLike]) -> str:
        """Write the artifact under ``directory``; returns the path."""
        os.makedirs(directory, exist_ok=True)
        path = os.path.join(os.fspath(directory), self.file_name())
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json() + "\n")
        return path

    @classmethod
    def from_json(cls, text: str) -> "ChaosArtifact":
        """Rebuild an artifact from :meth:`to_json` output."""
        payload = json.loads(text)
        version = payload.get("version")
        if version != CHAOS_ARTIFACT_VERSION:
            raise ValueError(
                f"unsupported chaos artifact version {version!r}")
        return cls(
            scenario=Scenario.from_dict(payload["scenario"]),
            schedule=ChaosSchedule.from_dict(payload["schedule"]),
            kind=payload["kind"],
            step=payload["step"],
            detail=payload["detail"],
            original_trace_length=payload["original_trace_length"],
            original_fault_count=payload["original_fault_count"])

    @classmethod
    def load(cls, path: Union[str, os.PathLike]) -> "ChaosArtifact":
        """Read an artifact file back."""
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_json(handle.read())


def replay_chaos_artifact(source: Union[str, os.PathLike, ChaosArtifact], *,
                          config: Optional[ChaosConfig] = None
                          ) -> Optional[OracleFailure]:
    """Re-run a saved chaos failure; returns what the driver finds now.

    ``None`` means the recorded failure no longer reproduces (fixed, or
    environment-dependent — which the deterministic pipeline is designed
    to rule out).
    """
    artifact = (source if isinstance(source, ChaosArtifact)
                else ChaosArtifact.load(source))
    return chaos_failure(artifact.scenario, artifact.schedule, config=config)
