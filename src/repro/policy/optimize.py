"""Classifier post-processing: shadow elimination and rule deduplication.

The composition algebra is correct but wasteful — cross products leave
behind rules that can never fire (their match is covered by an earlier
rule) and runs of rules with identical actions. The switch only has room
for ~half a million entries (Section 4.2 cites high-end hardware limits),
so the SDX compiler runs these reductions on every table it emits. All
transformations here preserve first-match semantics exactly.
"""

from __future__ import annotations

from typing import List

from repro.policy.classifier import Classifier, Rule


def remove_shadowed(classifier: Classifier) -> Classifier:
    """Drop rules fully covered by a single earlier rule.

    A rule whose match is a subset of an earlier rule's match can never be
    the first match, whatever its actions, so removing it is always safe.
    (Covers-by-union shadowing is not detected; it is rare in SDX output
    and detecting it is NP-hard in general.)
    """
    kept: List[Rule] = []
    for rule in classifier.rules:
        if any(earlier.match.covers(rule.match) for earlier in kept):
            continue
        kept.append(rule)
    return Classifier(kept)


def merge_drop_tail(classifier: Classifier) -> Classifier:
    """Collapse a trailing run of drop rules into the final catch-all.

    Compiled SDX policies end in a catch-all drop; any drop rules directly
    above it are redundant because falling through reaches the catch-all
    with the same outcome.
    """
    rules = list(classifier.rules)
    if not rules or not rules[-1].is_drop or not rules[-1].match.is_wildcard:
        return classifier
    while len(rules) >= 2 and rules[-2].is_drop:
        del rules[-2]
    return Classifier(rules)


def coalesce_adjacent(classifier: Classifier) -> Classifier:
    """Merge an adjacent pair where the later rule covers the earlier one
    and both have identical actions.

    In that situation the earlier rule is redundant: packets it matches
    fall through to the later, identically-acting rule. This pattern shows
    up when a specific policy rule duplicates the default behaviour.
    """
    rules = list(classifier.rules)
    changed = True
    while changed:
        changed = False
        for index in range(len(rules) - 1):
            earlier, later = rules[index], rules[index + 1]
            if earlier.actions == later.actions and later.match.covers(earlier.match):
                del rules[index]
                changed = True
                break
    return Classifier(rules)


def optimize(classifier: Classifier) -> Classifier:
    """Run the full reduction pipeline (safe on any total classifier)."""
    reduced = remove_shadowed(classifier)
    reduced = coalesce_adjacent(reduced)
    reduced = merge_drop_tail(reduced)
    return reduced
