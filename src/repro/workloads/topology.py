"""Synthetic IXP topologies with the paper's participant structure.

Section 6.1 pins the generator to real-IXP shape: "at AMS-IX,
approximately 1% of the participating ASes announce more than 50% of the
total prefixes, and 90% of the ASes combined announce less than 1%", a
fraction of participants have multiple ports, and participants classify
as eyeball / transit / content. Prefix ownership therefore follows a
Zipf-like law whose exponent is calibrated so the top 1% of ASes hold
roughly half of the table.

Transit participants additionally re-announce a slice of other ASes'
prefixes with longer AS paths, which is what gives prefixes multiple
candidate routes (and makes the FEC computation non-trivial).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.bgp.asn import AsPath
from repro.core.controller import SdxController
from repro.net.addresses import IPv4Prefix
from repro.workloads.routing import PrefixPool, synthesize_as_path
from repro.workloads.seeding import SeedLike, make_rng

#: Participant role mix (assumption documented in DESIGN.md; the paper
#: classifies but does not publish proportions).
CATEGORY_FRACTIONS = {"eyeball": 0.60, "transit": 0.25, "content": 0.15}

#: Zipf exponent calibrated so ~1% of ASes announce ~50% of prefixes.
ZIPF_EXPONENT = 1.55

#: Fraction of participants attached with two ports ("the fraction of
#: participants with multiple ports at the exchange").
MULTI_PORT_FRACTION = 0.12


@dataclass(frozen=True)
class ParticipantSpec:
    """One synthetic IXP member."""

    name: str
    asn: int
    category: str
    ports: int
    prefixes: Tuple[IPv4Prefix, ...]


@dataclass
class SyntheticIxp:
    """A generated exchange: members plus every route announcement.

    ``seed`` records whatever was passed to :func:`generate_ixp` — an
    integer for replayable builds, or the caller's ``random.Random``.
    """

    participants: List[ParticipantSpec]
    announcements: List[Tuple[str, IPv4Prefix, AsPath]]
    seed: SeedLike

    def by_name(self, name: str) -> ParticipantSpec:
        """The participant called ``name``."""
        for participant in self.participants:
            if participant.name == name:
                return participant
        raise KeyError(name)

    def top_by_prefixes(self, count: int,
                        category: Optional[str] = None) -> List[ParticipantSpec]:
        """The ``count`` largest members (optionally of one category)."""
        pool = [p for p in self.participants
                if category is None or p.category == category]
        pool.sort(key=lambda p: (-len(p.prefixes), p.name))
        return pool[:count]

    def all_prefixes(self) -> List[IPv4Prefix]:
        """Every announced prefix, deduplicated, sorted."""
        seen = {prefix for _name, prefix, _path in self.announcements}
        return sorted(seen)

    def build_controller(self, *, with_dataplane: bool = False,
                         **kwargs) -> SdxController:
        """Instantiate an :class:`SdxController` loaded with this IXP.

        Control-plane experiments default to no data plane (no router
        objects), which is how the paper's evaluation ran too ("we
        instantiate the SDX runtime with no underlying physical
        switches").
        """
        controller = SdxController(with_dataplane=with_dataplane, **kwargs)
        for spec in self.participants:
            controller.add_participant(
                spec.name, spec.asn, ports=spec.ports, announce=False)
        from repro.bgp.attributes import RouteAttributes
        from repro.bgp.messages import Update, Announcement
        from repro.core.controller import SDX_ORIGIN_IP

        per_sender: Dict[str, List[Announcement]] = {}
        for name, prefix, path in self.announcements:
            participant = controller.topology.participant(name)
            next_hop = (participant.ports[0].ip if not participant.is_remote
                        else SDX_ORIGIN_IP)
            per_sender.setdefault(name, []).append(Announcement(
                prefix, RouteAttributes(next_hop=next_hop, as_path=path)))
        controller.load_routes(
            Update(sender=name, announcements=tuple(announcements))
            for name, announcements in per_sender.items())
        return controller


def _category_for(index: int, total: int, rng: random.Random) -> str:
    roll = rng.random()
    if roll < CATEGORY_FRACTIONS["content"]:
        return "content"
    if roll < CATEGORY_FRACTIONS["content"] + CATEGORY_FRACTIONS["transit"]:
        return "transit"
    return "eyeball"


def _zipf_share(count: int, exponent: float) -> List[float]:
    weights = [1.0 / (rank ** exponent) for rank in range(1, count + 1)]
    total = sum(weights)
    return [w / total for w in weights]


def generate_ixp(participants: int, prefixes: int, *, seed: SeedLike = 0,
                 transit_cover_fraction: float = 0.3,
                 prefix_lengths: Sequence[int] = (24, 16)) -> SyntheticIxp:
    """Generate a synthetic IXP with ``participants`` members announcing
    ``prefixes`` distinct prefixes.

    ``transit_cover_fraction`` controls how many prefixes gain a second
    (longer-path) route via some transit member. ``seed`` is an int or a
    :class:`random.Random` (see :mod:`repro.workloads.seeding`).
    """
    if participants < 2:
        raise ValueError("an IXP needs at least two participants")
    rng = make_rng(seed)
    pool = PrefixPool(lengths=prefix_lengths, seed=seed)
    owned = pool.take(prefixes)

    shares = _zipf_share(participants, ZIPF_EXPONENT)
    order = list(range(participants))
    rng.shuffle(order)

    specs: List[ParticipantSpec] = []
    allocations: List[List[IPv4Prefix]] = [[] for _ in range(participants)]
    # Deal prefixes to members proportionally to their Zipf share.
    cursor = 0
    for rank, member in enumerate(order):
        count = round(shares[rank] * prefixes)
        if rank == participants - 1:
            count = prefixes - cursor
        count = max(0, min(count, prefixes - cursor))
        allocations[member] = owned[cursor:cursor + count]
        cursor += count
    # Leftovers (rounding) go to the largest member.
    if cursor < prefixes:
        allocations[order[0]].extend(owned[cursor:])

    announcements: List[Tuple[str, IPv4Prefix, AsPath]] = []
    names: List[str] = []
    for index in range(participants):
        name = f"AS{index + 1}"
        asn = 65_001 + index
        names.append(name)
        category = _category_for(index, participants, rng)
        ports = 2 if rng.random() < MULTI_PORT_FRACTION else 1
        prefix_tuple = tuple(allocations[index])
        specs.append(ParticipantSpec(
            name=name, asn=asn, category=category, ports=ports,
            prefixes=prefix_tuple))
        for prefix in prefix_tuple:
            origin = rng.randrange(1_000, 60_000)
            announcements.append(
                (name, prefix, synthesize_as_path(origin, asn, rng)))

    # Transit cover routes: longer paths to a sample of foreign prefixes.
    transits = [spec for spec in specs if spec.category == "transit"]
    if transits and transit_cover_fraction > 0:
        covered = rng.sample(
            owned, k=min(len(owned), int(len(owned) * transit_cover_fraction)))
        owner_of = {}
        for spec in specs:
            for prefix in spec.prefixes:
                owner_of[prefix] = spec
        for prefix in covered:
            transit = rng.choice(transits)
            owner = owner_of[prefix]
            if transit.name == owner.name:
                continue
            path = synthesize_as_path(
                owner.asn, transit.asn, rng, min_length=3, mean_extra_hops=3.0)
            announcements.append((transit.name, prefix, path))

    return SyntheticIxp(participants=specs, announcements=announcements,
                        seed=seed)
