"""The two-stage incremental compilation path (Section 4.3.2).

BGP updates arrive in bursts separated by quiet periods, so the SDX
trades space for time:

* **Fast path** (:meth:`IncrementalEngine.handle_changes`): for every
  prefix whose best route changed, immediately allocate a fresh singleton
  VNH/VMAC (skipping the FEC computation entirely), recompile *only* the
  policy clauses that can touch that prefix, and push the resulting
  rules at a priority above the main table. Sub-second, but the extra
  rules are redundant with what an optimal grouping would produce.
* **Background re-optimisation**
  (:meth:`IncrementalEngine.background_recompile`): between bursts, run
  the full compiler, swap the main table, and reclaim every fast-path
  rule and ephemeral VNH.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from repro.bgp.decision import rank_routes
from repro.bgp.routeserver import BestRouteChange, RouteServer
from repro.core.compiler import (
    CompilationResult,
    SdxCompiler,
    clause_action,
    compile_guarded_clauses,
)
from repro.core.composition import (
    sequential_compose_indexed,
    stack_fallback,
    strip_drop_tail,
)
from repro.core.vnh import VnhAllocator
from repro.core.vswitch import VirtualTopology
from repro.dataplane.flowtable import FlowTable
from repro.net.addresses import IPv4Prefix
from repro.policy.classifier import Action, Classifier
from repro.policy.flowrules import to_flow_rules
from repro.policy.policies import Conjunction, Predicate, match
from repro.policy.predicates import match_any_value
from repro.southbound.diff import Delta, PRIORITY_CEILING
from repro.southbound.engine import SouthboundEngine
from repro.telemetry import Telemetry

#: Fast-path rules are installed above this priority so they always shadow
#: the main table (the southbound priority aligner keeps every main-table
#: rule strictly below this same value).
FAST_PATH_BASE = PRIORITY_CEILING


@dataclass
class FastPathResult:
    """What one fast-path invocation did."""

    prefixes: Tuple[IPv4Prefix, ...]
    rules_installed: int
    seconds: float


@dataclass(frozen=True)
class RecompilePressure:
    """How much space-for-time debt the fast path has accumulated.

    The runtime's :class:`~repro.runtime.scheduler.RecompilationScheduler`
    compares these against its watermarks to decide when the background
    re-optimisation is due.
    """

    fast_path_rules: int
    ephemeral_vnhs: int
    dirty: bool


class IncrementalEngine:
    """Owns the fast path and the background re-optimisation."""

    def __init__(self, topology: VirtualTopology, route_server: RouteServer,
                 allocator: VnhAllocator, compiler: SdxCompiler,
                 table: FlowTable,
                 southbound: Optional[SouthboundEngine] = None,
                 telemetry: Optional[Telemetry] = None):
        self.topology = topology
        self.route_server = route_server
        self.allocator = allocator
        self.compiler = compiler
        self.table = table
        self.southbound = (southbound if southbound is not None
                           else SouthboundEngine(table, telemetry=telemetry))
        self.telemetry = (telemetry if telemetry is not None
                          else self.southbound.telemetry)
        registry = self.telemetry.registry
        self._fastpath_counter = registry.counter(
            "sdx_fastpath_invocations_total", "Fast-path bursts handled")
        self._fastpath_rules_counter = registry.counter(
            "sdx_fastpath_rules_total", "Shadow rules installed by the fast path")
        self._fastpath_latency = registry.histogram(
            "sdx_fastpath_seconds", "Wall-clock seconds per fast-path burst")
        self._recompiles_counter = registry.counter(
            "sdx_recompile_total", "Background re-optimisations that swapped the table")
        self.last_delta: Optional[Delta] = None
        self._stage2: Optional[Classifier] = None
        self._fast_priority = FAST_PATH_BASE
        self.dirty = False
        self.fast_path_invocations = 0
        self.fast_path_rules_live = 0

    def install_full(self, result: CompilationResult,
                     before_deletes: Optional[Callable[[], None]] = None) -> None:
        """Swap in a fresh full compilation and drop every fast-path rule.

        Routed through the southbound engine: rules shared with the old
        table are untouched (counters survive), the rest arrive as a
        batched, priority-safe add/modify/delete delta, and every live
        fast-path shadow rule is reclaimed as a delete.

        ``before_deletes`` runs between the two flush phases — after the
        new rules are installed but before the superseded ones are
        removed. The controller re-advertises virtual next hops there, so
        packets tagged with old VMACs still ride the old rules while
        border routers flip to the new tags; only then is the old state
        reclaimed.
        """
        with self.telemetry.span("install_full",
                                 rules=len(result.classifier)):
            self.last_delta = self.southbound.sync_classifier(
                result.classifier, flush=False)
            self.southbound.flush_installs()
            if before_deletes is not None:
                before_deletes()
            self.southbound.flush()
            # Every rule tagged with a retired VMAC is gone: the allocator
            # may recycle the quarantined (VNH, VMAC) pairs from here on.
            self.allocator.finish_swap()
        self._stage2 = None  # rebuilt lazily from current inbound pipelines
        self._fast_priority = FAST_PATH_BASE
        self.fast_path_rules_live = 0
        self.dirty = False

    def _stage2_classifier(self) -> Classifier:
        """The (cached) inbound stage used to complete fast-path rules."""
        if self._stage2 is None:
            from repro.core.composition import stack_disjoint
            self._stage2 = stack_disjoint(self.compiler._inbound_parts(None))
        return self._stage2

    # ------------------------------------------------------------------
    # Fast path
    # ------------------------------------------------------------------

    def handle_changes(self, changes: Sequence[BestRouteChange]) -> FastPathResult:
        """React to a burst of best-route changes, prefix by prefix."""
        return self.handle_prefixes(
            tuple(dict.fromkeys(change.prefix for change in changes)))

    def handle_prefixes(self, touched: Sequence[IPv4Prefix]) -> FastPathResult:
        """Fast-path recompilation for prefixes touched by an update.

        Driven at prefix (not best-route) granularity because an
        announcement can change which next hops are *eligible* for a
        policy without changing anyone's best route.
        """
        started = time.perf_counter()
        prefixes = tuple(dict.fromkeys(touched))
        installed = 0
        with self.telemetry.span("fastpath",
                                 prefixes=len(prefixes)) as span:
            # Fresh Loc-RIB views for dynamic predicates, shared across the
            # prefixes of this invocation (only built if actually needed).
            views: dict = {}
            for prefix in prefixes:
                installed += self._fast_path_for_prefix(prefix, views)
            span.set_tag(rules=installed)
        self.dirty = True
        self.fast_path_invocations += 1
        self._fastpath_counter.inc()
        self._fastpath_rules_counter.inc(installed)
        elapsed = time.perf_counter() - started
        self._fastpath_latency.observe(elapsed)
        return FastPathResult(prefixes=prefixes, rules_installed=installed,
                              seconds=elapsed)

    def _resolved(self, participant, clause, views: dict):
        from repro.core.dynamic import contains_dynamic, resolve_dynamic
        if not contains_dynamic(clause.predicate):
            return clause.predicate
        view = views.get(participant.name)
        if view is None:
            view = self.route_server.view_for(participant.name)
            views[participant.name] = view
        return resolve_dynamic(clause.predicate, view)

    def _fast_path_for_prefix(self, prefix: IPv4Prefix,
                              views: Optional[dict] = None) -> int:
        """Allocate a fresh VNH for one prefix and install its rules."""
        if views is None:
            views = {}
        with self.telemetry.span("fastpath.prefix",
                                 prefix=str(prefix)) as span:
            self.allocator.drop_ephemeral(prefix)
            routes = self.route_server.all_routes_for(prefix)
            if not routes:
                # Fully withdrawn: routers drop the route themselves; the
                # stale rules die at the next background re-optimisation.
                return 0
            _vnh, vmac = self.allocator.assign_ephemeral(prefix)
            with self.telemetry.span("compile.fastpath"):
                vmac_filter = match(dstmac=vmac)

                default_layer = self._default_layer(prefix, vmac_filter, routes)
                pairs: List[Tuple[Predicate, Tuple[Action, ...]]] = []
                for participant in self.topology.participants():
                    if participant.is_remote or not participant.outbound_clauses():
                        continue
                    ingress = match_any_value("port", participant.switch_ports)
                    for clause in participant.outbound_clauses():
                        resolved = self._resolved(participant, clause, views)
                        if clause.drops:
                            pairs.append((
                                Conjunction((ingress, resolved, vmac_filter)), ()))
                            continue
                        target = str(clause.target)
                        if not self.route_server.is_reachable(
                                participant.name, prefix, via=target):
                            continue
                        predicate = Conjunction((ingress, resolved, vmac_filter))
                        pairs.append((predicate, clause_action(
                            clause, self.topology.vport(target))))
                policy_layer = compile_guarded_clauses(pairs, default_layer)

                stage1 = stack_fallback([policy_layer, default_layer])
                composed = sequential_compose_indexed(
                    stage1, self._stage2_classifier())
                rules = strip_drop_tail(composed)
            if not rules:
                return 0
            self._fast_priority += len(rules) + 1
            flow_rules = to_flow_rules(Classifier(rules), self._fast_priority)
            self.southbound.push_rules(flow_rules)
            self.fast_path_rules_live += len(flow_rules)
            span.set_tag(rules=len(flow_rules))
        return len(flow_rules)

    def _default_layer(self, prefix: IPv4Prefix, vmac_filter: Predicate,
                       routes) -> Classifier:
        """Default forwarding for the prefix's fresh singleton group."""
        ranking = [entry.learned_from for entry in rank_routes(routes)]
        common = ranking[0]
        shared_pairs: List[Tuple[Predicate, Tuple[Action, ...]]] = [
            (vmac_filter, (Action(port=self.topology.vport(common)),))]
        exception_pairs: List[Tuple[Predicate, Tuple[Action, ...]]] = []
        restricted = self.route_server.has_export_restrictions(common)
        for participant in self.topology.participants():
            if participant.is_remote:
                continue
            if participant.name != common and not restricted:
                continue
            best = self.route_server.best_route_for(participant.name, prefix)
            specific = None if best is None else best.learned_from
            if specific == common:
                continue
            guard = Conjunction((
                match_any_value("port", participant.switch_ports), vmac_filter))
            if specific is None:
                exception_pairs.append((guard, ()))
            else:
                exception_pairs.append(
                    (guard, (Action(port=self.topology.vport(specific)),)))
        return stack_fallback([
            compile_guarded_clauses(exception_pairs, None),
            compile_guarded_clauses(shared_pairs, None),
        ])

    def pressure(self) -> RecompilePressure:
        """The current fast-path debt (rules, ephemeral VNHs, dirtiness)."""
        return RecompilePressure(
            fast_path_rules=self.fast_path_rules_live,
            ephemeral_vnhs=len(self.allocator.ephemeral_prefixes()),
            dirty=self.dirty,
        )

    # ------------------------------------------------------------------
    # Background re-optimisation
    # ------------------------------------------------------------------

    def background_recompile(
            self,
            before_deletes: Optional[Callable[[], None]] = None,
    ) -> Optional[CompilationResult]:
        """Run the optimal compilation and swap it in, if anything changed.

        ``before_deletes`` is forwarded to :meth:`install_full` — it runs
        between the install and delete phases of the table swap.
        """
        if not self.dirty:
            return None
        with self.telemetry.span("recompile"):
            result = self.compiler.compile()
            self.install_full(result, before_deletes=before_deletes)
        self._recompiles_counter.inc()
        return result
