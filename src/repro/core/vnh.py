"""Virtual next-hop (VNH) and virtual MAC (VMAC) allocation.

Each forwarding equivalence class receives one VNH IP address from a
reserved pool and one VMAC (Section 4.2). The allocator:

* hands the VNH to the route server's next-hop rewriter, so participants'
  border routers learn it as the BGP next hop;
* binds VNH → VMAC in the SDX ARP responder, so those routers tag packets
  with the FEC's VMAC;
* resolves prefix → group / VMAC for the policy compiler.

The incremental fast path (Section 4.3.2) allocates *ephemeral* singleton
assignments for prefixes whose best route just changed; the background
re-optimisation releases them when the full FEC computation catches up.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.fec import PrefixGroup
from repro.dataplane.arp import ArpResponder
from repro.exceptions import CompilationError
from repro.net.addresses import IPv4Address, IPv4Prefix
from repro.net.mac import MacAddress, vmac_for_fec

#: Default pool the VNH addresses are drawn from.
DEFAULT_VNH_POOL = IPv4Prefix("172.16.0.0/16")


class VnhAllocator:
    """Allocates (VNH, VMAC) pairs and keeps the ARP responder in sync."""

    def __init__(self, pool: IPv4Prefix = DEFAULT_VNH_POOL,
                 responder: Optional[ArpResponder] = None):
        self.pool = pool
        self.responder = responder if responder is not None else ArpResponder(pool)
        self._next_offset = 1  # skip the network address
        self._next_tag = 1
        self._vnh_by_group: Dict[int, IPv4Address] = {}
        self._vmac_by_group: Dict[int, MacAddress] = {}
        self._group_of_prefix: Dict[IPv4Prefix, int] = {}
        self._groups: Dict[int, PrefixGroup] = {}
        self._ephemeral: Dict[IPv4Prefix, Tuple[IPv4Address, MacAddress]] = {}

    # ------------------------------------------------------------------
    # Steady-state assignment
    # ------------------------------------------------------------------

    def assign_groups(self, groups: Iterable[PrefixGroup]) -> None:
        """Replace the current assignment with one per given group.

        Clears every previous binding (including ephemerals) and restarts
        allocation from the bottom of the pool: this is the background
        re-optimisation installing a fresh optimal assignment. Because
        group computation is deterministic, identical SDX state yields
        identical VNH/VMAC assignments — border-router tags stay valid
        across no-op recompilations, and the pool never leaks however
        often the exchange recompiles. (The table swap and
        re-advertisement are atomic in the simulator, so reusing tag
        values across a state change cannot misdeliver in-flight
        packets.)
        """
        for vnh in list(self.responder.bindings()):
            self.responder.unbind(vnh)
        self._next_offset = 1
        self._next_tag = 1
        self._vnh_by_group.clear()
        self._vmac_by_group.clear()
        self._group_of_prefix.clear()
        self._groups.clear()
        self._ephemeral.clear()
        for group in groups:
            vnh, vmac = self._allocate()
            self._vnh_by_group[group.group_id] = vnh
            self._vmac_by_group[group.group_id] = vmac
            self._groups[group.group_id] = group
            for prefix in group.prefixes:
                self._group_of_prefix[prefix] = group.group_id
            self.responder.bind(vnh, vmac)

    def _allocate(self) -> Tuple[IPv4Address, MacAddress]:
        if self._next_offset >= self.pool.num_addresses - 1:
            raise CompilationError(
                f"VNH pool {self.pool} exhausted after "
                f"{self._next_offset} allocations")
        vnh = self.pool.first_address + self._next_offset
        self._next_offset += 1
        vmac = vmac_for_fec(self._next_tag)
        self._next_tag += 1
        return vnh, vmac

    # ------------------------------------------------------------------
    # Fast-path (ephemeral) assignment
    # ------------------------------------------------------------------

    def assign_ephemeral(self, prefix: IPv4Prefix) -> Tuple[IPv4Address, MacAddress]:
        """A fresh singleton (VNH, VMAC) for one just-updated prefix.

        The paper's fast path "bypasses the actual computation of the VNH
        entirely by simply assuming a new VNH is needed". The prefix's old
        group binding stays valid for other prefixes in the group.
        """
        vnh, vmac = self._allocate()
        self._ephemeral[prefix] = (vnh, vmac)
        self.responder.bind(vnh, vmac)
        return vnh, vmac

    def drop_ephemeral(self, prefix: IPv4Prefix) -> None:
        """Release the fast-path assignment for ``prefix`` (if any)."""
        assigned = self._ephemeral.pop(prefix, None)
        if assigned is not None:
            self.responder.unbind(assigned[0])

    def ephemeral_prefixes(self) -> Tuple[IPv4Prefix, ...]:
        """Prefixes currently carrying a fast-path assignment."""
        return tuple(sorted(self._ephemeral))

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------

    def group_of(self, prefix: IPv4Prefix) -> Optional[PrefixGroup]:
        """The group containing ``prefix``, if it is in any."""
        group_id = self._group_of_prefix.get(prefix)
        return None if group_id is None else self._groups[group_id]

    def vnh_for_group(self, group_id: int) -> IPv4Address:
        """The VNH of a group."""
        try:
            return self._vnh_by_group[group_id]
        except KeyError:
            raise CompilationError(f"no VNH assigned to group {group_id}") from None

    def vmac_for_group(self, group_id: int) -> MacAddress:
        """The VMAC of a group."""
        try:
            return self._vmac_by_group[group_id]
        except KeyError:
            raise CompilationError(f"no VMAC assigned to group {group_id}") from None

    def next_hop_for_prefix(self, prefix: IPv4Prefix) -> Optional[IPv4Address]:
        """The VNH to advertise for ``prefix``, if it is tagged.

        Ephemeral (fast-path) assignments override group assignments;
        untagged prefixes return ``None`` so the route server re-advertises
        the real next hop unchanged.
        """
        ephemeral = self._ephemeral.get(prefix)
        if ephemeral is not None:
            return ephemeral[0]
        group_id = self._group_of_prefix.get(prefix)
        if group_id is None:
            return None
        return self._vnh_by_group[group_id]

    def vmac_for_prefix(self, prefix: IPv4Prefix) -> Optional[MacAddress]:
        """The VMAC tag carried by packets destined into ``prefix``."""
        ephemeral = self._ephemeral.get(prefix)
        if ephemeral is not None:
            return ephemeral[1]
        group_id = self._group_of_prefix.get(prefix)
        if group_id is None:
            return None
        return self._vmac_by_group[group_id]

    def groups(self) -> Tuple[PrefixGroup, ...]:
        """Every assigned group, by id."""
        return tuple(self._groups[gid] for gid in sorted(self._groups))

    @property
    def assignments(self) -> int:
        """Total live (VNH, VMAC) pairs, groups plus ephemerals."""
        return len(self._vnh_by_group) + len(self._ephemeral)

    def __repr__(self) -> str:
        return (f"VnhAllocator(pool={self.pool}, {len(self._vnh_by_group)} groups, "
                f"{len(self._ephemeral)} ephemeral)")
