"""Tests for the prefix-set predicate used by BGP reachability filters."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import PolicyError
from repro.net.addresses import IPv4Prefix
from repro.net.packet import Packet
from repro.policy.policies import drop, fwd
from repro.policy.predicates import MatchAnyPrefix, match_any_prefix

from tests.policy.strategies import clustered_prefixes, packets


class TestMatchAnyPrefix:
    def test_holds_for_member_prefix(self):
        pred = match_any_prefix("dstip", [IPv4Prefix("10.0.0.0/8"), IPv4Prefix("192.168.0.0/16")])
        assert pred.holds(Packet(dstip="10.5.5.5"))
        assert pred.holds(Packet(dstip="192.168.1.1"))
        assert not pred.holds(Packet(dstip="172.16.0.1"))

    def test_missing_field_fails(self):
        pred = match_any_prefix("dstip", [IPv4Prefix("10.0.0.0/8")])
        assert not pred.holds(Packet(port=1))

    def test_empty_set_is_false(self):
        assert match_any_prefix("dstip", []) is drop

    def test_rejects_non_ip_field(self):
        with pytest.raises(PolicyError):
            MatchAnyPrefix("dstport", [IPv4Prefix("10.0.0.0/8")])

    def test_compiles_to_linear_rules(self):
        prefixes = [IPv4Prefix(network=i << 24, length=8) for i in range(10)]
        classifier = MatchAnyPrefix("dstip", prefixes).compile()
        assert len(classifier) == 11  # one per prefix + catch-all drop

    def test_deduplicates_prefixes(self):
        pred = MatchAnyPrefix("dstip", [IPv4Prefix("10.0.0.0/8")] * 3)
        assert len(pred.prefixes) == 1

    def test_nested_prefixes_sorted_longest_first(self):
        pred = MatchAnyPrefix("dstip", [IPv4Prefix("10.0.0.0/8"), IPv4Prefix("10.1.0.0/16")])
        assert pred.prefixes[0].length == 16

    def test_used_in_policy_composition(self):
        policy = match_any_prefix("dstip", [IPv4Prefix("10.0.0.0/8")]) >> fwd(2)
        packet = Packet(port=1, dstip="10.0.0.1")
        assert policy.eval(packet) == {packet.at_port(2)}
        assert policy.compile().eval(packet) == {packet.at_port(2)}

    @settings(max_examples=80, deadline=None)
    @given(st.lists(clustered_prefixes, max_size=6), packets())
    def test_compile_matches_eval_property(self, prefixes, packet):
        pred = match_any_prefix("dstip", prefixes)
        assert pred.compile().eval(packet) == pred.eval(packet)

    @settings(max_examples=80, deadline=None)
    @given(st.lists(clustered_prefixes, min_size=1, max_size=6), packets())
    def test_equivalent_to_disjunction_property(self, prefixes, packet):
        from repro.policy.policies import Disjunction, match
        pred = match_any_prefix("dstip", prefixes)
        naive = Disjunction(tuple(match(dstip=p) for p in prefixes))
        assert pred.holds(packet) == naive.holds(packet)
