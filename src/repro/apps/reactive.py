"""Counter-driven SDX applications closing the monitoring loop.

Two apps consume :class:`~repro.monitoring.events.MonitoringEvent`\\ s
(delivered through
:meth:`~repro.runtime.loop.ControlPlaneRuntime.add_monitoring_handler`)
and react by changing policies through the *normal* participant API —
one batched mutation plus a single ``notify_policy_change`` — so the
statics verifier and the runtime-equivalence oracle gate every reactive
decision exactly like a hand-written one:

* :class:`ReactiveInboundBalancer` — generalises the paper's fig5b
  inbound TE: the source-address space is carved into equal slices,
  each pinned to one of the participant's ports, and when the egress
  imbalance watch raises, the slices are re-packed (greedy LPT on
  measured per-slice rates) onto the ports.
* :class:`HeavyHitterSteering` — a Control-Exchange-Points-style
  offload: when a FEC's rate crosses the heavy-hitter bar, the sender
  drills down to the hottest steerable prefix inside that FEC (per-rule
  counters are finer than FECs) and steers it to an alternate next-hop
  participant, restoring the primary route when the hitter clears.
  BGP-consistency is checked first (the alternate must announce and
  export the prefix), mirroring the compiler's own join.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.controller import SdxController
from repro.core.sdxpolicy import ParticipantHandle
from repro.exceptions import PolicyError
from repro.monitoring.detect import EgressImbalanceWatch
from repro.monitoring.events import (
    EgressImbalance,
    HeavyHitter,
    MonitoringEvent,
)
from repro.monitoring.loop import DataPlaneMonitor
from repro.monitoring.stats import MonitorSample, fec_label
from repro.net.addresses import IPv4Prefix
from repro.policy.policies import Policy, fwd, match
from repro.workloads.scenarios import source_slices


class ReactiveInboundBalancer:
    """Re-splits inbound traffic across ports when egress load skews.

    The participant's inbound policy is always a complete partition of
    the source-address space into ``slice_count`` equal prefixes, each
    forwarded to one port. The initial assignment is round-robin; on an
    :class:`EgressImbalance` raising edge (and after ``cooldown_seconds``
    since the last action) the balancer reads measured per-slice rates
    from the monitor's last sample and re-packs slices onto ports with
    greedy longest-processing-time, then installs the new partition as
    one batched policy change.
    """

    def __init__(self, handle: ParticipantHandle,
                 monitor: DataPlaneMonitor, *,
                 slice_count: int = 8, cooldown_seconds: float = 3.0):
        participant = handle.participant
        if participant.is_remote or len(participant.switch_ports) < 2:
            raise PolicyError(
                f"reactive balancing needs two or more local ports; "
                f"{handle.name!r} does not qualify")
        self.handle = handle
        self.monitor = monitor
        self.slices = source_slices(slice_count)
        self.cooldown_seconds = cooldown_seconds
        self.ports = participant.switch_ports
        #: slice index -> port index (into ``self.ports``).
        self.assignment: Dict[int, int] = {
            index: index % len(self.ports) for index in range(len(self.slices))}
        self._installed: List[Policy] = []
        self._last_action: Optional[float] = None
        #: Completed re-splits (the smoke test's convergence signal).
        self.rebalances = 0

    # ------------------------------------------------------------------
    # Installation
    # ------------------------------------------------------------------

    def _policies_for(self, assignment: Dict[int, int]) -> List[Policy]:
        return [
            match(srcip=self.slices[slice_index]) >> fwd(self.ports[port_index])
            for slice_index, port_index in sorted(assignment.items())
        ]

    def _apply_assignment(self, assignment: Dict[int, int]) -> None:
        """Swap the installed partition for ``assignment`` in one change."""
        participant = self.handle.participant
        for policy in self._installed:
            participant.remove_inbound(policy)
        fresh = self._policies_for(assignment)
        for policy in fresh:
            participant.add_inbound(policy)
        self._installed = fresh
        self.assignment = dict(assignment)
        self.handle._controller.notify_policy_change(self.handle.name)

    def install(self) -> None:
        """Install the initial round-robin partition."""
        self._apply_assignment(self.assignment)

    def uninstall(self) -> None:
        """Remove every policy the balancer owns."""
        participant = self.handle.participant
        for policy in self._installed:
            participant.remove_inbound(policy)
        self._installed = []
        self.handle._controller.notify_policy_change(self.handle.name)

    def make_watch(self, *, high_ratio: float = 1.5,
                   low_ratio: float = 1.15,
                   min_total_mbps: float = 1.0) -> EgressImbalanceWatch:
        """An imbalance detector wired to this participant's ports."""
        return EgressImbalanceWatch(
            self.handle.name, self.ports, high_ratio=high_ratio,
            low_ratio=low_ratio, min_total_mbps=min_total_mbps)

    # ------------------------------------------------------------------
    # Measurement & reaction
    # ------------------------------------------------------------------

    def slice_rates(self, sample: MonitorSample) -> Dict[int, float]:
        """Measured per-slice EWMA rates from installed-rule counters.

        A compiled rule is attributed to a slice when it forwards to one
        of the participant's ports and its ``srcip`` constraint falls
        inside that slice — which is exactly the shape this balancer's
        own policies compile to (possibly split further per FEC; the
        pieces sum back here).
        """
        ports = set(self.ports)
        rates = {index: 0.0 for index in range(len(self.slices))}
        for view in sample.rules:
            if not any(port in ports for port, _participant in view.egress):
                continue
            srcip = view.rule.match.get("srcip")
            if not isinstance(srcip, IPv4Prefix):
                continue
            for index, block in enumerate(self.slices):
                if block.contains_prefix(srcip):
                    rates[index] += view.ewma_mbps
                    break
        return rates

    def _repack(self, rates: Dict[int, float]) -> Dict[int, int]:
        """Greedy LPT: heaviest slices first onto the lightest port."""
        loads = [0.0] * len(self.ports)
        assignment: Dict[int, int] = {}
        ranked = sorted(rates.items(), key=lambda item: (-item[1], item[0]))
        for slice_index, rate in ranked:
            port_index = min(range(len(loads)), key=lambda i: (loads[i], i))
            assignment[slice_index] = port_index
            loads[port_index] += rate
        return assignment

    def handle_event(self, event: MonitoringEvent,
                     controller: SdxController) -> None:
        """The runtime monitoring handler: react to imbalance edges."""
        if not isinstance(event, EgressImbalance):
            return
        if event.participant != self.handle.name or not event.raised:
            return
        if (self._last_action is not None
                and event.sampled_at - self._last_action < self.cooldown_seconds):
            return
        sample = self.monitor.last_sample
        if sample is None:
            return
        assignment = self._repack(self.slice_rates(sample))
        if assignment == self.assignment:
            return
        self._apply_assignment(assignment)
        self._last_action = event.sampled_at
        self.rebalances += 1


class HeavyHitterSteering:
    """Offloads heavy-hitter traffic to an alternate egress participant.

    The app owns a per-prefix steering table, Control-Exchange-Points
    style: :meth:`install` lays down one baseline outbound policy
    ``match(dstip=prefix) >> fwd(primary)`` per steerable prefix. All
    of those prefixes forward identically, so MDS folds them into
    **one** FEC — the alarm granularity — while the compiled rules keep
    their per-policy ``dstip`` constraints, which is the drill-down
    granularity. The reaction therefore has two steps, mirroring how a
    real deployment would use coarse counters plus targeted queries:

    1. a :class:`HeavyHitter` raising edge names a FEC; the app reads
       per-rule rates from the monitor's last sample and picks the
       hottest steerable prefix *inside* that FEC (declining if the
       alternate does not announce-and-export it, or offload capacity
       is exhausted);
    2. the prefix's policy is rewritten to forward via ``alternate``,
       and when the FEC's clearing edge arrives (offloaded traffic
       still counts toward its FEC, so the alarm holds exactly as long
       as the surge does) every offloaded prefix whose *current* FEC
       label matches is restored to the primary route. Matching by
       current label keeps the release correct even if recompilation
       regroups prefixes between the raise and the clear.
    """

    def __init__(self, handle: ParticipantHandle,
                 monitor: DataPlaneMonitor, *,
                 prefixes: Sequence[IPv4Prefix], primary: str,
                 alternate: str, max_offloads: int = 4):
        self.handle = handle
        self.monitor = monitor
        self.prefixes = tuple(prefixes)
        self.primary = primary
        self.alternate = alternate
        self.max_offloads = max_offloads
        #: prefix string -> the live policy routing it (primary or alt).
        self._routes: Dict[str, Policy] = {}
        self._offloaded: Dict[str, Policy] = {}
        #: FECs that raised but could not be steered (no route via the
        #: alternate, or capacity exhausted) — observability for tests.
        self.declined: List[str] = []

    def install(self) -> None:
        """Install the per-prefix baseline (everything via primary)."""
        participant = self.handle.participant
        for prefix in self.prefixes:
            policy = match(dstip=prefix) >> fwd(self.primary)
            participant.add_outbound(policy)
            self._routes[str(prefix)] = policy
        self.handle._controller.notify_policy_change(self.handle.name)

    def offloaded(self) -> Tuple[str, ...]:
        """Currently steered prefixes, sorted."""
        return tuple(sorted(self._offloaded))

    def handle_event(self, event: MonitoringEvent,
                     controller: SdxController) -> None:
        """The runtime monitoring handler: react to heavy-hitter edges."""
        if not isinstance(event, HeavyHitter):
            return
        if event.raised:
            self._offload(event, controller)
        else:
            self._release(event, controller)

    # ------------------------------------------------------------------
    # Drill-down & reaction
    # ------------------------------------------------------------------

    def prefix_rates(self, sample: MonitorSample) -> Dict[str, float]:
        """Per-steerable-prefix EWMA rates from installed-rule counters.

        Sums the rules whose ``dstip`` constraint equals one of the
        steerable prefixes — the shape this app's own policies compile
        to — giving visibility *finer* than the FEC aggregation when
        several prefixes share one group.
        """
        rates = {label: 0.0 for label in self._routes}
        for view in sample.rules:
            dstip = view.rule.match.get("dstip")
            if isinstance(dstip, IPv4Prefix) and str(dstip) in rates:
                rates[str(dstip)] += view.ewma_mbps
        return rates

    def _swap_route(self, label: str, policy: Policy) -> None:
        """Replace the live policy for ``label`` in one batched change."""
        participant = self.handle.participant
        participant.remove_outbound(self._routes[label])
        participant.add_outbound(policy)
        self._routes[label] = policy
        self.handle._controller.notify_policy_change(self.handle.name)

    def _offload(self, event: HeavyHitter,
                 controller: SdxController) -> None:
        # Drill down: steerable prefixes currently living in the raised
        # FEC, hottest first by their own rules' measured rates.
        sample = self.monitor.last_sample
        if sample is None:
            return
        rates = self.prefix_rates(sample)
        candidates = sorted(
            (label for label in self._routes
             if label not in self._offloaded
             and fec_label(controller, IPv4Prefix(label)) == event.fec),
            key=lambda label: -rates[label])
        if not candidates:
            return  # someone else's FEC
        if len(self._offloaded) >= self.max_offloads:
            self.declined.append(event.fec)
            return
        for label in candidates:
            prefix = IPv4Prefix(label)
            # BGP-consistency first: steering to a next hop that never
            # announced the prefix would be erased by the compiler's
            # join (and flagged by statics as a dead clause).
            if not controller.route_server.is_reachable(
                    self.handle.name, prefix, via=self.alternate):
                continue
            policy = match(dstip=prefix) >> fwd(self.alternate)
            self._swap_route(label, policy)
            self._offloaded[label] = policy
            return
        self.declined.append(event.fec)

    def _release(self, event: HeavyHitter,
                 controller: SdxController) -> None:
        for label in list(self._offloaded):
            if fec_label(controller, IPv4Prefix(label)) != event.fec:
                continue
            del self._offloaded[label]
            self._swap_route(
                label, match(dstip=IPv4Prefix(label)) >> fwd(self.primary))
