"""Dynamic RIB-tracking predicates (Section 3.2, "grouping traffic based
on BGP attributes").

The paper's example selects "all traffic sent by YouTube servers" via
``RIB.filter('as_path', '.*43515$')``. A snapshot of that filter goes
stale as routes churn; :class:`RibPrefixSet` is the *live* version: the
predicate re-resolves against the owner's current Loc-RIB at every
compilation, so the YouTube prefix set tracks BGP automatically::

    edge.add_outbound(
        rib_match("srcip", "as_path", r".*43515$") >> fwd("Transcoder"))

A dynamic predicate cannot be evaluated or compiled until the compiler
binds it to its owner's RIB view — using one outside an installed policy
raises :class:`~repro.exceptions.PolicyError`.
"""

from __future__ import annotations

from typing import Optional

from repro.bgp.rib import RibView
from repro.exceptions import PolicyError
from repro.net.packet import IP_FIELDS, Packet
from repro.policy.classifier import Classifier, ComposeStats
from repro.policy.policies import (
    Conjunction,
    Disjunction,
    Negation,
    Predicate,
)
from repro.policy.predicates import match_any_prefix


class RibPrefixSet(Predicate):
    """True when an IP field lies in a prefix set defined by a live RIB
    attribute filter (re-evaluated at each compilation)."""

    def __init__(self, field: str, attribute: str, pattern: str):
        if field not in IP_FIELDS:
            raise PolicyError(
                f"rib_match needs an IP field (srcip/dstip), got {field!r}")
        self.field = field
        self.attribute = attribute
        self.pattern = pattern

    def resolve(self, view: RibView) -> Predicate:
        """The concrete prefix-set predicate for the current RIB."""
        prefixes = view.filter(self.attribute, self.pattern)
        return match_any_prefix(self.field, prefixes)

    def holds(self, packet: Packet) -> bool:
        """Dynamic predicates cannot be evaluated unresolved."""
        raise PolicyError(
            f"rib_match({self.field!r}, {self.attribute!r}, "
            f"{self.pattern!r}) is unresolved; install it through the SDX "
            f"policy API so the compiler can bind it to a RIB view")

    def _compile(self, stats: Optional[ComposeStats]) -> Classifier:
        raise PolicyError(
            f"cannot compile unresolved rib_match({self.pattern!r})")

    def __repr__(self) -> str:
        return (f"rib_match({self.field}, {self.attribute} ~ "
                f"{self.pattern!r})")


def rib_match(field: str, attribute: str, pattern: str) -> RibPrefixSet:
    """A live RIB-attribute predicate, e.g. all YouTube-originated space::

        rib_match("srcip", "as_path", r".*43515$")
    """
    return RibPrefixSet(field, attribute, pattern)


def contains_dynamic(predicate: Predicate) -> bool:
    """True if a predicate tree contains any unresolved dynamic node."""
    if isinstance(predicate, RibPrefixSet):
        return True
    return any(contains_dynamic(part) for part in predicate.children()
               if isinstance(part, Predicate))


def resolve_dynamic(predicate: Predicate, view: RibView) -> Predicate:
    """A copy of ``predicate`` with every dynamic node resolved against
    ``view`` (returns the original object when nothing is dynamic)."""
    if isinstance(predicate, RibPrefixSet):
        return predicate.resolve(view)
    if isinstance(predicate, Conjunction):
        return Conjunction(tuple(
            resolve_dynamic(part, view) for part in predicate.parts))
    if isinstance(predicate, Disjunction):
        return Disjunction(tuple(
            resolve_dynamic(part, view) for part in predicate.parts))
    if isinstance(predicate, Negation):
        return Negation(resolve_dynamic(predicate.inner, view))
    return predicate
