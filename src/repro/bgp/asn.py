"""AS numbers, AS paths, and AS-path regular expressions.

The SDX lets participants group traffic by BGP attributes (Section 3.2),
e.g. ``RIB.filter('as_path', '.*43515$')`` to select every route whose
path ends at YouTube's AS. :class:`AsPathPattern` implements that matching
over the conventional space-separated textual rendering of the path.
"""

from __future__ import annotations

import re
from typing import Iterable, Iterator, Tuple

from repro.exceptions import BgpError

#: Largest 4-byte AS number.
MAX_ASN = 0xFFFFFFFF


def check_asn(asn: int) -> int:
    """Validate an AS number, returning it unchanged."""
    if isinstance(asn, bool) or not isinstance(asn, int):
        raise BgpError(f"AS number must be an int, got {asn!r}")
    if not 0 < asn <= MAX_ASN:
        raise BgpError(f"AS number out of range: {asn}")
    return asn


class AsPath:
    """An immutable BGP AS path (AS_SEQUENCE only).

    The leftmost AS is the most recent hop (the announcing neighbour); the
    rightmost is the originating AS.
    """

    __slots__ = ("_asns",)

    def __init__(self, asns: Iterable[int] = ()):
        self._asns: Tuple[int, ...] = tuple(check_asn(asn) for asn in asns)

    @property
    def asns(self) -> Tuple[int, ...]:
        """The AS numbers, most recent hop first."""
        return self._asns

    @property
    def origin_asn(self) -> int:
        """The AS that originated the route."""
        if not self._asns:
            raise BgpError("empty AS path has no origin")
        return self._asns[-1]

    @property
    def neighbour_asn(self) -> int:
        """The AS the route was most recently learned from."""
        if not self._asns:
            raise BgpError("empty AS path has no neighbour")
        return self._asns[0]

    def prepend(self, asn: int, count: int = 1) -> "AsPath":
        """A new path with ``asn`` prepended ``count`` times."""
        check_asn(asn)
        if count < 1:
            raise BgpError(f"prepend count must be positive, got {count}")
        return AsPath((asn,) * count + self._asns)

    def contains_loop(self, asn: int) -> bool:
        """True if ``asn`` already appears in the path (loop detection)."""
        return check_asn(asn) in self._asns

    @property
    def length(self) -> int:
        """Path length as used by the decision process (with repeats)."""
        return len(self._asns)

    def __len__(self) -> int:
        return len(self._asns)

    def __iter__(self) -> Iterator[int]:
        return iter(self._asns)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, AsPath):
            return self._asns == other._asns
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._asns)

    def __str__(self) -> str:
        return " ".join(str(asn) for asn in self._asns)

    def __repr__(self) -> str:
        return f"AsPath({str(self)!r})"


class AsPathPattern:
    """A compiled regular expression over textual AS paths.

    Anchoring conventions follow routing-policy practice: the pattern is
    searched against the space-separated path, so ``.*43515$`` matches any
    path originated by AS 43515 and ``^7018`` any path learned via AS 7018.
    """

    __slots__ = ("_pattern",)

    def __init__(self, pattern: str):
        try:
            self._pattern = re.compile(pattern)
        except re.error as exc:
            raise BgpError(f"bad AS-path pattern {pattern!r}: {exc}") from exc

    @property
    def pattern(self) -> str:
        """The original regular-expression text."""
        return self._pattern.pattern

    def matches(self, path: AsPath) -> bool:
        """True if the rendered path matches the pattern."""
        return self._pattern.search(str(path)) is not None

    def __repr__(self) -> str:
        return f"AsPathPattern({self.pattern!r})"
