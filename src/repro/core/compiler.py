"""The SDX policy compiler: policies + BGP state -> one flow table.

Runs the four syntactic transformations of Section 4.1 with the Section
4.2/4.3 scalability machinery:

1. **FEC computation** — group prefixes into forwarding equivalence
   classes (:mod:`repro.core.fec`) and assign VNH/VMAC pairs
   (:mod:`repro.core.vnh`).
2. **Default forwarding** — VMAC group clauses plus MAC-learning clauses
   (:mod:`repro.core.defaults`), layered *under* the policy rules.
3. **Per-participant outbound pipelines** — clause form with an ingress
   isolation guard and a VMAC (or prefix) eligibility guard per clause;
   traffic failing a clause's predicate or guard falls through to the
   default layer exactly (the paper's ``if_(matched, policy, default)``).
4. **Inbound pipelines** — per participant, memoized across compilations
   (the paper's caching of partial compilation results); remote
   participants' pipelines are composed through the physical ones.
5. **Composition** — disjoint stacking plus index-pruned sequential
   composition (:mod:`repro.core.composition`), or the naive cross
   product when ``optimized=False`` (ablation).

Flags:

``use_vnh=False``
    disables the whole tag architecture: eligibility guards match
    destination prefixes directly and no VNHs are advertised — the naive
    data plane whose rule explosion the MDS ablation quantifies.
``optimized=False``
    disables the control-plane composition optimisations (Section 4.3).
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.bgp.routeserver import RouteServer
from repro.core.clauses import Clause, clause_dstip
from repro.core.dynamic import contains_dynamic, resolve_dynamic
from repro.core.composition import (
    CompositionReport,
    compose_naive,
    compose_optimized,
    sequential_compose_indexed,
    stack_disjoint,
    stack_fallback,
)
from repro.core.defaults import (
    build_default_forwarding,
    build_participant_defaults,
)
from repro.core.fec import PrefixGroup, compute_prefix_groups
from repro.core.participant import Participant
from repro.core.vnh import VnhAllocator
from repro.core.vswitch import VirtualTopology
from repro.exceptions import CompilationError
from repro.policy.classifier import Action, Classifier, ComposeStats, Rule
from repro.policy.optimize import merge_drop_tail, remove_shadowed
from repro.policy.policies import Conjunction, Predicate, match, modify
from repro.policy.predicates import match_any_value
from repro.telemetry import Telemetry

#: Above this rule count the quadratic shadow-elimination pass is skipped.
REDUCTION_LIMIT = 4_000

#: Env var (milliseconds) that injects a synthetic sleep into every
#: compilation — the perf gate's self-test that a real compile-hot-path
#: regression is caught by `repro bench compare` (docs/PERFORMANCE.md).
SELFTEST_SLOWDOWN_ENV = "SDX_BENCH_SELFTEST_SLOWDOWN_MS"

#: A guard factory: (participant, target, optional dstip constraint) ->
#: eligibility predicate.
GuardFactory = Callable[..., Predicate]


def compile_clause_rules(predicate: Predicate, actions: Tuple[Action, ...],
                         fallback: Optional[Classifier],
                         stats: Optional[ComposeStats] = None) -> List[Rule]:
    """Rules for "``predicate`` → ``actions``, otherwise fall through".

    Compiles the predicate to a filter classifier and keeps only what the
    clause owns: identity rules become action rules, interior drop rules
    (negation masks) are expanded against ``fallback`` so masked traffic
    gets default treatment instead of vanishing, and the trailing
    "predicate didn't match" drops are removed so lower layers see the
    traffic. With ``fallback=None`` masks stay as drops.
    """
    filter_classifier = predicate.compile(stats)
    rules = filter_classifier.rules
    if not any(rule.is_identity for rule in rules):
        return []
    out: List[Rule] = []
    for index, rule in enumerate(rules):
        if rule.is_identity:
            out.append(Rule(rule.match, actions))
            continue
        if not rule.is_drop:
            raise CompilationError(
                f"clause predicate compiled to a non-filter rule: {rule!r}")
        # A drop rule here means "the predicate does not hold". It only
        # needs to stay if it *masks* a later identity rule (negation
        # produces these); plain fall-through drops are removed so lower
        # layers see the traffic.
        masks_later_match = any(
            later.is_identity and rule.match.intersect(later.match) is not None
            for later in rules[index + 1:])
        if not masks_later_match:
            continue
        if fallback is None:
            out.append(rule)
        else:
            for fallback_rule in fallback.rules:
                merged = rule.match.intersect(fallback_rule.match)
                if merged is not None:
                    out.append(Rule(merged, fallback_rule.actions))
    return out


def compile_guarded_clauses(pairs: Iterable[Tuple[Predicate, Tuple[Action, ...]]],
                            fallback: Optional[Classifier],
                            stats: Optional[ComposeStats] = None) -> Classifier:
    """A (partial) classifier stacking clause rules in priority order.

    Compiled bottom-up so that a clause's negation masks expand against
    everything *below it* — later clauses first, then ``fallback`` — and
    masked traffic gets exactly the treatment it would get if the clause
    did not exist. Mask expansion copies below-stack rules, so it is paid
    only by clauses that actually contain negation.
    """
    pair_list = list(pairs)
    below = fallback
    layers: List[List[Rule]] = []
    for predicate, actions in reversed(pair_list):
        rules = compile_clause_rules(predicate, actions, below, stats)
        layers.append(rules)
        if below is None:
            below = Classifier(rules)
        else:
            below = Classifier(tuple(rules) + below.rules)
    out: List[Rule] = []
    for rules in reversed(layers):
        out.extend(rules)
    return Classifier(out)


def clause_action(clause: Clause, port: Optional[int]) -> Tuple[Action, ...]:
    """The action tuple a clause installs (empty = drop)."""
    if clause.drops:
        return ()
    assignments = dict(clause.modifications)
    if port is not None:
        assignments["port"] = port
    return (Action(**assignments),)


@dataclass
class CompilationResult:
    """Everything one compiler run produced."""

    classifier: Classifier
    groups: Tuple[PrefixGroup, ...]
    report: CompositionReport
    timings: Dict[str, float] = field(default_factory=dict)

    @property
    def flow_rule_count(self) -> int:
        """Rules in the final table."""
        return len(self.classifier)

    @property
    def prefix_group_count(self) -> int:
        """Forwarding equivalence classes in this compilation."""
        return len(self.groups)

    @property
    def total_seconds(self) -> float:
        """Wall-clock time of the whole compilation."""
        return self.timings.get("total", 0.0)


class SdxCompiler:
    """Compiles the SDX's current policies and routes to a flow table."""

    def __init__(self, topology: VirtualTopology, route_server: RouteServer,
                 allocator: VnhAllocator, *, use_vnh: bool = True,
                 optimized: bool = True, reduce_table: bool = True,
                 telemetry: Optional[Telemetry] = None):
        self.topology = topology
        self.route_server = route_server
        self.allocator = allocator
        self.use_vnh = use_vnh
        self.optimized = optimized
        self.reduce_table = reduce_table
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        registry = self.telemetry.registry
        self._compiles_counter = registry.counter(
            "sdx_compile_total", "Full compilations run")
        self._compile_latency = registry.histogram(
            "sdx_compile_seconds", "Wall-clock seconds per full compilation")
        self._stage_latency = {
            stage: registry.histogram(
                "sdx_compile_stage_seconds",
                "Wall-clock seconds per compilation stage", stage=stage)
            for stage in ("fec", "vnh", "defaults", "outbound",
                          "inbound", "composition", "reduction")
        }
        self._rules_gauge = registry.gauge(
            "sdx_compile_rules", "Rules produced by the latest compilation")
        self._inbound_cache: Dict[str, Tuple[int, Classifier]] = {}
        # Lazily materialised Loc-RIB views for dynamic predicates,
        # valid for one compilation only.
        self._rib_views: Dict[str, object] = {}

    # ------------------------------------------------------------------
    # Top level
    # ------------------------------------------------------------------

    @contextmanager
    def _stage(self, key: str, timings: Dict[str, float]) -> Iterator[None]:
        """Time one pipeline stage into ``timings[key]`` under a child span."""
        with self.telemetry.span(f"compile.{key}"):
            step = time.perf_counter()
            try:
                yield
            finally:
                elapsed = time.perf_counter() - step
                timings[key] = elapsed
                histogram = self._stage_latency.get(key)
                if histogram is not None:
                    histogram.observe(elapsed)

    def compile(self) -> CompilationResult:
        """Run the full pipeline against current state."""
        with self.telemetry.span("compile") as span:
            result = self._compile(span)
        self._compiles_counter.inc()
        self._compile_latency.observe(result.timings["total"])
        self._rules_gauge.set(len(result.classifier))
        return result

    def _compile(self, span) -> CompilationResult:
        timings: Dict[str, float] = {}
        report = CompositionReport()
        stats = report.stats
        self._rib_views.clear()
        started = time.perf_counter()

        delay_ms = os.environ.get(SELFTEST_SLOWDOWN_ENV)
        if delay_ms:
            # Perf-gate self-test hook: `make perf-smoke` injects a
            # synthetic slowdown here to prove `repro bench compare`
            # actually fails on a compile-hot-path regression. Inside
            # the timed window on purpose — the sleep must show up in
            # ``timings["total"]`` exactly like a real slowdown would.
            time.sleep(float(delay_ms) / 1000.0)

        with self._stage("fec", timings):
            groups = self._compute_groups()

        with self._stage("vnh", timings):
            if self.use_vnh:
                self.allocator.assign_groups(groups)

        with self._stage("defaults", timings):
            defaults = build_default_forwarding(
                self.topology.participants(), groups, self.allocator,
                self.topology, self.route_server)
            defaults_classifier = stack_fallback([
                compile_guarded_clauses(
                    ((c.predicate, clause_action(c, c.target))
                     for c in defaults.exceptions),
                    None, stats),
                compile_guarded_clauses(
                    ((c.predicate, clause_action(c, c.target))
                     for c in defaults.shared),
                    None, stats),
            ])

        with self._stage("outbound", timings):
            guard_for = self._guard_factory(groups)
            policy_parts = [
                self._outbound_part(participant, guard_for, defaults_classifier, stats)
                for participant in self.topology.participants()
                if not participant.is_remote and participant.outbound_clauses()
            ]

        with self._stage("inbound", timings):
            inbound_parts = self._inbound_parts(stats)

        with self._stage("composition", timings):
            if self.optimized:
                stage1 = stack_fallback(
                    [stack_disjoint(policy_parts), defaults_classifier])
                stage2 = stack_disjoint(inbound_parts)
                classifier = compose_optimized(stage1, stage2, report)
            else:
                out_parts = self._naive_out_parts(groups, guard_for, stats)
                classifier = compose_naive(out_parts, inbound_parts, report)

        with self._stage("reduction", timings):
            classifier = merge_drop_tail(classifier)
            if self.reduce_table and len(classifier) <= REDUCTION_LIMIT:
                classifier = remove_shadowed(classifier)

        timings["total"] = time.perf_counter() - started
        span.set_tag(rules=len(classifier), groups=len(groups))
        return CompilationResult(
            classifier=classifier,
            groups=tuple(groups),
            report=report,
            timings=timings)

    # ------------------------------------------------------------------
    # Pipeline pieces
    # ------------------------------------------------------------------

    def _compute_groups(self) -> List[PrefixGroup]:
        if not self.use_vnh:
            return []
        return compute_prefix_groups(self.topology.participants(), self.route_server)

    def _guard_factory(self, groups: Sequence[PrefixGroup]) -> GuardFactory:
        if self.use_vnh:
            group_trie = self._group_trie(groups)

            def vnh_guard(participant: str, target: str,
                          dstip_limit=None) -> Predicate:
                eligible = [
                    group for group in groups
                    if (participant, target) in group.contexts
                ]
                if dstip_limit is not None:
                    allowed = self._groups_overlapping(
                        group_trie, groups, dstip_limit)
                    if allowed is not None:
                        eligible = [g for g in eligible if g.group_id in allowed]
                vmacs = [self.allocator.vmac_for_group(g.group_id)
                         for g in eligible]
                from repro.policy.predicates import match_any_value as mav
                return mav("dstmac", vmacs)

            return vnh_guard

        def naive_guard(participant: str, target: str,
                        dstip_limit=None) -> Predicate:
            from repro.policy.predicates import match_any_prefix
            prefixes = self.route_server.reachable_prefixes(
                participant, via=target)
            if dstip_limit is not None:
                prefixes = tuple(
                    p for p in prefixes if p.overlaps(dstip_limit))
            return match_any_prefix("dstip", prefixes)

        return naive_guard

    @staticmethod
    def _group_trie(groups: Sequence[PrefixGroup]):
        from repro.bgp.rib import PrefixTrie
        trie: "PrefixTrie[int]" = PrefixTrie()
        for group in groups:
            for prefix in group.prefixes:
                trie.insert(prefix, group.group_id)
        return trie

    @staticmethod
    def _groups_overlapping(group_trie, groups: Sequence[PrefixGroup],
                            dstip_limit) -> Optional[set]:
        """Group ids whose prefixes overlap ``dstip_limit``.

        The common case — the clause pins an exactly-announced prefix or
        a subnet of one — resolves with O(1) trie probes; a shorter
        constraint falls back to a covered-by scan.
        """
        allowed = set()
        exact = group_trie.exact(dstip_limit)
        if exact is not None:
            allowed.add(exact)
        for _prefix, group_id in group_trie.covering(dstip_limit):
            allowed.add(group_id)
        if dstip_limit.length < 32:
            for _prefix, group_id in group_trie.covered_by(dstip_limit):
                allowed.add(group_id)
        return allowed

    def _resolved_predicate(self, participant: Participant,
                            clause: Clause) -> Predicate:
        """The clause predicate with live RIB filters bound to the owner.

        The Loc-RIB view is materialised lazily, once per participant per
        compilation, and only when some clause actually uses a dynamic
        predicate.
        """
        if not contains_dynamic(clause.predicate):
            return clause.predicate
        view = self._rib_views.get(participant.name)
        if view is None:
            view = self.route_server.view_for(participant.name)
            self._rib_views[participant.name] = view
        return resolve_dynamic(clause.predicate, view)

    def _outbound_part(self, participant: Participant, guard_for: GuardFactory,
                       fallback: Classifier,
                       stats: Optional[ComposeStats]) -> Classifier:
        """One participant's outbound clauses as a partial classifier."""
        ingress = match_any_value("port", participant.switch_ports)
        pairs: List[Tuple[Predicate, Tuple[Action, ...]]] = []
        for clause in participant.outbound_clauses():
            resolved = self._resolved_predicate(participant, clause)
            if clause.drops:
                predicate = Conjunction((ingress, resolved))
                pairs.append((predicate, ()))
                continue
            target = str(clause.target)
            guard = guard_for(participant.name, target,
                              clause_dstip(resolved))
            predicate = Conjunction((ingress, resolved, guard))
            actions = clause_action(clause, self.topology.vport(target))
            pairs.append((predicate, actions))
        return compile_guarded_clauses(pairs, fallback, stats)

    def _naive_out_parts(self, groups: Sequence[PrefixGroup],
                         guard_for: GuardFactory,
                         stats: Optional[ComposeStats]) -> List[Classifier]:
        """Per-participant total outbound classifiers (ablation path).

        Each participant's policy part is stacked over its own literal
        ``defA`` default clauses, reproducing the paper's pre-optimisation
        construction with groups × participants default redundancy.
        """
        participants = self.topology.participants()
        parts: List[Classifier] = []
        for participant in participants:
            if participant.is_remote:
                continue
            own_defaults = build_participant_defaults(
                participant, participants, groups, self.allocator,
                self.topology, self.route_server)
            defaults_classifier = stack_fallback([compile_guarded_clauses(
                ((c.predicate, clause_action(c, c.target)) for c in own_defaults),
                None, stats)])
            layers: List[Classifier] = []
            if participant.outbound_clauses():
                layers.append(self._outbound_part(
                    participant, guard_for, defaults_classifier, stats))
            layers.append(defaults_classifier)
            parts.append(stack_fallback(layers))
        return parts

    def _inbound_parts(self, stats: Optional[ComposeStats]) -> List[Classifier]:
        physical: List[Classifier] = []
        remote_sources: List[Participant] = []
        for participant in self.topology.participants():
            if participant.is_remote:
                if participant.inbound_clauses():
                    remote_sources.append(participant)
                continue
            physical.append(self._inbound_pipeline(participant, stats))
        if not remote_sources:
            return physical
        physical_stage = stack_disjoint(physical)
        parts = list(physical)
        for participant in remote_sources:
            parts.append(self._remote_pipeline(participant, physical_stage, stats))
        return parts

    def _inbound_pipeline(self, participant: Participant,
                          stats: Optional[ComposeStats]) -> Classifier:
        """Build (or reuse) one physical participant's inbound pipeline.

        Memoized on the participant's policy generation: BGP updates never
        invalidate it, so recompilations after routing churn reuse it —
        the paper's "memoize all the intermediate compilation results".
        """
        dynamic = any(contains_dynamic(clause.predicate)
                      for clause in participant.inbound_clauses())
        cached = self._inbound_cache.get(participant.name)
        if (cached is not None and not dynamic
                and cached[0] == participant.policy_generation):
            return cached[1]
        vport_guard = match(port=self.topology.vport(participant.name))
        delivery = compile_guarded_clauses(
            [(vport_guard, (Action(port=participant.main_port),))], None, stats)
        pairs: List[Tuple[Predicate, Tuple[Action, ...]]] = []
        for clause in participant.inbound_clauses():
            resolved = self._resolved_predicate(participant, clause)
            predicate = Conjunction((vport_guard, resolved))
            if clause.drops:
                pairs.append((predicate, ()))
                continue
            port = clause.target if clause.target is not None else participant.main_port
            pairs.append((predicate, clause_action(clause, port)))
        delivery_total = stack_fallback([delivery])
        selected = stack_fallback(
            [compile_guarded_clauses(pairs, delivery_total, stats), delivery])
        rewrite = stack_fallback([compile_guarded_clauses(
            [(match(port=port.switch_port), (Action(dstmac=port.mac),))
             for port in participant.router.ports],
            None, stats)])
        pipeline = sequential_compose_indexed(selected, rewrite, stats)
        if not dynamic:
            # RIB-tracking inbound policies must re-resolve every
            # compilation, so they opt out of memoization.
            self._inbound_cache[participant.name] = (
                participant.policy_generation, pipeline)
        return pipeline

    def _remote_pipeline(self, participant: Participant,
                         physical_stage: Classifier,
                         stats: Optional[ComposeStats]) -> Classifier:
        """A remote participant's pipeline, piped through the physical one.

        Remote inbound clauses end in ``fwd("B")``; after resolving to B's
        virtual port the result is composed with the physical inbound
        stage so B's own inbound policies and MAC rewrite still apply.
        """
        vport_guard = match(port=self.topology.vport(participant.name))
        pairs: List[Tuple[Predicate, Tuple[Action, ...]]] = []
        for clause in participant.inbound_clauses():
            resolved = self._resolved_predicate(participant, clause)
            predicate = Conjunction((vport_guard, resolved))
            if clause.drops:
                pairs.append((predicate, ()))
                continue
            vport = self.topology.vport(str(clause.target))
            pairs.append((predicate, clause_action(clause, vport)))
        own = stack_fallback([compile_guarded_clauses(pairs, None, stats)])
        return sequential_compose_indexed(own, physical_stage, stats)

    def invalidate_inbound_cache(self, name: Optional[str] = None) -> None:
        """Drop memoized inbound pipelines (all, or one participant's)."""
        if name is None:
            self._inbound_cache.clear()
        else:
            self._inbound_cache.pop(name, None)
