"""Cross-validation of the dataplane verifier against the real table."""

from repro.core.vnh import vmac_for_fec
from repro.policy.classifier import Action
from repro.policy.flowrules import FlowRule
from repro.policy.headerspace import HeaderSpace
from repro.verification.dataplane import (
    _check_state,
    dataplane_crosscheck,
)
from repro.verification.scenario import generate_scenario


def small_scenario(seed=0, steps=4):
    return generate_scenario(seed, participants=3, prefixes=3, policies=3,
                             steps=steps)


class TestDataplaneCrosscheck:
    def test_generated_scenario_holds(self):
        assert dataplane_crosscheck(small_scenario()) is None

    def test_churning_scenario_holds(self):
        assert dataplane_crosscheck(small_scenario(seed=5, steps=8)) is None

    def test_stale_incremental_state_is_caught(self):
        scenario = small_scenario(steps=0)
        controller = scenario.build_controller(
            dataplane_statics_mode="warn")
        verifier = controller.dataplane_verifier
        # Tamper with the table behind the verifier's back: the cached
        # state no longer matches a fresh analysis.
        controller.table.install(FlowRule(
            900_000, HeaderSpace(dstport=60_000),
            (Action(dstmac=vmac_for_fec(987_654), port=1),)))
        failure = _check_state(controller, verifier, step=0)
        assert failure is not None
        assert failure.kind == "dataplane-incremental-divergence"

    def test_verified_state_passes_every_contract(self):
        scenario = small_scenario(steps=0)
        controller = scenario.build_controller(
            dataplane_statics_mode="warn")
        assert _check_state(controller, controller.dataplane_verifier,
                            step=0) is None
