"""Structured stdlib logging for the SDX pipeline.

Every instrumented module logs through ``logging.getLogger("repro.<...>")``
with messages built from :func:`kv` so each line is a flat, greppable
sequence of ``key=value`` pairs. :func:`configure_logging` is the one-call
configurator::

    from repro.telemetry.log import configure_logging
    configure_logging("DEBUG")

    # -> ts=2014-08-17T12:00:00 level=INFO logger=repro.core.controller \
    #    msg="recompile rules=412 groups=87 seconds=0.031"

Nothing here installs handlers at import time: the library stays silent
(stdlib ``NullHandler`` convention) until an application opts in.
"""

from __future__ import annotations

import logging
import sys
from typing import IO, Optional

#: The root logger every repro module logs beneath.
ROOT_LOGGER = "repro"


def kv(**fields: object) -> str:
    """``fields`` rendered as space-separated ``key=value`` pairs.

    Values containing whitespace are quoted so lines stay splittable.
    """
    parts = []
    for key, value in fields.items():
        text = f"{value:.6g}" if isinstance(value, float) else str(value)
        if " " in text:
            text = f'"{text}"'
        parts.append(f"{key}={text}")
    return " ".join(parts)


class KeyValueFormatter(logging.Formatter):
    """Formats records as ``ts=... level=... logger=... msg="..."``."""

    def format(self, record: logging.LogRecord) -> str:
        """Render one record as a structured key=value line."""
        timestamp = self.formatTime(record, "%Y-%m-%dT%H:%M:%S")
        message = record.getMessage()
        line = (f"ts={timestamp} level={record.levelname} "
                f"logger={record.name} msg=\"{message}\"")
        if record.exc_info:
            line += "\n" + self.formatException(record.exc_info)
        return line


def configure_logging(level: str = "INFO",
                      stream: Optional[IO[str]] = None) -> logging.Logger:
    """Attach a structured handler to the ``repro`` logger tree.

    Idempotent: a previously installed handler is replaced, not
    duplicated. Returns the configured root logger; pass ``stream`` to
    capture output (tests) instead of writing to stderr.
    """
    logger = logging.getLogger(ROOT_LOGGER)
    logger.setLevel(level.upper() if isinstance(level, str) else level)
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(KeyValueFormatter())
    handler.name = "repro-telemetry"
    for existing in list(logger.handlers):
        if existing.name == handler.name:
            logger.removeHandler(existing)
    logger.addHandler(handler)
    logger.propagate = False
    return logger
