"""Property tests for the BgpSession state machine.

Two properties the churn suite leans on, pinned by hypothesis over
random operation sequences:

1. *Legal sequences never corrupt the bookkeeping* — after any legal
   interleaving of open/establish/reset/fail/receive/send, the session's
   logs, counters, and announced-prefix set match a trivial reference
   model replayed alongside it.
2. *Every path to down implies full withdrawal* — whichever sequence of
   operations precedes a teardown (reset or fail), the implied
   withdrawal delivered to ``on_down`` names exactly the prefixes the
   peer had announced at that instant, and the session's announced set
   is empty afterwards.

Illegal transitions must raise ``SessionStateError`` and leave every
observable unchanged.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bgp.asn import AsPath
from repro.bgp.attributes import RouteAttributes
from repro.bgp.messages import Update
from repro.bgp.session import BgpSession
from repro.exceptions import SessionStateError
from repro.net.addresses import IPv4Address, IPv4Prefix

PEER = "A"
PREFIXES = [IPv4Prefix(f"10.{index}.0.0/16") for index in range(8)]

#: Operations and the states they are legal in (the reference model).
LEGAL = {
    "open": ("idle", "down"),
    "establish": ("open_sent",),
    "reset": ("open_sent", "established"),
    "fail": ("open_sent", "established"),
    "announce": ("established",),
    "withdraw": ("established",),
    "send": ("established",),
}

operations = st.lists(
    st.tuples(st.sampled_from(sorted(LEGAL)), st.integers(0, 7)),
    max_size=40)


def announcement(index):
    """An announcement of the ``index``-th pool prefix from the peer."""
    return Update.announce(PEER, PREFIXES[index], RouteAttributes(
        next_hop=IPv4Address("172.0.0.9"),
        as_path=AsPath((64999, 64000 + index))))


class Model:
    """The reference model the real session is replayed against."""

    def __init__(self):
        self.state = "idle"
        self.announced = set()
        self.received = []
        self.sent = []
        self.totals = {"received": 0, "sent": 0, "resets": 0, "failures": 0}

    def legal(self, op):
        return self.state in LEGAL[op]

    def apply(self, op, index):
        if op == "open":
            self.state = "open_sent"
        elif op == "establish":
            self.state = "established"
        elif op in ("reset", "fail"):
            self.state = "idle" if op == "reset" else "down"
            self.totals["resets" if op == "reset" else "failures"] += 1
            self.announced.clear()
            self.received.clear()
            self.sent.clear()
        elif op == "announce":
            update = announcement(index)
            self.received.append(update)
            self.announced.add(PREFIXES[index])
            self.totals["received"] += 1
        elif op == "withdraw":
            update = Update.withdraw(PEER, PREFIXES[index])
            self.received.append(update)
            self.announced.discard(PREFIXES[index])
            self.totals["received"] += 1
        elif op == "send":
            update = Update.withdraw("route-server", PREFIXES[index])
            self.sent.append(update)
            self.totals["sent"] += 1


def drive(op, index, session):
    """Perform ``op`` against the real session."""
    if op == "announce":
        session.receive(announcement(index))
    elif op == "withdraw":
        session.receive(Update.withdraw(PEER, PREFIXES[index]))
    elif op == "send":
        session.send(Update.withdraw("route-server", PREFIXES[index]))
    else:
        getattr(session, op)()


def assert_matches(session, model):
    assert session.state.value == model.state
    assert session.announced == frozenset(model.announced)
    assert session.received_log == model.received
    assert session.sent_log == model.sent
    assert session.updates_received == model.totals["received"]
    assert session.updates_sent == model.totals["sent"]
    assert session.resets == model.totals["resets"]
    assert session.failures == model.totals["failures"]


def snapshot(session):
    return (session.state, tuple(session.received_log),
            tuple(session.sent_log), session.announced,
            session.updates_received, session.updates_sent,
            session.resets, session.failures)


@settings(max_examples=150, deadline=None)
@given(operations)
def test_legal_sequences_never_corrupt_bookkeeping(ops):
    session = BgpSession(PEER, 65001)
    model = Model()
    for op, index in ops:
        if not model.legal(op):
            continue
        drive(op, index, session)
        model.apply(op, index)
        assert_matches(session, model)


@settings(max_examples=150, deadline=None)
@given(operations)
def test_illegal_transitions_raise_and_change_nothing(ops):
    session = BgpSession(PEER, 65001)
    model = Model()
    for op, index in ops:
        if model.legal(op):
            drive(op, index, session)
            model.apply(op, index)
            continue
        before = snapshot(session)
        try:
            drive(op, index, session)
        except SessionStateError:
            assert snapshot(session) == before
        else:  # pragma: no cover - the guard property itself
            raise AssertionError(
                f"{op} in state {model.state} did not raise")
    assert_matches(session, model)


@settings(max_examples=150, deadline=None)
@given(operations, st.sampled_from(["reset", "fail"]))
def test_every_path_to_teardown_implies_full_withdrawal(ops, final):
    downs = []
    session = BgpSession(
        PEER, 65001,
        on_down=lambda update, verb: downs.append((update, verb)))
    model = Model()
    expected = []
    for op, index in ops + [(final, 0)]:
        if not model.legal(op):
            continue
        if op in ("reset", "fail"):
            expected.append((frozenset(model.announced), op))
        drive(op, index, session)
        model.apply(op, index)
        if op in ("reset", "fail"):
            assert session.announced == frozenset()
    assert len(downs) == len(expected)
    for (update, verb), (announced, op) in zip(downs, expected):
        assert verb == op
        assert update.sender == PEER
        assert not update.announcements
        assert {w.prefix for w in update.withdrawals} == announced
        # Deterministic rendering: withdrawals arrive sorted.
        assert [w.prefix for w in update.withdrawals] == sorted(announced)
