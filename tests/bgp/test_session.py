"""Tests for the BGP session state machine."""

import pytest

from repro.bgp.messages import Update
from repro.bgp.session import BgpSession, SessionState
from repro.exceptions import SessionStateError
from repro.net.addresses import IPv4Prefix


class TestLifecycle:
    def test_starts_idle(self):
        session = BgpSession("A", 65001)
        assert session.state is SessionState.IDLE
        assert not session.is_established

    def test_open_then_establish(self):
        session = BgpSession("A", 65001)
        session.open()
        assert session.state is SessionState.OPEN_SENT
        session.establish()
        assert session.is_established

    def test_connect_shortcut(self):
        session = BgpSession("A", 65001)
        session.connect()
        assert session.is_established

    def test_double_open_rejected(self):
        session = BgpSession("A", 65001)
        session.open()
        with pytest.raises(SessionStateError):
            session.open()

    def test_establish_from_idle_rejected(self):
        with pytest.raises(SessionStateError):
            BgpSession("A", 65001).establish()

    def test_reset_counts_and_returns_to_idle(self):
        session = BgpSession("A", 65001)
        session.connect()
        session.reset()
        assert session.state is SessionState.IDLE
        assert session.resets == 1
        session.connect()
        assert session.is_established


class TestUpdateFlow:
    def test_receive_invokes_callback(self):
        seen = []
        session = BgpSession("A", 65001, on_update=seen.append)
        session.connect()
        update = Update.withdraw("A", IPv4Prefix("10.0.0.0/8"))
        session.receive(update)
        assert seen == [update]
        assert session.updates_received == 1

    def test_receive_while_idle_rejected(self):
        session = BgpSession("A", 65001)
        with pytest.raises(SessionStateError):
            session.receive(Update.withdraw("A", IPv4Prefix("10.0.0.0/8")))

    def test_receive_foreign_sender_rejected(self):
        session = BgpSession("A", 65001)
        session.connect()
        with pytest.raises(SessionStateError):
            session.receive(Update.withdraw("B", IPv4Prefix("10.0.0.0/8")))

    def test_send_logs_updates(self):
        session = BgpSession("A", 65001)
        session.connect()
        update = Update.withdraw("route-server", IPv4Prefix("10.0.0.0/8"))
        session.send(update)
        assert session.sent_log == [update]
        assert session.updates_sent == 1

    def test_send_while_idle_rejected(self):
        with pytest.raises(SessionStateError):
            BgpSession("A", 65001).send(
                Update.withdraw("route-server", IPv4Prefix("10.0.0.0/8")))
