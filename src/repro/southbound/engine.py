"""The southbound engine: delta computation, batching, two-phase apply.

:class:`SouthboundEngine` owns the path from "here is the table the
compiler wants" to "here are the FlowMod batches the switch executes".
Deltas are computed against the *live* table, coalesced per rule key in
an :class:`~repro.southbound.queue.UpdateQueue`, ordered by
:func:`schedule_two_phase`, and applied in bounded batches with per-batch
timing.

Priority-safe ordering
----------------------

:func:`schedule_two_phase` emits adds and modifies first, jointly sorted
by **descending** priority, then deletes sorted by **ascending**
priority. That order makes every prefix of the mod sequence safe: at any
intermediate table state, each packet is forwarded exactly as the old
table or the new table would — never into a transient hole or onto a
stale mid-priority rule. Sketch of why:

* *Phase 1, descending:* when a processed (added/modified) rule wins a
  lookup, every new-table rule above it is already present in new state
  and did not match, so it is the new table's winner. When an untouched
  rule wins, every old rule is still present (deletes have not started),
  so it is the old table's winner.
* *Phase 2, ascending:* the table is the new rules plus a
  highest-priorities-last shrinking remnant of doomed old rules. If a
  remnant rule wins, nothing above it matched on either side, so it is
  the old winner; otherwise the winner is the new winner.

Deleting in the opposite order would expose mid-priority stale rules:
with the old top rule gone but a lower stale rule still installed, a
packet could be claimed by a rule that is neither table's winner — the
misrouting this engine exists to prevent.
"""

from __future__ import annotations

import contextlib
import logging
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterable, List, Optional, Sequence

from repro.policy.classifier import Classifier
from repro.policy.flowrules import FlowRule
from repro.southbound.diff import (
    Delta,
    FlowMod,
    FlowModOp,
    diff_classifier,
    rule_key,
)
from repro.southbound.queue import UpdateQueue
from repro.southbound.stats import SouthboundStats
from repro.telemetry import Telemetry
from repro.telemetry.log import kv

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.dataplane.flowtable import FlowTable

logger = logging.getLogger("repro.southbound.engine")


@dataclass(frozen=True)
class SouthboundConfig:
    """Tunables for the southbound engine.

    ``max_batch_size`` bounds FlowMods per batch (per apply-latency
    sample); ``max_pending`` is the queue's backpressure threshold;
    ``auto_flush`` makes every submission flush synchronously (the
    simulation default — rules are visible as soon as the submitting call
    returns). Set it false to coalesce across several submissions and
    flush explicitly.
    """

    max_batch_size: int = 128
    max_pending: int = 4096
    auto_flush: bool = True


def schedule_two_phase(mods: Iterable[FlowMod]) -> List[FlowMod]:
    """Order ``mods`` so every prefix of the sequence is safe to expose.

    Phase one: adds and modifies, highest priority first. Phase two:
    deletes, lowest priority first. See the module docstring for the
    safety argument.
    """
    phase_one = sorted(
        (mod for mod in mods if mod.op is not FlowModOp.DELETE),
        key=lambda mod: -mod.priority)
    phase_two = sorted(
        (mod for mod in mods if mod.op is FlowModOp.DELETE),
        key=lambda mod: mod.priority)
    return phase_one + phase_two


#: Observer signature: called with each applied batch, in order.
#:
#: Observers may additionally implement any of three optional hooks the
#: engine dispatches by duck typing around each apply window (one
#: :meth:`SouthboundEngine._apply` call): ``on_apply_begin()`` before the
#: first batch, ``on_batch_pending(batch)`` immediately *before* each
#: batch reaches the table (the dataplane verifier records inverse mods
#: there for strict-mode rollback), and ``on_apply_end()`` after the last
#: batch — where a verifying observer may raise to reject the window.
BatchObserver = Callable[[Sequence[FlowMod]], None]


class SouthboundEngine:
    """Turns desired rule tables into batched, priority-safe FlowMods."""

    def __init__(self, table: "FlowTable",
                 config: Optional[SouthboundConfig] = None,
                 stats: Optional[SouthboundStats] = None,
                 telemetry: Optional[Telemetry] = None):
        self.table = table
        self.config = config or SouthboundConfig()
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        self.stats = (stats if stats is not None
                      else SouthboundStats(registry=self.telemetry.registry))
        self.queue = UpdateQueue(max_pending=self.config.max_pending)
        self._observers: List[BatchObserver] = []
        self._defer_depth = 0

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------

    def sync_classifier(self, classifier: Classifier,
                        base_priority: int = 0,
                        flush: Optional[bool] = None) -> Delta:
        """Reconcile the live table with a compiled classifier.

        Computes the minimal delta against what is currently installed
        (including any fast-path shadow rules, which the delta reclaims as
        deletes), enqueues it, and — under ``auto_flush`` — applies it.
        Returns the delta for the caller's accounting.

        With ``auto_flush`` off (or ``flush=False``), the diff is taken
        against the *projected* table — live rules plus pending mods — so
        back-to-back syncs queued inside one flush window stay correct
        while coalescing. ``flush`` overrides the configured auto-flush
        for this call: the caller intends to stage the delta and drive
        the two flush phases itself.
        """
        with self.telemetry.span("southbound.sync",
                                 rules=len(classifier)) as span:
            with self.telemetry.span("southbound.diff"):
                delta = diff_classifier(self._projected_rules(), classifier,
                                        base_priority)
            span.set_tag(mods=delta.total, unchanged=delta.unchanged)
            self.stats.syncs += 1
            self.stats.rules_unchanged += delta.unchanged
            self.queue.enqueue_many(delta.mods)
        if flush is False:
            self.stats.mods_coalesced = self.queue.coalesced
        else:
            self._after_submit()
        return delta

    def push_rules(self, rules: Iterable[FlowRule]) -> int:
        """Submit pre-built rules (the fast path's shadow rules) as adds."""
        count = 0
        with self.telemetry.span("southbound.push") as span:
            for rule in rules:
                self.queue.enqueue(FlowMod.add(rule))
                count += 1
            span.set_tag(rules=count)
            self._after_submit()
        return count

    def retract_rules(self, rules: Iterable[FlowRule]) -> int:
        """Submit deletes for previously pushed rules."""
        count = 0
        for rule in rules:
            self.queue.enqueue(FlowMod.delete(rule))
            count += 1
        self._after_submit()
        return count

    def _projected_rules(self) -> List[FlowRule]:
        """The table as it will look once pending mods are flushed."""
        if not len(self.queue):
            return list(self.table.rules)
        keyed = {}
        for rule in self.table.rules:
            keyed.setdefault(rule_key(rule), rule)
        for mod in self.queue.pending_mods():
            if mod.op is FlowModOp.DELETE:
                keyed.pop(mod.key, None)
            else:
                keyed[mod.key] = mod.rule
        return list(keyed.values())

    def _after_submit(self) -> None:
        self.stats.mods_coalesced = self.queue.coalesced
        if self.queue.needs_flush:
            self.stats.backpressure_flushes += 1
            self.flush()
        elif self.config.auto_flush and not self._defer_depth:
            self.flush()

    @contextlib.contextmanager
    def deferred(self):
        """Hold auto-flush open so a burst coalesces into one flush.

        The runtime processes each event batch inside this window: the
        per-event FlowMods pile up in the queue (coalescing per rule
        key — an add then delete of the same fast-path rule annihilates)
        and are applied once, on exit. Nests safely; the queue's
        ``needs_flush`` backpressure still forces a flush mid-window.
        Explicit :meth:`flush`/:meth:`flush_installs` calls (e.g. a full
        table swap inside the window) also proceed normally.
        """
        self._defer_depth += 1
        try:
            yield self
        finally:
            self._defer_depth -= 1
            if not self._defer_depth and self.config.auto_flush:
                self.flush()

    # ------------------------------------------------------------------
    # Flushing
    # ------------------------------------------------------------------

    @property
    def pending(self) -> int:
        """FlowMods queued but not yet applied."""
        return len(self.queue)

    def add_observer(self, observer: BatchObserver) -> None:
        """Register a callback invoked after each batch is applied."""
        self._observers.append(observer)

    def remove_observer(self, observer: BatchObserver) -> None:
        """Unregister a batch observer; unknown observers are ignored.

        Transient observers (the verification swap monitor, golden-batch
        capture in tests) attach around one flush window and must detach
        without disturbing longer-lived observers.
        """
        with contextlib.suppress(ValueError):
            self._observers.remove(observer)

    def flush_installs(self) -> int:
        """Apply pending adds and modifies now, leaving deletes queued.

        The first half of a consistency-preserving table swap: after this
        returns, both the old and the new rules are installed, so the
        caller can repoint upstream state (the controller re-advertises
        virtual next hops here) before :meth:`flush` reclaims the old
        rules.
        """
        mods = self.queue.drain()
        installs = [mod for mod in mods if mod.op is not FlowModOp.DELETE]
        deletes = [mod for mod in mods if mod.op is FlowModOp.DELETE]
        applied = self._apply(schedule_two_phase(installs))
        self.queue.enqueue_many(deletes)
        # Re-queueing deletes is bookkeeping, not new traffic: undo the
        # enqueue/coalesce accounting the queue just recorded for them.
        self.queue.enqueued -= len(deletes)
        return applied

    def flush(self) -> int:
        """Drain the queue and apply everything; returns mods applied."""
        return self._apply(schedule_two_phase(self.queue.drain()))

    def _dispatch_hook(self, name: str, *args) -> None:
        """Invoke an optional observer hook on every observer that has it."""
        for observer in self._observers:
            hook = getattr(observer, name, None)
            if hook is not None:
                hook(*args)

    def _apply(self, ordered: Sequence[FlowMod]) -> int:
        if not ordered:
            return 0
        size = self.config.max_batch_size
        self._dispatch_hook("on_apply_begin")
        with self.telemetry.span("southbound.apply", mods=len(ordered)):
            for start in range(0, len(ordered), size):
                batch = ordered[start:start + size]
                self._dispatch_hook("on_batch_pending", batch)
                began = time.perf_counter()
                with self.telemetry.span("flowtable.apply", mods=len(batch)):
                    self.table.apply_delta(batch)
                self.stats.record_batch(len(batch),
                                        time.perf_counter() - began)
                for mod in batch:
                    if mod.op is FlowModOp.ADD:
                        self.stats.adds_sent += 1
                    elif mod.op is FlowModOp.MODIFY:
                        self.stats.modifies_sent += 1
                    else:
                        self.stats.deletes_sent += 1
                for observer in self._observers:
                    observer(batch)
        # After the spans close so a strict verifier's rejection (raised
        # from the hook) does not leave a span open.
        self._dispatch_hook("on_apply_end")
        if logger.isEnabledFor(logging.DEBUG):
            logger.debug("apply %s", kv(mods=len(ordered),
                                        table_rules=len(self.table)))
        return len(ordered)

    def __repr__(self) -> str:
        return (f"SouthboundEngine({self.pending} pending, "
                f"{self.stats.mods_sent} sent)")
