"""The budgeted fuzzing loop behind ``python -m repro fuzz``.

Each iteration derives an independent scenario seed from the session
seed, generates a scenario + corpus, runs the differential oracle, and —
on failure — shrinks the trace and saves a replayable artifact. The loop
stops at the configured scenario count or when the wall-clock budget is
spent, whichever comes first. All activity is recorded into the
telemetry registry (``sdx_fuzz_*`` counters), so a fuzzing session shows
up in the same ``repro stats`` snapshot as the pipeline it exercises.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional

from repro.telemetry import Telemetry, get_telemetry
from repro.verification.artifact import FailureArtifact
from repro.verification.corpus import generate_corpus
from repro.verification.oracle import DifferentialOracle, OracleFailure
from repro.verification.scenario import Scenario, generate_scenario
from repro.verification.shrink import shrink_scenario
from repro.workloads.seeding import derive_seed


@dataclass(frozen=True)
class FuzzConfig:
    """Tunables for one fuzzing session.

    ``time_budget_seconds`` bounds wall-clock time (checked between
    scenarios and before shrinking); ``artifact_dir`` enables failure
    artifacts; ``shrink`` can be disabled for quick triage runs.
    ``runtime`` additionally replays each passing scenario through the
    deterministic control-plane runtime and asserts equivalence with
    the inline execution (see
    :func:`repro.verification.runtime.check_runtime_equivalence`).
    ``statics`` cross-validates the static policy verifier's dead-clause
    and route-less-forward verdicts against the reference interpreter on
    every scenario (see
    :func:`repro.verification.statics.statics_crosscheck`).
    ``dataplane`` cross-validates the incremental dataplane verifier on
    every scenario: incremental-vs-full byte identity, the
    SDX010-SDX012 witness contracts, and the no-false-alarm and
    covering contracts (see
    :func:`repro.verification.dataplane.dataplane_crosscheck`).
    ``federation`` switches the session to multi-exchange scenarios:
    each iteration generates a federated scenario over ``exchanges``
    exchanges and runs
    :func:`repro.verification.federation.federation_crosscheck` (the
    SDX008/SDX009 witness contracts plus the real-vs-reference federated
    walk comparison) instead of the single-exchange oracle. Federated
    failures are saved as raw scenario JSON without shrinking.
    """

    seed: int = 0
    scenarios: int = 5
    steps: int = 12
    participants: int = 4
    prefixes: int = 4
    policies: int = 5
    corpus_size: int = 12
    recompile_every: int = 4
    artifact_dir: Optional[str] = None
    time_budget_seconds: Optional[float] = None
    shrink: bool = True
    runtime: bool = False
    statics: bool = False
    dataplane: bool = False
    federation: bool = False
    exchanges: int = 2


@dataclass(frozen=True)
class FuzzFinding:
    """One failing scenario: where it came from and what it broke."""

    scenario_index: int
    scenario_seed: int
    failure: OracleFailure
    shrunk_trace_length: int
    original_trace_length: int
    artifact_path: Optional[str]


@dataclass
class FuzzReport:
    """The outcome of one fuzzing session."""

    config: FuzzConfig
    scenarios_run: int = 0
    steps_executed: int = 0
    comparisons: int = 0
    shrink_runs: int = 0
    findings: List[FuzzFinding] = field(default_factory=list)
    budget_exhausted: bool = False
    elapsed_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        """True when no scenario failed."""
        return not self.findings

    def summary(self) -> str:
        """A deterministic multi-line summary (no wall-clock numbers)."""
        lines = [
            f"fuzz seed={self.config.seed}: {self.scenarios_run} "
            f"scenario(s), {self.steps_executed} step(s), "
            f"{self.comparisons} forwarding comparison(s)",
        ]
        if self.budget_exhausted:
            lines.append("time budget exhausted before the scenario count")
        if not self.findings:
            lines.append("no divergence found")
        for finding in self.findings:
            lines.append(
                f"FAIL scenario#{finding.scenario_index} "
                f"(seed {finding.scenario_seed}): {finding.failure.kind} "
                f"after step {finding.failure.step}, trace shrunk "
                f"{finding.original_trace_length} -> "
                f"{finding.shrunk_trace_length} step(s)")
            lines.append(f"  {finding.failure.detail}")
            if finding.artifact_path:
                lines.append(f"  artifact: {finding.artifact_path}")
        return "\n".join(lines)


def _scenario_for(config: FuzzConfig, index: int) -> Scenario:
    """The ``index``-th scenario of a session, independently seeded."""
    return generate_scenario(
        derive_seed(config.seed, f"scenario-{index}"),
        participants=config.participants,
        prefixes=config.prefixes,
        policies=config.policies,
        steps=config.steps)


def _run_federation_fuzz(config: FuzzConfig,
                         telemetry: Telemetry) -> FuzzReport:
    """The federated fuzzing loop: one cross-check per scenario.

    Findings are not shrunk (the federated walk has no shrinking
    machinery yet); instead the failing scenario is written verbatim as
    replayable JSON next to the usual artifacts.
    """
    import json
    import os

    from repro.federation.scenario import (
        generate_federated_corpus,
        generate_federated_scenario,
    )
    from repro.verification.federation import federation_crosscheck

    registry = telemetry.registry
    scenarios_counter = registry.counter(
        "sdx_fuzz_federation_scenarios_total",
        "Federated fuzz scenarios executed")
    failures_counter = registry.counter(
        "sdx_fuzz_federation_failures_total",
        "Federated scenarios that broke a witness contract or diverged")

    report = FuzzReport(config=config)
    started = time.monotonic()
    for index in range(config.scenarios):
        if (config.time_budget_seconds is not None
                and time.monotonic() - started
                >= config.time_budget_seconds):
            report.budget_exhausted = True
            break
        scenario = generate_federated_scenario(
            derive_seed(config.seed, f"federation-{index}"),
            exchanges=config.exchanges,
            participants=config.participants,
            prefixes=config.prefixes,
            policies=config.policies,
            steps=config.steps)
        corpus = generate_federated_corpus(
            scenario, size=config.corpus_size)
        with telemetry.span("fuzz.federation", index=index,
                            seed=scenario.seed):
            result = federation_crosscheck(scenario, corpus)
        report.scenarios_run += 1
        report.steps_executed += result.steps_executed
        report.comparisons += result.comparisons
        scenarios_counter.inc()
        if result.failure is None:
            continue
        failures_counter.inc()
        artifact_path: Optional[str] = None
        if config.artifact_dir is not None:
            os.makedirs(config.artifact_dir, exist_ok=True)
            slug = "".join(ch if ch.isalnum() else "-"
                           for ch in result.failure.kind)
            artifact_path = os.path.join(
                config.artifact_dir,
                f"federated-seed{scenario.seed}-{slug}.json")
            payload = {
                "kind": result.failure.kind,
                "step": result.failure.step,
                "detail": result.failure.detail,
                "scenario": scenario.to_dict(),
            }
            with open(artifact_path, "w", encoding="utf-8") as handle:
                handle.write(json.dumps(payload, indent=2, sort_keys=True)
                             + "\n")
        report.findings.append(FuzzFinding(
            scenario_index=index,
            scenario_seed=scenario.seed,
            failure=result.failure,
            shrunk_trace_length=len(scenario.trace),
            original_trace_length=len(scenario.trace),
            artifact_path=artifact_path))
    report.elapsed_seconds = time.monotonic() - started
    return report


def run_fuzz(config: FuzzConfig,
             telemetry: Optional[Telemetry] = None) -> FuzzReport:
    """Run one fuzzing session; never raises on a finding."""
    telemetry = telemetry if telemetry is not None else get_telemetry()
    if config.federation:
        return _run_federation_fuzz(config, telemetry)
    registry = telemetry.registry
    scenarios_counter = registry.counter(
        "sdx_fuzz_scenarios_total", "Fuzz scenarios executed")
    steps_counter = registry.counter(
        "sdx_fuzz_steps_total", "Trace steps executed across executions")
    comparisons_counter = registry.counter(
        "sdx_fuzz_comparisons_total", "Forwarding outcomes compared")
    failures_counter = registry.counter(
        "sdx_fuzz_failures_total", "Scenarios that diverged or broke an "
        "invariant")
    shrink_counter = registry.counter(
        "sdx_fuzz_shrink_runs_total", "Oracle executions spent shrinking")
    runtime_checks_counter = registry.counter(
        "sdx_fuzz_runtime_checks_total",
        "Runtime-vs-inline equivalence replays")
    statics_checks_counter = registry.counter(
        "sdx_fuzz_statics_checks_total",
        "Statics-vs-reference cross-validation replays")
    dataplane_checks_counter = registry.counter(
        "sdx_fuzz_dataplane_checks_total",
        "Dataplane-verifier cross-validation replays")

    report = FuzzReport(config=config)
    started = time.monotonic()

    def out_of_budget() -> bool:
        if config.time_budget_seconds is None:
            return False
        return time.monotonic() - started >= config.time_budget_seconds

    def runtime_check(scenario: Scenario) -> Optional[OracleFailure]:
        if not config.runtime:
            return None
        from repro.verification.runtime import check_runtime_equivalence
        runtime_checks_counter.inc()
        return check_runtime_equivalence(
            scenario, drain_every=config.recompile_every,
            corpus=generate_corpus(scenario, size=config.corpus_size))

    def statics_check(scenario: Scenario) -> Optional[OracleFailure]:
        if not config.statics:
            return None
        from repro.verification.statics import statics_crosscheck
        statics_checks_counter.inc()
        return statics_crosscheck(
            scenario, corpus=generate_corpus(scenario,
                                             size=config.corpus_size))

    def dataplane_check(scenario: Scenario) -> Optional[OracleFailure]:
        if not config.dataplane:
            return None
        from repro.verification.dataplane import dataplane_crosscheck
        dataplane_checks_counter.inc()
        return dataplane_crosscheck(scenario)

    def runner(scenario: Scenario) -> Optional[OracleFailure]:
        oracle = DifferentialOracle(
            scenario, generate_corpus(scenario, size=config.corpus_size),
            recompile_every=config.recompile_every)
        return (oracle.run() or runtime_check(scenario)
                or statics_check(scenario) or dataplane_check(scenario))

    for index in range(config.scenarios):
        if out_of_budget():
            report.budget_exhausted = True
            break
        scenario = _scenario_for(config, index)
        with telemetry.span("fuzz.scenario", index=index,
                            seed=scenario.seed):
            oracle = DifferentialOracle(
                scenario,
                generate_corpus(scenario, size=config.corpus_size),
                recompile_every=config.recompile_every)
            failure = (oracle.run() or runtime_check(scenario)
                       or statics_check(scenario)
                       or dataplane_check(scenario))
        report.scenarios_run += 1
        report.steps_executed += oracle.steps_executed
        report.comparisons += oracle.comparisons
        scenarios_counter.inc()
        steps_counter.inc(oracle.steps_executed)
        comparisons_counter.inc(oracle.comparisons)
        if failure is None:
            continue
        failures_counter.inc()
        original_length = len(scenario.trace)
        shrunk, final_failure, runs = (
            shrink_scenario(scenario, failure, runner=runner)
            if config.shrink and not out_of_budget()
            else (scenario, failure, 0))
        report.shrink_runs += runs
        shrink_counter.inc(runs)
        artifact_path: Optional[str] = None
        if config.artifact_dir is not None:
            artifact = FailureArtifact(
                scenario=shrunk, kind=final_failure.kind,
                step=final_failure.step, detail=final_failure.detail,
                original_trace_length=original_length)
            artifact_path = artifact.save(config.artifact_dir)
        report.findings.append(FuzzFinding(
            scenario_index=index,
            scenario_seed=shrunk.seed,
            failure=final_failure,
            shrunk_trace_length=len(shrunk.trace),
            original_trace_length=original_length,
            artifact_path=artifact_path))
    report.elapsed_seconds = time.monotonic() - started
    return report
