"""A one-exchange federation is byte-identical to a plain SDX.

Hypothesis properties over seeded random single-exchange scenarios: the
:func:`~repro.federation.scenario.wrap_scenario` lift must neither add
nor lose statics verdicts, and the federated walk must collapse to plain
single-exchange forwarding (delivered via ``upstream`` or dropped — a
lone exchange has nowhere to re-enter).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.federation import analyze_federation, wrap_scenario
from repro.statics import analyze_controller
from repro.verification.corpus import generate_corpus
from repro.verification.scenario import generate_scenario

EXAMPLES = 12


def verdict_key(diagnostic):
    """The exchange-independent identity of one finding."""
    location = diagnostic.location
    return (diagnostic.check_id, diagnostic.severity,
            location.participant, location.direction, location.clause_index,
            diagnostic.message)


def scenario_from(seed):
    return generate_scenario(seed, participants=4, prefixes=3,
                             policies=5, steps=0)


class TestStaticsEquivalence:
    @settings(max_examples=EXAMPLES, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_wrap_preserves_single_exchange_verdicts(self, seed):
        scenario = scenario_from(seed)
        single = analyze_controller(
            scenario.build_controller(statics_mode="off"))
        federation = wrap_scenario(scenario).build_controller(
            with_dataplane=False)
        federated = analyze_federation(federation)
        single_keys = sorted(verdict_key(d) for d in single.diagnostics)
        federated_keys = sorted(
            verdict_key(d) for d in federated.diagnostics
            if d.check_id not in ("SDX008", "SDX009"))
        assert federated_keys == single_keys

    @settings(max_examples=EXAMPLES, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_wrap_never_invents_federation_findings(self, seed):
        federation = wrap_scenario(scenario_from(seed)).build_controller(
            with_dataplane=False)
        report = analyze_federation(federation)
        assert report.by_check("SDX008") == []
        assert report.by_check("SDX009") == []


class TestForwardingEquivalence:
    @settings(max_examples=EXAMPLES, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_federated_walk_collapses_to_plain_sdx(self, seed):
        scenario = scenario_from(seed)
        controller = scenario.build_controller()
        controller.start()
        federation = wrap_scenario(scenario).build_controller()
        corpus = generate_corpus(scenario, size=6, seed=seed)
        names = [p.name for p in scenario.participants]
        for sender in names:
            for packet in corpus:
                accepted = [d for d in controller.send(sender, packet)
                            if d.accepted]
                outcome = federation.forward("IXP-A", sender, packet)
                assert len(outcome.hops) == 1
                if accepted:
                    assert outcome.is_delivered
                    assert outcome.via == "upstream"
                    assert outcome.participant == accepted[0].participant
                else:
                    assert outcome.kind == "dropped"
