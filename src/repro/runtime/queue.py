"""The bounded, prioritized, coalescing event queue.

One :class:`RuntimeQueue` holds every pending :class:`~repro.runtime
.events.RuntimeEvent`, organised as one FIFO per priority class. Three
properties matter to the control plane:

* **Priority** — :meth:`RuntimeQueue.pop` drains policy changes before
  withdrawals before announcements; within a class, arrival order is
  preserved. Cross-class priority is only sound together with
  coalescing (which keeps at most one pending event per key); with
  coalescing disabled the queue drains in global arrival order instead.
* **Coalescing** — a new single-prefix BGP event whose ``(participant,
  prefix)`` key is already pending replaces the pending event's payload
  in place (keeping its queue position and first-enqueue timestamp), so
  a burst of churn for one prefix costs one route-server submission.
  When the churn flips the event's class (announce → withdraw), the
  event migrates to the tail of its new class. Coalescing absorbs
  events *without growing the queue*, so it also works while full.
* **Bound** — :meth:`offer` refuses events past ``max_depth`` and
  reports :attr:`OfferOutcome.FULL`; the loop decides whether to block,
  shed, or degrade (see :class:`~repro.runtime.events.OverloadPolicy`).
  :meth:`shed_oldest` implements the shedding half: the oldest event of
  the lowest-priority occupied class is dropped, on the theory that old
  announcements are the first information a stressed control plane can
  afford to lose (BGP will re-converge; a dropped policy change would
  silently violate intent).

The queue itself is not thread-safe; :class:`~repro.runtime.loop
.ControlPlaneRuntime` serialises access under its own lock.
"""

from __future__ import annotations

import enum
from collections import OrderedDict
from typing import Dict, List, Optional

from repro.runtime.events import EventClass, EventKey, RuntimeEvent, classify_update

#: Classes in drain order (highest priority first). MONITORING drains
#: last and — via the reversal below — sheds first: observations are
#: advisory, so they are the cheapest information to lose under load.
DRAIN_ORDER = (EventClass.POLICY, EventClass.WITHDRAWAL,
               EventClass.ANNOUNCEMENT, EventClass.MONITORING)

#: Classes in shed order (lowest priority sheds first).
SHED_ORDER = tuple(reversed(DRAIN_ORDER))


class OfferOutcome(enum.Enum):
    """What :meth:`RuntimeQueue.offer` did with an event."""

    ENQUEUED = "enqueued"
    COALESCED = "coalesced"
    FULL = "full"


class RuntimeQueue:
    """Pending runtime events: one bounded FIFO per priority class."""

    def __init__(self, max_depth: int = 1024, *, coalesce: bool = True):
        if max_depth < 1:
            raise ValueError("max_depth must be positive")
        self.max_depth = max_depth
        self.coalesce = coalesce
        self._classes: Dict[EventClass, "OrderedDict[EventKey, RuntimeEvent]"] = {
            cls: OrderedDict() for cls in DRAIN_ORDER}
        self._where: Dict[EventKey, EventClass] = {}
        #: Events absorbed by coalescing since construction.
        self.coalesced_total = 0
        #: Events accepted (enqueued or coalesced) since construction.
        self.offered_total = 0

    def __len__(self) -> int:
        return len(self._where)

    @property
    def depth(self) -> int:
        """Distinct pending events across every class."""
        return len(self._where)

    def depth_of(self, kind: EventClass) -> int:
        """Pending events of one class."""
        return len(self._classes[kind])

    @property
    def is_empty(self) -> bool:
        """True when nothing is pending."""
        return not self._where

    # ------------------------------------------------------------------
    # Ingress
    # ------------------------------------------------------------------

    def offer(self, event: RuntimeEvent) -> OfferOutcome:
        """Admit ``event``: coalesce, enqueue, or report the queue full.

        ``FULL`` means the event was **not** admitted — the caller owns
        the overload policy and may shed then re-offer, or block.
        """
        coalescable = self.coalesce and event.coalescable
        # With coalescing off every event stores under its unique seq
        # key — same-(participant, prefix) events must not collide.
        key = event.key if coalescable else ("seq", "", str(event.seq))
        if coalescable:
            held_class = self._where.get(key)
            if held_class is not None:
                self._merge(held_class, key, event)
                self.offered_total += 1
                self.coalesced_total += 1
                return OfferOutcome.COALESCED
        if self.depth >= self.max_depth:
            return OfferOutcome.FULL
        self._classes[event.kind][key] = event
        self._where[key] = event.kind
        self.offered_total += 1
        return OfferOutcome.ENQUEUED

    def _merge(self, held_class: EventClass, key: EventKey,
               incoming: RuntimeEvent) -> None:
        """Collapse ``incoming`` into the pending event at ``key``."""
        held = self._classes[held_class][key]
        held.update = incoming.update
        held.absorbed += 1 + incoming.absorbed
        new_class = classify_update(incoming.update)
        if new_class is not held_class:
            # announce -> withdraw (or back): the latest state decides
            # both payload and urgency; the event joins its new class's
            # tail like any fresh arrival.
            del self._classes[held_class][key]
            held.kind = new_class
            self._classes[new_class][key] = held
            self._where[key] = new_class

    # ------------------------------------------------------------------
    # Egress
    # ------------------------------------------------------------------

    def pop(self, limit: int) -> List[RuntimeEvent]:
        """Up to ``limit`` events in strict priority order (FIFO within
        a class).

        Priority drain is only sound *with* coalescing: per-key collapse
        guarantees at most one pending event per (participant, prefix),
        so classes can never reorder a withdrawal ahead of the
        announcement that preceded it for the same key. With coalescing
        disabled the queue therefore degrades to one global FIFO
        (arrival order across every class).
        """
        if limit < 1:
            return []
        out: List[RuntimeEvent] = []
        if self.coalesce:
            for kind in DRAIN_ORDER:
                fifo = self._classes[kind]
                while fifo and len(out) < limit:
                    key, event = fifo.popitem(last=False)
                    del self._where[key]
                    out.append(event)
                if len(out) >= limit:
                    break
            return out
        while len(out) < limit:
            oldest: Optional[EventClass] = None
            oldest_seq = -1
            for kind in DRAIN_ORDER:
                fifo = self._classes[kind]
                if not fifo:
                    continue
                seq = next(iter(fifo.values())).seq
                if oldest is None or seq < oldest_seq:
                    oldest, oldest_seq = kind, seq
            if oldest is None:
                break
            key, event = self._classes[oldest].popitem(last=False)
            del self._where[key]
            out.append(event)
        return out

    def shed_oldest(self) -> Optional[RuntimeEvent]:
        """Drop and return the oldest lowest-priority event (or ``None``
        when the queue is empty)."""
        for kind in SHED_ORDER:
            fifo = self._classes[kind]
            if fifo:
                key, event = fifo.popitem(last=False)
                del self._where[key]
                return event
        return None

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{kind.label}={len(self._classes[kind])}" for kind in DRAIN_ORDER)
        return f"RuntimeQueue({parts}, max={self.max_depth})"
