#!/usr/bin/env python3
"""Quickstart: a three-participant SDX with one outbound policy.

Builds the smallest interesting exchange — a client ISP (AS A) and two
transit providers (B and C) that both announce the same destination —
installs the paper's application-specific peering policy, and shows how
traffic moves before and after a route withdrawal.

Run with::

    python examples/quickstart.py
"""

from repro import SdxController, fwd, match
from repro.bgp.asn import AsPath
from repro.net.addresses import IPv4Prefix
from repro.net.packet import Packet

#: The content prefix both transit providers announce.
CONTENT = IPv4Prefix("60.0.0.0/8")


def build() -> SdxController:
    """The example exchange, policies installed but not yet compiled."""
    sdx = SdxController()
    client = sdx.add_participant("A", 65001)
    sdx.add_participant("B", 65002)
    sdx.add_participant("C", 65003)

    # B and C both provide transit to the same content prefix; C's path
    # is shorter, so plain BGP would always pick C.
    sdx.announce_route("B", CONTENT, AsPath([65002, 7018, 15169]))
    sdx.announce_route("C", CONTENT, AsPath([65003, 15169]))

    # Application-specific peering: web traffic via B, rest follows BGP.
    client.add_outbound(match(dstport=80) >> fwd("B"))
    return sdx


def main() -> None:
    sdx = build()
    result = sdx.start()
    print(f"compiled {result.flow_rule_count} flow rules over "
          f"{result.prefix_group_count} prefix group(s) in "
          f"{result.total_seconds * 1000:.1f} ms")
    print()
    print("switch flow table:")
    print(sdx.table.render())
    print()

    web = Packet(dstip="60.1.2.3", dstport=80, srcip="10.0.0.1", protocol=6)
    ssh = web.modify(dstport=22)
    print(f"web traffic egresses via: {sdx.egress_of('A', web)}   (policy)")
    print(f"ssh traffic egresses via: {sdx.egress_of('A', ssh)}   (BGP best)")
    print()

    print("withdrawing B's route ...")
    sdx.withdraw_route("B", CONTENT)
    print(f"web traffic egresses via: {sdx.egress_of('A', web)}   "
          f"(policy no longer eligible)")

    print("running background re-optimisation ...")
    sdx.run_background_recompilation()
    print(f"web traffic egresses via: {sdx.egress_of('A', web)}   (stable)")


if __name__ == "__main__":
    main()
