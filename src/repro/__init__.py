"""Reproduction of "SDX: A Software Defined Internet Exchange" (SIGCOMM 2014).

The package is organised as a stack of substrates with the paper's
contribution — the SDX controller — on top:

- :mod:`repro.net` — addressing and packet primitives (IPv4 prefixes, MAC
  addresses, header/packet models).
- :mod:`repro.policy` — a Pyretic-like policy language with classifier
  compilation to OpenFlow-style rules.
- :mod:`repro.bgp` — BGP messages, RIBs, decision process, and a
  multi-participant route server.
- :mod:`repro.dataplane` — flow-table/switch simulation, border routers,
  and the IXP layer-2 fabric.
- :mod:`repro.core` — the SDX controller: virtual-switch abstraction,
  policy transformations, FEC/VNH computation, and incremental compilation.
- :mod:`repro.workloads` — synthetic IXP topology/policy/update generators
  calibrated to the paper's evaluation section.
- :mod:`repro.experiments` — shared measurement harness used by the
  benchmark suite.

Quickstart::

    from repro import SdxController, match, fwd

    sdx = SdxController.build(participants={"A": 65001, "B": 65002})
    sdx.participant("A").add_outbound(match(dstport=80) >> fwd("B"))
    sdx.start()

See ``examples/quickstart.py`` for a complete runnable scenario.

Top-level names are loaded lazily so that importing one substrate never
drags in the rest of the stack.
"""

from typing import Any

__version__ = "1.0.0"

#: Maps each public top-level name to the module that defines it.
_EXPORTS = {
    "IPv4Address": "repro.net.addresses",
    "IPv4Prefix": "repro.net.addresses",
    "MacAddress": "repro.net.mac",
    "Packet": "repro.net.packet",
    "Participant": "repro.core.participant",
    "RouteServer": "repro.bgp.routeserver",
    "SdxController": "repro.core.controller",
    "drop": "repro.policy.policies",
    "fwd": "repro.policy.policies",
    "identity": "repro.policy.policies",
    "if_": "repro.policy.policies",
    "match": "repro.policy.policies",
    "modify": "repro.policy.policies",
}

__all__ = sorted(_EXPORTS) + ["__version__"]


def __getattr__(name: str) -> Any:
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module 'repro' has no attribute {name!r}")
    import importlib

    module = importlib.import_module(module_name)
    value = getattr(module, name)
    globals()[name] = value
    return value


def __dir__() -> list:
    return __all__
