"""Tests for the priority flow table."""

from repro.net.packet import Packet
from repro.policy.classifier import Action, Classifier, Rule
from repro.policy.flowrules import FlowRule
from repro.policy.headerspace import WILDCARD, HeaderSpace
from repro.policy.policies import fwd, match
from repro.dataplane.flowtable import FlowTable
from repro.southbound.diff import FlowMod


def rule(priority, actions=(), **constraints):
    return FlowRule(priority=priority, match=HeaderSpace(**constraints), actions=actions)


class TestInstallation:
    def test_install_orders_by_priority(self):
        table = FlowTable()
        table.install(rule(1))
        table.install(rule(5, dstport=80))
        table.install(rule(3, dstport=443))
        assert [r.priority for r in table.rules] == [5, 3, 1]

    def test_equal_priority_keeps_insertion_order(self):
        table = FlowTable()
        first = rule(5, (Action(port=1),), dstport=80)
        second = rule(5, (Action(port=2),), dstport=80)
        table.install(first)
        table.install(second)
        assert table.rules == (first, second)

    def test_install_classifier(self):
        table = FlowTable()
        installed = table.install_classifier((match(dstport=80) >> fwd(2)).compile())
        assert installed == len(table)

    def test_replace_with_swaps_table(self):
        table = FlowTable()
        table.install(rule(9))
        table.replace_with(fwd(2).compile())
        assert all(r.actions == (Action(port=2),) for r in table.rules)

    def test_remove_where(self):
        table = FlowTable()
        table.install(rule(5, (Action(port=1),)))
        table.install(rule(9, (Action(port=2),)))
        removed = table.remove_where(lambda r: r.priority > 6)
        assert removed == 1
        assert len(table) == 1

    def test_generation_bumps_on_mutation(self):
        table = FlowTable()
        start = table.generation
        table.install(rule(1))
        table.clear()
        assert table.generation == start + 2


class TestProcessing:
    def test_first_match_by_priority(self):
        table = FlowTable()
        table.install(rule(1, (Action(port=9),)))
        table.install(rule(5, (Action(port=2),), dstport=80))
        assert table.process(Packet(port=1, dstport=80)) == (Packet(port=2, dstport=80),)
        assert table.process(Packet(port=1, dstport=22)) == (Packet(port=9, dstport=22),)

    def test_table_miss_drops(self):
        table = FlowTable()
        table.install(rule(5, (Action(port=2),), dstport=80))
        assert table.process(Packet(port=1, dstport=22)) == ()

    def test_drop_rule(self):
        table = FlowTable()
        table.install(rule(5, (), dstport=80))
        assert table.process(Packet(port=1, dstport=80)) == ()

    def test_counters(self):
        table = FlowTable()
        web = rule(5, (Action(port=2),), dstport=80)
        table.install(web)
        table.process(Packet(port=1, dstport=80))
        table.process(Packet(port=1, dstport=80))
        assert table.packets_matched(web) == 2

    def test_lookup_returns_none_on_miss(self):
        assert FlowTable().lookup(Packet(port=1)) is None

    def test_render_contains_priorities(self):
        table = FlowTable()
        table.install(rule(5, (Action(port=2),), dstport=80))
        assert "priority=5" in table.render()


class TestApplyMod:
    def test_add_inserts_in_priority_order(self):
        table = FlowTable()
        table.apply_mod(FlowMod.add(rule(3, (Action(port=1),), dstport=22)))
        table.apply_mod(FlowMod.add(rule(7, (Action(port=2),), dstport=80)))
        assert [r.priority for r in table.rules] == [7, 3]

    def test_modify_rewrites_actions_preserving_counter(self):
        table = FlowTable()
        web = rule(5, (Action(port=1),), dstport=80)
        table.install(web)
        table.process(Packet(port=1, dstport=80))
        table.apply_mod(FlowMod.modify(rule(5, (Action(port=9),), dstport=80)))
        survivor = table.rules[0]
        assert survivor.actions == (Action(port=9),)
        assert table.packets_matched(survivor) == 1

    def test_delete_removes_key(self):
        table = FlowTable()
        table.install(rule(5, (Action(port=1),), dstport=80))
        table.install(rule(1, (Action(port=2),)))
        table.apply_mod(FlowMod.delete(rule(5, (), dstport=80)))
        assert [r.priority for r in table.rules] == [1]

    def test_delete_removes_every_duplicate_instance(self):
        table = FlowTable()
        table.install(rule(5, (Action(port=1),), dstport=80))
        table.install(rule(5, (Action(port=2),), dstport=80))
        table.apply_mod(FlowMod.delete(rule(5, (), dstport=80)))
        assert len(table) == 0

    def test_add_on_existing_key_acts_as_modify(self):
        table = FlowTable()
        table.install(rule(5, (Action(port=1),), dstport=80))
        table.apply_mod(FlowMod.add(rule(5, (Action(port=2),), dstport=80)))
        assert len(table) == 1
        assert table.rules[0].actions == (Action(port=2),)

    def test_rule_for_key(self):
        table = FlowTable()
        web = rule(5, (Action(port=1),), dstport=80)
        table.install(web)
        assert table.rule_for_key(5, HeaderSpace(dstport=80)) is web
        assert table.rule_for_key(5, WILDCARD) is None


class TestCounterPreservingReplace:
    def _classifier(self, web_port):
        return Classifier([
            Rule(HeaderSpace(dstport=80), (Action(port=web_port),)),
            Rule(HeaderSpace(dstport=22), (Action(port=3),)),
            Rule(WILDCARD, ()),
        ])

    def test_unchanged_rules_keep_counters(self):
        table = FlowTable()
        table.install_classifier(self._classifier(web_port=1))
        table.process(Packet(port=9, dstport=22))
        table.process(Packet(port=9, dstport=22))
        ssh = table.lookup(Packet(port=9, dstport=22))
        assert table.packets_matched(ssh) == 2
        # Recompile changes only the web rule; ssh must keep its counter.
        table.replace_with(self._classifier(web_port=2))
        assert table.lookup(Packet(port=9, dstport=22)) is ssh
        assert table.packets_matched(ssh) == 2
        assert table.lookup(Packet(port=9, dstport=80)).actions == (Action(port=2),)

    def test_identical_replace_touches_nothing(self):
        table = FlowTable()
        table.install_classifier(self._classifier(web_port=1))
        generation = table.generation
        rules = table.rules
        table.replace_with(self._classifier(web_port=1))
        assert table.rules == rules  # same objects, not just equal rules
        assert table.generation == generation

    def test_replace_return_value_is_new_table_size(self):
        table = FlowTable()
        table.install(rule(9))
        assert table.replace_with(self._classifier(web_port=1)) == 3


class TestCookies:
    """The OpenFlow-style per-rule cookie: issued at install, transferred
    by MODIFY, dropped (never recycled) on DELETE — the stable identity
    the monitoring collector keys its counter deltas by."""

    def test_install_issues_monotonic_cookies(self):
        table = FlowTable()
        first = rule(5, (Action(port=1),), dstport=80)
        second = rule(3, (Action(port=2),), dstport=22)
        table.install(first)
        table.install(second)
        assert 0 < table.cookie_of(first) < table.cookie_of(second)

    def test_uninstalled_rule_reads_zero(self):
        table = FlowTable()
        web = rule(5, (Action(port=1),), dstport=80)
        assert table.cookie_of(web) == 0
        table.install(web)
        table.remove_where(lambda r: True)
        assert table.cookie_of(web) == 0

    def test_modify_transfers_the_cookie(self):
        table = FlowTable()
        web = rule(5, (Action(port=1),), dstport=80)
        table.install(web)
        cookie = table.cookie_of(web)
        table.apply_mod(FlowMod.modify(rule(5, (Action(port=9),), dstport=80)))
        survivor = table.rules[0]
        assert survivor is not web
        assert table.cookie_of(survivor) == cookie
        assert table.cookie_of(web) == 0

    def test_idempotent_modify_keeps_the_rule_object(self):
        table = FlowTable()
        web = rule(5, (Action(port=1),), dstport=80)
        table.install(web)
        cookie = table.cookie_of(web)
        table.apply_mod(FlowMod.modify(rule(5, (Action(port=1),), dstport=80)))
        assert table.rules == (web,)
        assert table.cookie_of(web) == cookie

    def test_delete_and_readd_issues_a_fresh_cookie(self):
        table = FlowTable()
        web = rule(5, (Action(port=1),), dstport=80)
        table.install(web)
        cookie = table.cookie_of(web)
        table.apply_mod(FlowMod.delete(web))
        table.apply_mod(FlowMod.add(rule(5, (Action(port=1),), dstport=80)))
        assert table.cookie_of(table.rules[0]) > cookie

    def test_counters_snapshot_rows_match_accessors(self):
        table = FlowTable()
        web = rule(5, (Action(port=2),), dstport=80)
        ssh = rule(3, (Action(port=3),), dstport=22)
        table.install(web)
        table.install(ssh)
        table.process(Packet(port=1, dstport=80), size_bytes=500)
        table.process(Packet(port=1, dstport=80), size_bytes=700)
        table.process(Packet(port=1, dstport=22), size_bytes=100)
        assert table.counters_snapshot() == (
            (web, table.cookie_of(web), 2, 1200),
            (ssh, table.cookie_of(ssh), 1, 100),
        )


class TestTelemetryBinding:
    """Regression: rebinding the table's telemetry must be idempotent
    per registry — no handle re-fetch, no gratuitous gauge writes."""

    def _bound(self):
        from repro.telemetry import Telemetry
        telemetry = Telemetry()
        table = FlowTable()
        table.bind_telemetry(telemetry)
        table.install(rule(5, (Action(port=1),), dstport=80))
        table.process(Packet(port=1, dstport=80))
        return telemetry, table

    def test_rebinding_the_same_registry_is_a_noop(self):
        telemetry, table = self._bound()
        gauge = telemetry.registry.get("sdx_flowtable_rules")
        table.bind_telemetry(telemetry)
        # Same handle objects, and activity keeps accumulating in place.
        assert telemetry.registry.get("sdx_flowtable_rules") is gauge
        table.process(Packet(port=1, dstport=80))
        assert telemetry.registry.get(
            "sdx_flowtable_packets_total").value == 2

    def test_rebinding_a_different_registry_moves_recording(self):
        from repro.telemetry import Telemetry
        first, table = self._bound()
        second = Telemetry()
        table.bind_telemetry(second)
        table.process(Packet(port=1, dstport=80))
        # The old registry stops receiving; the new one starts fresh,
        # with the rule gauge synced at bind time.
        assert first.registry.get("sdx_flowtable_packets_total").value == 1
        assert second.registry.get("sdx_flowtable_packets_total").value == 1
        assert second.registry.get("sdx_flowtable_rules").value == 1
