"""Field-wise packet matches with intersection and subsumption.

A :class:`HeaderSpace` is a conjunction of per-field constraints — the
match half of an OpenFlow rule. IP fields may be constrained by a CIDR
prefix; every other field by an exact value. Fields without a constraint
are wildcarded.

Two CIDR blocks either nest or are disjoint, so the intersection of two
header spaces is again a single header space (or empty). That closure
property is what keeps the classifier composition algebra in
:mod:`repro.policy.classifier` simple and is the reason SDX matches restrict
themselves to this fragment.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, Mapping, Optional, Tuple, Union

from repro.exceptions import FieldError
from repro.net.addresses import IPv4Address, IPv4Prefix
from repro.net.mac import MacAddress
from repro.net.packet import FIELDS, IP_FIELDS, MAC_FIELDS, Packet, check_field

#: A single-field constraint: exact int, exact MAC, or an IP prefix.
Constraint = Union[int, MacAddress, IPv4Prefix]


def coerce_constraint(field: str, value: Any) -> Constraint:
    """Normalise a user-supplied match value for ``field``.

    IP fields accept prefixes (``"10.0.0.0/8"``, :class:`IPv4Prefix`),
    addresses (converted to /32), or ints; MAC fields accept
    :class:`MacAddress` or text; other fields accept non-negative ints.
    """
    check_field(field)
    if field in IP_FIELDS:
        if isinstance(value, IPv4Prefix):
            return value
        if isinstance(value, str) and "/" in value:
            return IPv4Prefix(value)
        return IPv4Prefix(network=IPv4Address(value), length=32)
    if field in MAC_FIELDS:
        return MacAddress(value)
    if isinstance(value, bool) or not isinstance(value, int):
        raise FieldError(f"match on {field!r} expects an int, got {value!r}")
    if value < 0:
        raise FieldError(f"match on {field!r} expects a non-negative int")
    return value


def _intersect_constraint(field: str, left: Constraint,
                          right: Constraint) -> Optional[Constraint]:
    """The conjunction of two constraints on one field, or ``None`` if empty."""
    if isinstance(left, IPv4Prefix) and isinstance(right, IPv4Prefix):
        return left.intersection(right)
    return left if left == right else None


def _constraint_covers(left: Constraint, right: Constraint) -> bool:
    """True if every value satisfying ``right`` also satisfies ``left``."""
    if isinstance(left, IPv4Prefix) and isinstance(right, IPv4Prefix):
        return left.contains_prefix(right)
    return left == right


def _constraint_admits(constraint: Constraint, value: Any) -> bool:
    """True if a concrete packet ``value`` satisfies ``constraint``."""
    if isinstance(constraint, IPv4Prefix):
        return value is not None and constraint.contains_address(value)
    return constraint == value


class HeaderSpace(Mapping[str, Constraint]):
    """An immutable conjunction of per-field match constraints.

    The empty header space (no constraints) matches every packet::

        >>> HeaderSpace().matches(Packet(dstport=80))
        True
        >>> HeaderSpace(dstport=80).matches(Packet(dstport=443))
        False
    """

    __slots__ = ("_constraints", "_hash")

    def __init__(self, **constraints: Any):
        normalised = {
            field: coerce_constraint(field, value)
            for field, value in constraints.items()
            if value is not None
        }
        object.__setattr__(self, "_constraints", normalised)
        object.__setattr__(self, "_hash", None)

    @classmethod
    def _from_dict(cls, constraints: Dict[str, Constraint]) -> "HeaderSpace":
        space = cls()
        object.__setattr__(space, "_constraints", constraints)
        return space

    def __getitem__(self, field: str) -> Constraint:
        return self._constraints[field]

    def __iter__(self) -> Iterator[str]:
        return iter(self._constraints)

    def __len__(self) -> int:
        return len(self._constraints)

    @property
    def is_wildcard(self) -> bool:
        """True if this space matches every packet."""
        return not self._constraints

    def matches(self, packet: Packet) -> bool:
        """True if ``packet`` satisfies every constraint.

        A packet lacking a constrained field does not match (the field
        reads as ``None``), except that prefix constraints trivially fail.
        """
        return all(
            _constraint_admits(constraint, packet.get(field))
            for field, constraint in self._constraints.items())

    def intersect(self, other: "HeaderSpace") -> Optional["HeaderSpace"]:
        """The conjunction of two header spaces, or ``None`` when empty."""
        merged = dict(self._constraints)
        for field, constraint in other._constraints.items():
            if field in merged:
                combined = _intersect_constraint(field, merged[field], constraint)
                if combined is None:
                    return None
                merged[field] = combined
            else:
                merged[field] = constraint
        return HeaderSpace._from_dict(merged)

    def covers(self, other: "HeaderSpace") -> bool:
        """True if every packet matching ``other`` also matches ``self``."""
        for field, constraint in self._constraints.items():
            if field not in other._constraints:
                return False
            if not _constraint_covers(constraint, other._constraints[field]):
                return False
        return True

    def with_constraint(self, field: str, value: Any) -> Optional["HeaderSpace"]:
        """This space further constrained on one field (``None`` if empty)."""
        return self.intersect(HeaderSpace(**{field: value}))

    def without_field(self, field: str) -> "HeaderSpace":
        """This space with any constraint on ``field`` removed."""
        check_field(field)
        if field not in self._constraints:
            return self
        remaining = {
            name: constraint
            for name, constraint in self._constraints.items()
            if name != field
        }
        return HeaderSpace._from_dict(remaining)

    def concretise(self, **defaults: Any) -> Packet:
        """A representative packet inside this space.

        Prefix constraints yield the first address of the prefix. Extra
        ``defaults`` fill in unconstrained fields. Useful in tests.
        """
        fields: Dict[str, Any] = dict(defaults)
        for field, constraint in self._constraints.items():
            if isinstance(constraint, IPv4Prefix):
                fields[field] = constraint.first_address
            else:
                fields[field] = constraint
        return Packet(**fields)

    def items_sorted(self) -> Tuple[Tuple[str, Constraint], ...]:
        """Constraints in the canonical field order of ``FIELDS``."""
        order = list(FIELDS)
        return tuple(
            (field, self._constraints[field])
            for field in sorted(self._constraints, key=order.index))

    def __eq__(self, other: object) -> bool:
        if isinstance(other, HeaderSpace):
            return self._constraints == other._constraints
        return NotImplemented

    def __hash__(self) -> int:
        cached = self._hash
        if cached is None:
            cached = hash(frozenset(self._constraints.items()))
            object.__setattr__(self, "_hash", cached)
        return cached

    def __repr__(self) -> str:
        if self.is_wildcard:
            return "HeaderSpace(*)"
        inner = ", ".join(f"{field}={value!s}" for field, value in self.items_sorted())
        return f"HeaderSpace({inner})"


#: The header space matching every packet.
WILDCARD = HeaderSpace()
