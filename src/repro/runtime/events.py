"""Typed control-plane events: priority classes and coalescing keys.

Every piece of work the runtime schedules is a :class:`RuntimeEvent` in
one of four priority classes, ordered by how urgently the data plane
needs it:

* :attr:`EventClass.POLICY` — a participant installed or removed a
  policy. Highest priority: until it is applied, the switch enforces
  the *wrong intent*, not merely a stale route.
* :attr:`EventClass.WITHDRAWAL` — a BGP update that only withdraws.
  Processed before announcements because a stale withdrawn route
  blackholes (or mis-delivers) traffic, while a stale announcement
  merely delays a better path.
* :attr:`EventClass.ANNOUNCEMENT` — every other BGP update.
* :attr:`EventClass.MONITORING` — a data-plane observation (heavy
  hitter, utilization alarm) from :mod:`repro.monitoring`. Lowest
  priority and first to shed: monitoring is advisory — correctness
  never depends on it, and a stressed control plane should drop a
  stale observation before any routing state.

BGP events that touch exactly one ``(participant, prefix)`` pair carry a
coalescing key: a burst of churn for that pair collapses in the queue to
its latest state before ever reaching the route server (announce /
withdraw / announce → one announce of the final route). This is sound
because the route server's per-sender Adj-RIB-In is last-writer-wins per
prefix — the intermediate states are unobservable once the burst drains.
Policy events never coalesce (two ``add_policy`` calls both matter), and
neither do multi-prefix UPDATEs (splitting them would reorder within one
message).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Optional, Tuple

from repro.bgp.messages import Update

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.core.controller import SdxController

#: A coalescing key: ("bgp", participant, prefix-text) for single-prefix
#: BGP events, or a unique ("seq", n) tuple for everything else.
EventKey = Tuple[str, str, str]

#: A policy event's payload: a callable applied to the controller when
#: the event drains (e.g. ``lambda c: c.participant("A").add_outbound(p)``).
PolicyApply = Callable[["SdxController"], None]


class EventClass(enum.IntEnum):
    """Priority class of a runtime event; lower value drains first."""

    POLICY = 0
    WITHDRAWAL = 1
    ANNOUNCEMENT = 2
    MONITORING = 3

    @property
    def label(self) -> str:
        """The lowercase metric-label form of the class name."""
        return self.name.lower()


class OverloadPolicy(str, enum.Enum):
    """What the runtime does when the bounded queue is full.

    * ``BLOCK`` — the submitting caller is held until the loop has
      drained a batch (deterministic mode drains synchronously inside
      the submit call; threaded mode waits on the drain condition).
    * ``SHED_OLDEST`` — the oldest event of the lowest-priority occupied
      class is dropped, counted in
      ``sdx_runtime_events_dropped_total``, and the new event enters.
    * ``DEGRADE`` — like ``BLOCK``, but sustained saturation first
      flips the controller into default-BGP-route-only forwarding
      (policies suspended, cheap per-event work) until the queue
      drains, at which point policies are restored and recompiled in.
    """

    BLOCK = "block"
    SHED_OLDEST = "shed-oldest"
    DEGRADE = "degrade"


def classify_update(update: Update) -> EventClass:
    """The priority class of one BGP update."""
    if update.withdrawals and not update.announcements:
        return EventClass.WITHDRAWAL
    return EventClass.ANNOUNCEMENT


def coalescing_key(update: Update) -> Optional[EventKey]:
    """The per-(participant, prefix) key of ``update``, if it has one.

    Only single-prefix updates coalesce; a multi-prefix UPDATE returns
    ``None`` and is queued verbatim.
    """
    prefixes = update.prefixes
    if len(prefixes) != 1:
        return None
    return ("bgp", update.sender, str(prefixes[0]))


@dataclass
class RuntimeEvent:
    """One unit of control-plane work waiting in the runtime queue.

    Exactly one of ``update`` (a BGP event) and ``apply`` (a policy
    event — a callable run against the controller) is set.
    ``enqueued_wall`` is the ``time.perf_counter`` stamp of first
    enqueue, kept across coalescing so ingest-to-install latency
    reports the *staleness of the oldest absorbed information*, not
    just the final write. ``absorbed`` counts earlier events this one
    replaced.
    """

    kind: EventClass
    seq: int
    enqueued_wall: float
    update: Optional[Update] = None
    apply: Optional[Callable[["SdxController"], None]] = None
    #: A MonitoringEvent payload (kind MONITORING only). Monitoring
    #: events never coalesce: each observation carries distinct
    #: measurements, and the detectors already rate-limit emission.
    monitoring: Optional[object] = None
    label: str = ""
    absorbed: int = field(default=0)

    @property
    def key(self) -> EventKey:
        """The queue key: coalescing key for BGP events, unique otherwise."""
        if self.update is not None:
            shared = coalescing_key(self.update)
            if shared is not None:
                return shared
        return ("seq", "", str(self.seq))

    @property
    def coalescable(self) -> bool:
        """True if later events for the same key may replace this one."""
        return self.update is not None and coalescing_key(self.update) is not None

    def describe(self) -> str:
        """A short human-readable label for logs and drop reports."""
        if self.update is not None:
            prefixes = ",".join(str(p) for p in self.update.prefixes)
            return f"{self.kind.label}:{self.update.sender}:{prefixes}"
        if self.monitoring is not None:
            return f"monitoring:{self.label or type(self.monitoring).__name__}"
        return f"policy:{self.label or '?'}"

    def __repr__(self) -> str:
        return f"RuntimeEvent(#{self.seq} {self.describe()})"
