"""End-to-end ControlPlaneRuntime behaviour against a real controller.

Covers both execution modes, every overload policy, and the scheduler
integration — including the satellite acceptance cases: shedding shows
up in loss accounting, degrade mode converges back to the fully
composed table, and announce/withdraw/announce coalescing yields the
latest route.
"""

from repro.bgp.asn import AsPath
from repro.bgp.attributes import RouteAttributes
from repro.bgp.messages import Update
from repro.net.addresses import IPv4Prefix
from repro.runtime import (
    ManualClock,
    OverloadPolicy,
    RuntimeConfig,
    SchedulerConfig,
)
from repro.verification.runtime import canonical_state

from tests.core.scenarios import figure1_controller, packet

FRESH = [IPv4Prefix(f"19.{index}.0.0/16") for index in range(64)]


def announce(sdx, name, prefix, path, med=0):
    """An Update as participant ``name`` would send it (real port IP)."""
    participant = sdx.topology.participant(name)
    return Update.announce(name, prefix, RouteAttributes(
        next_hop=participant.ports[0].ip, as_path=AsPath(path), med=med))


def started_runtime(**overrides):
    """A started Figure-1 controller plus a ManualClock runtime."""
    sdx, *_ = figure1_controller()
    sdx.start()
    config = RuntimeConfig(**overrides)
    runtime = sdx.build_runtime(config, clock=ManualClock())
    return sdx, runtime


class TestDeterministicMode:
    def test_coalescing_yields_latest_route(self):
        sdx, runtime = started_runtime()
        before = sdx.route_server.updates_processed
        prefix = FRESH[0]
        runtime.submit_update(announce(sdx, "C", prefix, [65003, 111]))
        runtime.submit_update(Update.withdraw("C", prefix))
        runtime.submit_update(announce(sdx, "C", prefix, [65003, 222]))
        runtime.settle()
        # Three submissions collapse to one route-server submission...
        assert sdx.route_server.updates_processed == before + 1
        assert runtime.stats()["coalesced"] == 2
        # ...carrying the *latest* state.
        route = sdx.route_server.best_route_for("A", prefix)
        assert route.attributes.as_path.asns[-1] == 222

    def test_announce_then_withdraw_nets_to_nothing(self):
        sdx, runtime = started_runtime()
        prefix = FRESH[1]
        runtime.submit_update(announce(sdx, "C", prefix, [65003, 111]))
        runtime.submit_update(Update.withdraw("C", prefix))
        runtime.settle()
        assert sdx.route_server.best_route_for("A", prefix) is None

    def test_policy_events_drain_first(self):
        sdx, runtime = started_runtime()
        seen = []
        runtime.submit_update(announce(sdx, "C", FRESH[2], [65003, 111]))
        runtime.submit_update(announce(sdx, "C", FRESH[3], [65003, 111]))
        runtime.submit_policy("marker", lambda controller: seen.append(
            controller.route_server.updates_processed))
        assert runtime.step(limit=1) == 1
        assert seen  # the policy ran even though it was submitted last
        assert runtime.queue.depth == 2

    def test_settle_clears_fast_path_debt(self):
        sdx, runtime = started_runtime()
        runtime.submit_update(announce(sdx, "C", FRESH[4], [65003, 111]))
        runtime.drain()
        assert sdx.engine.dirty
        runtime.settle()
        assert not sdx.engine.dirty
        assert sdx.engine.pressure().fast_path_rules == 0

    def test_matches_inline_execution(self):
        updates = []
        sdx, runtime = started_runtime()
        for index, prefix in enumerate(FRESH[:12]):
            updates.append(announce(sdx, "C", prefix, [65003, 700 + index]))
            if index % 3 == 0:
                updates.append(Update.withdraw("C", prefix))
        for update in updates:
            runtime.submit_update(update)
        runtime.settle()

        inline, *_ = figure1_controller()
        inline.start()
        for update in updates:
            inline.submit_update(update)
        inline.run_background_recompilation()
        assert not canonical_state(inline).diff(canonical_state(sdx))


class TestBlockPolicy:
    def test_blocks_by_draining_synchronously(self):
        sdx, runtime = started_runtime(
            max_queue_depth=2, batch_size=2,
            overload_policy=OverloadPolicy.BLOCK)
        before = sdx.route_server.updates_processed
        for index in range(6):
            runtime.submit_update(
                announce(sdx, "C", FRESH[10 + index], [65003, 111]))
        runtime.settle()
        stats = runtime.stats()
        assert stats["blocked"] > 0
        assert stats["dropped"] == 0
        assert sdx.route_server.updates_processed == before + 6


class TestShedOldest:
    def test_shedding_is_loss_accounted(self):
        sdx, runtime = started_runtime(
            max_queue_depth=2, overload_policy=OverloadPolicy.SHED_OLDEST)
        for index in range(6):
            runtime.submit_update(
                announce(sdx, "C", FRESH[20 + index], [65003, 111]))
        stats = runtime.stats()
        assert stats["dropped"] == 4
        assert runtime.queue.depth == 2
        # Loss accounting surfaces the drop centrally, by full name.
        losses = sdx.telemetry.registry.losses()
        assert losses["sdx_runtime_events_dropped_total"] == 4
        runtime.settle()

    def test_shed_counts_absorbed_events(self):
        sdx, runtime = started_runtime(
            max_queue_depth=2, overload_policy=OverloadPolicy.SHED_OLDEST)
        prefix = FRESH[27]
        runtime.submit_update(announce(sdx, "C", prefix, [65003, 1]))
        runtime.submit_update(announce(sdx, "C", prefix, [65003, 2]))
        runtime.submit_update(
            announce(sdx, "C", FRESH[28], [65003, 111]))
        # Shedding the coalesced head loses two submissions' worth.
        runtime.submit_update(
            announce(sdx, "C", FRESH[29], [65003, 111]))
        assert runtime.stats()["dropped"] == 2


class TestDegradeMode:
    def degraded_runtime(self):
        return started_runtime(
            max_queue_depth=4, batch_size=4, coalesce=False,
            overload_policy=OverloadPolicy.DEGRADE, degrade_patience=1,
            degrade_high_fraction=0.5, degrade_low_fraction=0.25)

    def test_enters_under_sustained_saturation(self):
        sdx, runtime = self.degraded_runtime()
        assert not runtime.degraded
        for index in range(4):
            runtime.submit_update(
                announce(sdx, "C", FRESH[30 + index], [65003, 111]))
        assert runtime.degraded
        assert sdx.policies_suspended
        assert runtime.stats()["degrade_entries"] == 1
        # Degraded forwarding is default-BGP-only: A's port-80 policy
        # (fwd B) is suspended, so traffic follows the best route (C).
        assert sdx.egress_of("A", packet("11.0.0.1")) == "C"

    def test_no_thrash_during_sustained_burst(self):
        """One hot burst must produce ONE degrade entry, not an
        enter/exit cycle per drained batch (each exit is a recompile)."""
        sdx, runtime = started_runtime(
            max_queue_depth=4, batch_size=4, coalesce=False,
            overload_policy=OverloadPolicy.DEGRADE, degrade_patience=2,
            degrade_high_fraction=0.5, degrade_low_fraction=0.25)
        for index in range(30):
            runtime.submit_update(
                announce(sdx, "C", FRESH[index % 8], [65003, 111]))
        assert runtime.degraded
        assert runtime.stats()["degrade_entries"] == 1
        # Recovery needs `degrade_patience` calm steps, then happens on
        # its own — no settle() force required.
        runtime.drain()
        assert runtime.degraded
        runtime.step()
        assert not runtime.degraded

    def test_converges_back_to_composed_table(self):
        sdx, runtime = self.degraded_runtime()
        updates = [announce(sdx, "C", FRESH[40 + index], [65003, 111])
                   for index in range(4)]
        for update in updates:
            runtime.submit_update(update)
        assert runtime.degraded
        runtime.settle()
        assert not runtime.degraded
        assert not sdx.policies_suspended
        # Policies are live again: the composed table matches a
        # controller that saw the same updates and never degraded.
        assert sdx.egress_of("A", packet("11.0.0.1")) == "B"
        inline, *_ = figure1_controller()
        inline.start()
        for update in updates:
            inline.submit_update(update)
        inline.run_background_recompilation()
        assert not canonical_state(inline).diff(canonical_state(sdx))


class TestThreadedMode:
    def test_drains_everything_submitted(self):
        sdx, runtime = started_runtime(coalesce=False, batch_size=8)
        runtime.start()
        assert runtime.is_running
        try:
            for index in range(40):
                runtime.submit_update(announce(
                    sdx, "C", FRESH[index % 16], [65003, 1000 + index]))
        finally:
            runtime.stop()
        assert not runtime.is_running
        stats = runtime.stats()
        assert stats["processed"] == 40
        assert stats["queue_depth"] == 0
        assert not sdx.engine.dirty  # stop() settles by default

    def test_restart_after_stop(self):
        _, runtime = started_runtime()
        runtime.start()
        runtime.stop()
        runtime.start()
        runtime.stop()
        assert not runtime.is_running


class TestSchedulerIntegration:
    def test_rules_watermark_recompiles_mid_burst(self):
        sdx, runtime = started_runtime(
            scheduler=SchedulerConfig(max_fast_path_rules=1))
        runtime.submit_update(announce(sdx, "C", FRESH[50], [65003, 111]))
        runtime.step()
        assert not sdx.engine.dirty
        counter = sdx.telemetry.registry.get(
            "sdx_runtime_recompiles_total", trigger="rules")
        assert counter is not None and counter.value == 1

    def test_idle_gap_recompiles(self):
        sdx, runtime = started_runtime(
            scheduler=SchedulerConfig(idle_seconds=10.0))
        runtime.submit_update(announce(sdx, "C", FRESH[51], [65003, 111]))
        runtime.drain()
        assert sdx.engine.dirty
        runtime.clock.advance(9.0)
        runtime.step()
        assert sdx.engine.dirty  # gap not yet long enough
        runtime.clock.advance(1.0)
        runtime.step()
        assert not sdx.engine.dirty
        counter = sdx.telemetry.registry.get(
            "sdx_runtime_recompiles_total", trigger="idle")
        assert counter is not None and counter.value == 1
